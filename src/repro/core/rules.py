"""Join selectivities and the per-class combination rules.

Equation 2 of the paper defines the selectivity of an equijoin predicate
``J: (R1.x1 = R2.x2)`` as ``S_J = 1 / max(d1, d2)``.

When a table is joined into an intermediate result, several *eligible* join
predicates may belong to a single equivalence class, and their effects are
not independent.  The combination rules decide which selectivities to use:

* **Rule M** (multiplicative, [13]): use all of them.  Dramatically
  underestimates (Example 2: estimates 1 where the true size is 1000).
* **Rule SS** (smallest selectivity): one per class — the smallest.
  Still underestimates (Example 3: 100 instead of 1000).
* **Rule LS** (largest selectivity, the paper's invention): one per class —
  the largest.  "Rule LS appears counter-intuitive and a proof is provided
  in [16]"; it reproduces the closed form of Equation 3 exactly.
* **Representative** (Section 3.3 proposal): one fixed selectivity per
  class, applied whenever the class contributes an eligible predicate.  No
  constant works for every join order, which the sweep benchmark shows.

Selectivities for different equivalence classes always multiply — the
independence assumption makes classes independent (Section 7).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from ..errors import EstimationError
from .config import EstimatorConfig, SelectivityRule

__all__ = [
    "join_selectivity",
    "combine_class_selectivities",
    "combine_all",
    "derive_representative",
]


def join_selectivity(left_distinct: float, right_distinct: float) -> float:
    """Equation 2: ``S_J = 1 / max(d1, d2)``.

    A zero cardinality on either side means that side has no rows to join;
    the predicate's selectivity is 0 and the join result is empty.

    Raises:
        EstimationError: on a negative column cardinality.
    """
    if left_distinct < 0 or right_distinct < 0:
        raise EstimationError(
            f"column cardinalities must be >= 0, got {left_distinct}, {right_distinct}"
        )
    top = max(left_distinct, right_distinct)
    if top <= 0:
        return 0.0
    return 1.0 / top


def combine_class_selectivities(
    selectivities: Sequence[float],
    rule: SelectivityRule,
    representative: Optional[float] = None,
) -> float:
    """Combine the eligible selectivities of ONE equivalence class.

    Args:
        selectivities: Selectivities of the class's eligible predicates
            (must be non-empty).
        rule: The combination rule.
        representative: The class's fixed selectivity, required by
            ``Rule REP`` and ignored by the other rules.

    Raises:
        EstimationError: on an empty selectivity list, or a missing
            representative under ``Rule REP``.
    """
    if not selectivities:
        raise EstimationError("cannot combine an empty selectivity list")
    if rule is SelectivityRule.MULTIPLICATIVE:
        product = 1.0
        for s in selectivities:
            product *= s
        return product
    if rule is SelectivityRule.SMALLEST:
        return min(selectivities)
    if rule is SelectivityRule.LARGEST:
        return max(selectivities)
    if rule is SelectivityRule.REPRESENTATIVE:
        if representative is None:
            raise EstimationError(
                "Rule REP requires a representative selectivity for the class"
            )
        return representative
    raise EstimationError(f"unknown selectivity rule {rule!r}")


def combine_all(
    class_selectivities: Mapping[object, Sequence[float]],
    config: EstimatorConfig,
    representatives: Optional[Mapping[object, float]] = None,
) -> float:
    """Combine eligible selectivities grouped by equivalence class.

    Within a class the configured rule applies; across classes the results
    multiply (independence assumption).  ``representatives`` supplies the
    per-class constants for ``Rule REP``.
    """
    total = 1.0
    representatives = representatives or {}
    for class_id, selectivities in class_selectivities.items():
        representative = representatives.get(class_id)
        if (
            representative is None
            and config.rule is SelectivityRule.REPRESENTATIVE
            and config.representative_selectivity is not None
        ):
            representative = config.representative_selectivity
        total *= combine_class_selectivities(
            list(selectivities), config.rule, representative
        )
    return total


def derive_representative(
    selectivities: Iterable[float], choice: str
) -> float:
    """Derive a class representative from its predicate selectivities.

    ``choice`` is ``"smallest"`` or ``"largest"`` — the two natural
    candidates Section 3.3 discusses (0.001 and 0.01 in the running
    example), neither of which is correct in general.

    Raises:
        EstimationError: on an empty selectivity list or an unknown
            ``choice``.
    """
    values = list(selectivities)
    if not values:
        raise EstimationError("cannot derive a representative from no predicates")
    if choice == "smallest":
        return min(values)
    if choice == "largest":
        return max(values)
    raise EstimationError(f"unknown representative choice {choice!r}")
