"""The paper's contribution: Algorithm ELS and its estimation machinery.

Submodules map one-to-one onto the paper's sections:

* :mod:`repro.core.equivalence` — equivalence classes of join columns
  (Section 2).
* :mod:`repro.core.closure` — predicate transitive closure, the five
  derivation rules (Section 4, steps 1–2).
* :mod:`repro.core.local` — local predicate selectivities, including
  multiple predicates on one column per [16] (step 3).
* :mod:`repro.core.urn` — the urn model for distinct values under
  selection (Section 5).
* :mod:`repro.core.effective` — effective table/column cardinalities
  (Section 5) and single-table j-equivalent columns (Section 6; step 4).
* :mod:`repro.core.rules` — join selectivities and Rules M / SS / LS /
  representative (Sections 3 and 7; step 5).
* :mod:`repro.core.estimator` — the incremental estimation phase (step 6)
  plus the Equation 3 closed form used as a correctness oracle.
* :mod:`repro.core.protocols` — the :class:`CardinalityEstimator`
  protocol and the ``@register_estimator`` registry through which the
  paper's four algorithms (and future strategies) plug into one
  structural interface.
"""

from .closure import (
    ClosureResult,
    ClosureRule,
    ImpliedPredicate,
    close_query,
    transitive_closure,
)
from .config import ELS, SM, SRS, SSS, EstimatorConfig, SelectivityRule
from .effective import EffectiveTable, JEquivGroup, compute_effective_table
from .equivalence import EquivalenceClasses
from .estimator import (
    EstimateState,
    IncrementalEstimate,
    JoinSizeEstimator,
    PreparedJoinPredicate,
    StepEstimate,
    two_way_join_size,
)
from .local import (
    ColumnFilterEffect,
    combine_column_predicates,
    constant_selectivity,
)
from .histjoin import histogram_join_selectivity, histogram_join_size
from .protocols import (
    CardinalityEstimator,
    ELSEstimator,
    SMEstimator,
    SRSEstimator,
    SSSEstimator,
    estimator_names,
    make_estimator,
    register_estimator,
)
from .rules import combine_class_selectivities, join_selectivity
from .skew import exact_join_size, frequency_join_selectivity, frequency_join_size
from .urn import expected_distinct, proportional_distinct, urn_distinct

__all__ = [
    "ELS",
    "SM",
    "SRS",
    "SSS",
    "CardinalityEstimator",
    "ClosureResult",
    "ClosureRule",
    "ColumnFilterEffect",
    "ELSEstimator",
    "EffectiveTable",
    "EquivalenceClasses",
    "EstimateState",
    "EstimatorConfig",
    "ImpliedPredicate",
    "IncrementalEstimate",
    "JEquivGroup",
    "JoinSizeEstimator",
    "PreparedJoinPredicate",
    "SMEstimator",
    "SRSEstimator",
    "SSSEstimator",
    "SelectivityRule",
    "StepEstimate",
    "close_query",
    "estimator_names",
    "make_estimator",
    "register_estimator",
    "combine_class_selectivities",
    "combine_column_predicates",
    "compute_effective_table",
    "constant_selectivity",
    "exact_join_size",
    "expected_distinct",
    "frequency_join_selectivity",
    "frequency_join_size",
    "histogram_join_selectivity",
    "histogram_join_size",
    "join_selectivity",
    "proportional_distinct",
    "transitive_closure",
    "two_way_join_size",
    "urn_distinct",
]
