"""Histogram-overlap join-size estimation.

A second relaxation of the Section 2 assumptions, complementing the MCV
path of :mod:`repro.core.skew`:

* the **containment assumption** ("the set of values in the join column
  with the smaller column cardinality is a subset of the other") fails
  whenever the two columns' value ranges only partially overlap — e.g. a
  date column joined against a restricted date dimension.  Equation 2 then
  overestimates, sometimes unboundedly (disjoint domains still estimate
  ``rows_L * rows_R / max(d)`` instead of zero);
* histograms localize both row mass and distinct values, so Equation 1 can
  be applied *per overlapping segment* instead of globally.

The estimate partitions the union of both histograms' bucket boundaries
into segments; within a segment each side contributes its interpolated row
count and a width-proportional share of its distinct count, and Equation 1
applies segment-locally.  With identical single-bucket histograms this
degenerates to exactly Equation 1, so it is a strict generalization.
Used by the estimator when ``use_frequency_stats`` is on and MCV lists are
absent but histograms are present.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..catalog.statistics import ColumnStats
from ..errors import EstimationError

__all__ = ["histogram_join_size", "histogram_join_selectivity"]

Number = Union[int, float]


def _boundaries(stats: ColumnStats) -> Optional[Tuple[float, float]]:
    if stats.histogram is not None:
        return float(stats.histogram.low), float(stats.histogram.high)
    if stats.has_range:
        return float(stats.low), float(stats.high)  # type: ignore[arg-type]
    return None


def _segment_rows(stats: ColumnStats, rows: float, low: float, high: float) -> float:
    """Rows of this side falling inside [low, high]."""
    if stats.histogram is not None:
        return rows * stats.histogram.fraction_between(low, high)
    # Uniform interpolation over the recorded range.
    assert stats.low is not None and stats.high is not None
    span = float(stats.high) - float(stats.low)
    if span <= 0:
        inside = float(stats.low) >= low and float(stats.low) <= high
        return rows if inside else 0.0
    overlap = max(0.0, min(high, float(stats.high)) - max(low, float(stats.low)))
    return rows * overlap / span


def _segment_distinct(stats: ColumnStats, low: float, high: float) -> float:
    """Width-proportional share of the column's distinct values in [low, high]."""
    bounds = _boundaries(stats)
    if bounds is None:
        return float(stats.distinct)
    full_low, full_high = bounds
    span = full_high - full_low
    if span <= 0:
        inside = full_low >= low and full_low <= high
        return float(stats.distinct) if inside else 0.0
    overlap = max(0.0, min(high, full_high) - max(low, full_low))
    return stats.distinct * overlap / span


def histogram_join_size(
    left_rows: float,
    left_stats: ColumnStats,
    right_rows: float,
    right_stats: ColumnStats,
    segments: int = 0,
) -> float:
    """Equijoin size from per-segment application of Equation 1.

    Args:
        left_rows: Effective row count of the left table.
        left_stats: Left join-column statistics (histogram and/or range).
        right_rows: Effective row count of the right table.
        right_stats: Right join-column statistics.
        segments: Extra uniform subdivisions of the overlap region on top
            of the histogram boundaries (0 = boundaries only).

    Falls back to the global Equation 1 when neither side carries range
    information.

    Raises:
        EstimationError: on negative row counts.
    """
    if left_rows < 0 or right_rows < 0:
        raise EstimationError("row counts must be non-negative")
    if left_rows == 0 or right_rows == 0:
        return 0.0

    left_bounds = _boundaries(left_stats)
    right_bounds = _boundaries(right_stats)
    if left_bounds is None or right_bounds is None:
        top = max(left_stats.distinct, right_stats.distinct)
        return left_rows * right_rows / top if top > 0 else 0.0

    overlap_low = max(left_bounds[0], right_bounds[0])
    overlap_high = min(left_bounds[1], right_bounds[1])
    if overlap_high < overlap_low:
        return 0.0  # disjoint domains join to nothing

    cuts = {overlap_low, overlap_high}
    for stats in (left_stats, right_stats):
        hist = stats.histogram
        if hist is None:
            continue
        boundary_values: List[float]
        if hasattr(hist, "boundaries"):
            boundary_values = [float(b) for b in hist.boundaries]
        else:
            width = hist.bucket_width
            boundary_values = [
                float(hist.low) + i * width for i in range(len(hist.counts) + 1)
            ]
        cuts.update(b for b in boundary_values if overlap_low <= b <= overlap_high)
    if segments > 0 and overlap_high > overlap_low:
        step = (overlap_high - overlap_low) / (segments + 1)
        cuts.update(overlap_low + i * step for i in range(1, segments + 1))

    ordered = sorted(cuts)
    if len(ordered) == 1:
        # Point overlap: one shared value at most.
        left_d = max(1.0, _segment_distinct(left_stats, ordered[0], ordered[0]))
        right_d = max(1.0, _segment_distinct(right_stats, ordered[0], ordered[0]))
        l_rows = _segment_rows(left_stats, left_rows, ordered[0], ordered[0])
        r_rows = _segment_rows(right_stats, right_rows, ordered[0], ordered[0])
        return l_rows * r_rows / max(left_d, right_d)

    total = 0.0
    for low, high in zip(ordered, ordered[1:]):
        l_rows = _segment_rows(left_stats, left_rows, low, high)
        r_rows = _segment_rows(right_stats, right_rows, low, high)
        if l_rows <= 0 or r_rows <= 0:
            continue
        l_d = _segment_distinct(left_stats, low, high)
        r_d = _segment_distinct(right_stats, low, high)
        top = max(l_d, r_d)
        if top <= 0:
            continue
        total += l_rows * r_rows / top
    return total


def histogram_join_selectivity(
    left_rows: float,
    left_stats: ColumnStats,
    right_rows: float,
    right_stats: ColumnStats,
) -> float:
    """The histogram-overlap size as an Equation 2 style selectivity."""
    if left_rows <= 0 or right_rows <= 0:
        return 0.0
    size = histogram_join_size(left_rows, left_stats, right_rows, right_stats)
    return min(1.0, size / (left_rows * right_rows))
