"""Effective table and column statistics (Algorithm ELS step 4 + Section 6).

For each table in the query, this module folds the local predicates into

* an **effective table cardinality** ``||R||'`` — rows surviving the local
  conjunction,
* **effective column cardinalities** ``d'`` for every join column — the
  filtered column scales directly (``d'_y = d_y * S``, or exactly 1 under an
  equality literal) and every *other* column shrinks per the urn model, and
* **single-table j-equivalence groups** (Section 6) — when two or more join
  columns of the table are j-equivalent, the implied local equality divides
  the row count by every group column cardinality except the smallest, and
  the group's single effective join cardinality is the urn-reduced smallest.

After this step "we do not need to concern ourselves with local predicates"
— the incremental estimator works purely from these effective statistics.

The *standard algorithm* of Section 8 (Algorithms SM and SSS) also flows
through this module but with ``fold_local_into_columns=False``: the row
count is still reduced by local selectivities (every Selinger-style
optimizer does that) while the column cardinalities that enter join
selectivities stay at their original values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..catalog.statistics import TableStats
from ..errors import EstimationError
from ..sql.predicates import ColumnRef, ComparisonPredicate, Op, PredicateKind
from .config import EstimatorConfig
from .equivalence import EquivalenceClasses
from .local import DEFAULT_RANGE_SELECTIVITY, combine_column_predicates
from .urn import expected_distinct, proportional_distinct

__all__ = ["JEquivGroup", "EffectiveTable", "compute_effective_table"]


@dataclass(frozen=True)
class JEquivGroup:
    """A set of j-equivalent join columns within one table (Section 6).

    Attributes:
        columns: The member column names (size >= 2).
        distinct: The group's effective column cardinality for join
            selectivity purposes — the urn-reduced smallest member ``d``.
        row_divisor: The product of all member cardinalities except the
            smallest; the table's rows were divided by this.
    """

    columns: FrozenSet[str]
    distinct: float
    row_divisor: float


@dataclass(frozen=True)
class EffectiveTable:
    """Effective statistics of one table after local-predicate folding.

    Attributes:
        name: Relation name (the query-level alias).
        original_rows: ``||R||`` before any predicate.
        rows: ``||R||'`` after all local predicates, including the implied
            single-table column equalities.
        rows_after_constants: ``||R||'`` after constant predicates only
            (before the Section 6 reduction); used by cost models that
            place the column-equality filter with the join.
        column_distinct: Effective cardinality ``d'`` per recorded column.
        groups: Section 6 j-equivalence groups, possibly empty.
        local_selectivity: Combined selectivity of the constant predicates.
    """

    name: str
    original_rows: int
    rows: float
    rows_after_constants: float
    column_distinct: Mapping[str, float] = field(default_factory=dict)
    groups: Tuple[JEquivGroup, ...] = ()
    local_selectivity: float = 1.0

    def distinct(self, column: str) -> float:
        """Effective join cardinality of a column.

        Columns belonging to a j-equivalence group answer with the group's
        shared effective cardinality; everything else answers with its own
        effective ``d'``.

        Raises:
            EstimationError: for a column with no recorded statistics.
        """
        for group in self.groups:
            if column in group.columns:
                return group.distinct
        if column not in self.column_distinct:
            raise EstimationError(
                f"no effective statistics for column {self.name}.{column}"
            )
        return self.column_distinct[column]

    def group_of(self, column: str) -> Optional[JEquivGroup]:
        for group in self.groups:
            if column in group.columns:
                return group
        return None


def compute_effective_table(
    name: str,
    stats: TableStats,
    local_predicates: Sequence[ComparisonPredicate],
    equivalence: EquivalenceClasses,
    config: EstimatorConfig,
) -> EffectiveTable:
    """Fold a table's local predicates into effective statistics.

    Args:
        name: The relation name as it appears in the query.
        stats: Catalog statistics of the underlying base table.
        local_predicates: All local predicates on this relation (constant
            predicates and same-table column comparisons), already closed
            under transitivity if the caller enabled PTC.
        equivalence: Equivalence classes over the closed predicate set,
            used to find single-table j-equivalent groups.
        config: Feature flags (ELS vs the standard algorithm, urn model on
            or off, Section 6 handling on or off).

    Raises:
        EstimationError: if a predicate does not belong to this table.
    """
    for predicate in local_predicates:
        if predicate.tables != frozenset((name,)):
            raise EstimationError(
                f"predicate {predicate} is not local to table {name!r}"
            )

    constant_preds = [
        p for p in local_predicates if p.kind is PredicateKind.CONSTANT_LOCAL
    ]
    column_equalities = [
        p
        for p in local_predicates
        if p.kind is PredicateKind.COLUMN_LOCAL and p.op is Op.EQ
    ]
    column_inequalities = [
        p
        for p in local_predicates
        if p.kind is PredicateKind.COLUMN_LOCAL and p.op is not Op.EQ
    ]

    # ---- Section 5: constant predicates --------------------------------
    by_column: Dict[str, List[ComparisonPredicate]] = {}
    for predicate in constant_preds:
        by_column.setdefault(predicate.left.column, []).append(predicate)

    selectivity = 1.0
    filtered_distinct: Dict[str, float] = {}
    for column, preds in by_column.items():
        effect = combine_column_predicates(column, preds, stats.column(column))
        selectivity *= effect.selectivity
        filtered_distinct[column] = effect.distinct_after

    rows_after_constants = stats.row_count * selectivity

    # A column cannot keep more distinct values than rows survive; the
    # ceiling keeps fractional row estimates meaningful (0.3 expected rows
    # still permit one distinct value).
    row_cap = float(math.ceil(rows_after_constants)) if rows_after_constants > 0 else 0.0
    column_distinct: Dict[str, float] = {}
    for column, column_stats in stats.columns.items():
        original = float(column_stats.distinct)
        if not config.fold_local_into_columns:
            column_distinct[column] = original
        elif column in filtered_distinct:
            column_distinct[column] = min(filtered_distinct[column], row_cap)
        elif by_column and rows_after_constants < stats.row_count:
            column_distinct[column] = min(
                _reduced_distinct(
                    column_stats.distinct, rows_after_constants, stats.row_count, config
                ),
                row_cap,
            )
        else:
            column_distinct[column] = original

    # ---- Section 6: single-table j-equivalent join columns -------------
    rows = rows_after_constants
    groups: List[JEquivGroup] = []
    grouped_columns = equivalence.single_table_groups(name)
    handled_pairs: set = set()
    if config.handle_single_table_jequiv:
        for group in grouped_columns:
            column_names = frozenset(ref.column for ref in group)
            ds = sorted(column_distinct[c] for c in column_names)
            divisor = _product(ds[1:])
            if divisor <= 0:
                rows = 0.0
                groups.append(JEquivGroup(column_names, 0.0, divisor))
                continue
            reduced_rows = math.ceil(rows / divisor)
            smallest = ds[0]
            group_distinct = _urn_ceil(smallest, reduced_rows, config)
            rows = float(reduced_rows)
            groups.append(JEquivGroup(column_names, group_distinct, divisor))
            for predicate in column_equalities:
                if {predicate.left.column, predicate.columns[-1].column} <= set(
                    column_names
                ):
                    handled_pairs.add(predicate)
    else:
        # Standard treatment: each same-table column equality scales rows by
        # 1/max(d1, d2), with no column-cardinality bookkeeping.
        for predicate in column_equalities:
            left_d = column_distinct[predicate.left.column]
            right_d = column_distinct[predicate.columns[-1].column]
            top = max(left_d, right_d)
            rows = rows / top if top > 0 else 0.0
            handled_pairs.add(predicate)

    unhandled_equalities = [
        p for p in column_equalities if p not in handled_pairs
    ]
    for predicate in unhandled_equalities:
        # Equalities outside any detected group (possible only when the
        # caller disabled parts of the machinery): scale rows the standard
        # way so no predicate is silently dropped.
        left_d = column_distinct[predicate.left.column]
        right_d = column_distinct[predicate.columns[-1].column]
        top = max(left_d, right_d)
        rows = rows / top if top > 0 else 0.0

    # Non-equality column comparisons (R.x < R.y): the paper's machinery
    # does not model them; apply the default range selectivity to rows only.
    for _ in column_inequalities:
        rows *= DEFAULT_RANGE_SELECTIVITY

    return EffectiveTable(
        name=name,
        original_rows=stats.row_count,
        rows=rows,
        rows_after_constants=rows_after_constants,
        column_distinct=column_distinct,
        groups=tuple(groups),
        local_selectivity=selectivity,
    )


def _reduced_distinct(
    distinct: int, selected_rows: float, total_rows: int, config: EstimatorConfig
) -> float:
    """Distinct values surviving in a column *other than* the filtered one."""
    if config.use_urn_model:
        return min(float(distinct), expected_distinct(distinct, selected_rows))
    return proportional_distinct(distinct, selected_rows, total_rows)


def _urn_ceil(distinct: float, rows: float, config: EstimatorConfig) -> float:
    """Section 6 effective group cardinality, with the paper's ceiling."""
    if distinct <= 0 or rows <= 0:
        return 0.0
    if not config.use_urn_model:
        return min(distinct, rows)
    value = expected_distinct(int(math.ceil(distinct)), rows)
    value = min(value, distinct)
    return float(math.ceil(value - 1e-12))


def _product(values: Iterable[float]) -> float:
    result = 1.0
    for v in values:
        result *= v
    return result
