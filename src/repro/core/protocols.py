"""The estimator protocol and registry: the pluggable estimator zoo.

The ROADMAP's estimator-zoo direction needs every estimation strategy —
the paper's four algorithms today, pessimistic bounds and sketches
tomorrow — to plug into one structural interface so the harness,
optimizer, and service layers can treat them interchangeably.  This
module declares that interface (:class:`CardinalityEstimator`, a
``typing.Protocol``) and a name-keyed registry
(:func:`register_estimator`) through which conforming classes announce
themselves.

The ``# els: registers=CardinalityEstimator`` directive on the
decorator's ``def`` line is the machine-checkable link: the ELS7xx
contract lint layer (:mod:`repro.lint.contracts`) resolves it and
verifies every registered class structurally satisfies the protocol —
missing methods, incompatible parameter lists or defaults, and
contradictory return-quantity declarations are ELS701/ELS702 findings,
not runtime surprises.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Type

from ..catalog.statistics import Catalog
from ..errors import EstimationError
from ..sql.query import Query
from .config import ELS, SM, SRS, SSS
from .estimator import IncrementalEstimate, JoinSizeEstimator

__all__ = [
    "CardinalityEstimator",
    "ELSEstimator",
    "SMEstimator",
    "SRSEstimator",
    "SSSEstimator",
    "estimator_names",
    "make_estimator",
    "register_estimator",
]


class CardinalityEstimator(Protocol):
    """Structural interface every registered estimator must satisfy.

    One instance is bound to one query and one catalog; the methods
    below are the surface the harness, optimizer, and (future) service
    layers rely on.  Conformance is checked statically by the ELS7xx
    contract layer, so the protocol never needs ``runtime_checkable``
    isinstance probes on hot paths.
    """

    def estimate(self, order: Sequence[str]) -> float:  # els: quantity=cardinality
        """The final estimated result size along a join order."""
        ...

    def estimate_order(self, order: Sequence[str]) -> IncrementalEstimate:
        """Per-step intermediate sizes along a specific join order."""
        ...

    def closed_form(self, tables: Optional[Iterable[str]] = None) -> float:  # els: quantity=cardinality
        """The order-independent result size, where one exists."""
        ...

    def base_rows(self, table: str) -> float:  # els: quantity=cardinality
        """Unfiltered base cardinality of one referenced table."""
        ...


#: Registry name -> estimator class (populated by ``register_estimator``).
_ESTIMATOR_REGISTRY: Dict[str, Type[JoinSizeEstimator]] = {}


def register_estimator(name: str):  # els: registers=CardinalityEstimator
    """Class decorator: register an estimator class under ``name``.

    Registered classes are constructible through :func:`make_estimator`
    and must structurally satisfy :class:`CardinalityEstimator` — the
    contract lint layer enforces this at lint time via the
    ``registers=`` directive above.

    The returned decorator raises :class:`~repro.errors.EstimationError`
    when applied under an already-taken name — registry names are the
    stable public interface of the zoo and must stay unique.
    """

    def decorate(cls: Type[JoinSizeEstimator]) -> Type[JoinSizeEstimator]:
        existing = _ESTIMATOR_REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise EstimationError(
                f"duplicate estimator registration {name!r} "
                f"({existing.__name__} vs {cls.__name__})"
            )
        _ESTIMATOR_REGISTRY[name] = cls
        return cls

    return decorate


def estimator_names() -> List[str]:
    """The sorted registry names (``els``, ``sm``, ``srs``, ``sss``, ...)."""
    return sorted(_ESTIMATOR_REGISTRY)


def make_estimator(
    name: str,
    query: Query,
    catalog: Catalog,
    apply_closure: bool = True,
) -> JoinSizeEstimator:
    """Construct the registered estimator ``name`` for one query.

    Raises:
        EstimationError: for a name no estimator is registered under.
    """
    try:
        cls = _ESTIMATOR_REGISTRY[name]
    except KeyError:
        known = ", ".join(estimator_names())
        raise EstimationError(
            f"unknown estimator {name!r} (registered: {known})"
        ) from None
    return cls(query, catalog, apply_closure=apply_closure)


@register_estimator("els")
class ELSEstimator(JoinSizeEstimator):
    """Algorithm ELS: every paper feature enabled, Rule LS."""

    def __init__(
        self, query: Query, catalog: Catalog, apply_closure: bool = True
    ) -> None:
        super().__init__(query, catalog, ELS, apply_closure=apply_closure)


@register_estimator("sm")
class SMEstimator(JoinSizeEstimator):
    """Algorithm SM: the standard estimation path with Rule M."""

    def __init__(
        self, query: Query, catalog: Catalog, apply_closure: bool = True
    ) -> None:
        super().__init__(query, catalog, SM, apply_closure=apply_closure)


@register_estimator("sss")
class SSSEstimator(JoinSizeEstimator):
    """Algorithm SSS: the standard estimation path with Rule SS."""

    def __init__(
        self, query: Query, catalog: Catalog, apply_closure: bool = True
    ) -> None:
        super().__init__(query, catalog, SSS, apply_closure=apply_closure)


@register_estimator("srs")
class SRSEstimator(JoinSizeEstimator):
    """Algorithm SRS: the standard path with the Section 3.3 rule."""

    def __init__(
        self, query: Query, catalog: Catalog, apply_closure: bool = True
    ) -> None:
        super().__init__(query, catalog, SRS, apply_closure=apply_closure)
