"""Incremental join-result-size estimation: Algorithm ELS and its baselines.

The estimator follows the two-phase structure of Algorithm ELS (Section 4):

**Preliminary phase** (steps 1–5, done once per query in ``__init__``):

1. De-duplicate predicates (done by :class:`~repro.sql.query.Query`).
2. Generate implied predicates via transitive closure (optional — the
   caller controls PTC exactly as the paper toggled Starburst's rewrite
   rule), and build equivalence classes.
3. Assign selectivities to local predicates (``repro.core.local``).
4. Compute effective table/column cardinalities per table
   (``repro.core.effective``).
5. Compute the join selectivity of every join predicate from the effective
   (or, for the standard algorithm, original) column cardinalities.

**Incremental phase** (step 6): starting from one table, repeatedly join
the next table of the order.  At each step the *eligible* join predicates —
those linking the incoming table to tables already in the intermediate
result — are grouped by equivalence class, the configured rule (M, SS, LS,
or REP) picks the per-class selectivity, classes multiply, and

    ``rows(I ⋈ R) = rows(I) * rows'(R) * combined_selectivity``.

The module also provides the closed form of Equation 3 as an oracle:
under the paper's assumptions (and full transitive closure) the true result
size of a join set is the product of effective table cardinalities divided,
per equivalence class, by every per-table class cardinality except the
smallest.  A property test asserts ELS's incremental estimates agree with
this oracle for every join order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..catalog.statistics import Catalog
from ..errors import EstimationError
from ..sql.predicates import ColumnRef, ComparisonPredicate, Op, PredicateKind
from ..sql.query import Query
from .closure import ClosureResult, close_query
from .config import ELS, EstimatorConfig, SelectivityRule
from .effective import EffectiveTable, compute_effective_table
from .equivalence import EquivalenceClasses
from .rules import combine_class_selectivities, derive_representative, join_selectivity

__all__ = [
    "PreparedJoinPredicate",
    "EstimateState",
    "StepEstimate",
    "IncrementalEstimate",
    "JoinSizeEstimator",
    "two_way_join_size",
]


def two_way_join_size(
    rows1: float, distinct1: float, rows2: float, distinct2: float
) -> float:
    """Equation 1/2: ``||R1 >< R2|| = ||R1|| * ||R2|| / max(d1, d2)``."""
    return rows1 * rows2 * join_selectivity(distinct1, distinct2)


@dataclass(frozen=True)
class PreparedJoinPredicate:
    """A join predicate with its precomputed selectivity (step 5).

    Attributes:
        predicate: The canonical join predicate.
        selectivity: ``S_J`` from Equation 2 (or the default for
            non-equality join predicates).
        class_id: The equivalence-class identifier for equijoin predicates;
            ``None`` for non-equality predicates, which always multiply in.
    """

    predicate: ComparisonPredicate
    selectivity: float
    class_id: Optional[ColumnRef]

    @property
    def tables(self) -> FrozenSet[str]:
        return self.predicate.tables


def _by_selectivity(prepared: PreparedJoinPredicate) -> float:
    """Sort key for Rules SS/LS (module-level: the per-class min/max in
    ``_combine`` runs on the estimation hot path)."""
    return prepared.selectivity


@dataclass(frozen=True)
class EstimateState:
    """An intermediate result during incremental estimation."""

    tables: FrozenSet[str]
    rows: float

    def __post_init__(self) -> None:
        if not self.tables:
            raise EstimationError("an estimate state must contain at least one table")


@dataclass(frozen=True)
class StepEstimate:
    """One incremental step: the table joined and the resulting size."""

    table: str
    rows: float
    applied_selectivity: float = 1.0
    eligible: Tuple[PreparedJoinPredicate, ...] = ()
    used: Tuple[PreparedJoinPredicate, ...] = ()

    @property
    def is_cartesian(self) -> bool:
        """True when no eligible join predicate linked the table in."""
        return not self.eligible


@dataclass(frozen=True)
class IncrementalEstimate:
    """A full join-order estimate with per-step intermediate sizes."""

    order: Tuple[str, ...]
    steps: Tuple[StepEstimate, ...]

    @property
    def rows(self) -> float:
        return self.steps[-1].rows

    @property
    def intermediate_sizes(self) -> Tuple[float, ...]:
        """Result sizes after each join (excluding the initial single table).

        For a four-table order this is the three-element tuple printed in
        the paper's experiment table.
        """
        return tuple(step.rows for step in self.steps[1:])


class JoinSizeEstimator:
    """Join-size estimator configured by an :class:`EstimatorConfig`.

    One instance is bound to one query and one catalog; the preliminary
    phase runs in the constructor and the incremental phase is exposed via
    :meth:`start` / :meth:`join` / :meth:`estimate_order`.

    Args:
        query: The (conjunctive) query.
        catalog: Statistics for every base table the query references.
        config: Feature flags and the selectivity rule; defaults to ELS.
        apply_closure: Run predicate transitive closure first (step 2).
            Both Rule SS and Rule LS "are sensible only when predicate
            transitive closure has been applied", but the flag is
            independent so the paper's first experiment row (original
            query, no PTC) can be reproduced.
    """

    def __init__(
        self,
        query: Query,
        catalog: Catalog,
        config: EstimatorConfig = ELS,
        apply_closure: bool = True,
    ) -> None:
        self._original_query = query
        self._catalog = catalog
        self._config = config
        self._closure: Optional[ClosureResult] = None
        if apply_closure:
            query, closure_result = close_query(query)
            self._closure = closure_result
            self._equivalence = closure_result.equivalence
        else:
            self._equivalence = EquivalenceClasses.from_predicates(query.predicates)
        self._query = query

        if config.check_invariants:
            # Lazy import: repro.lint.semantic depends on core.closure, so a
            # top-level import here would be circular during package init.
            from ..lint.semantic import check_estimator_input

            check_estimator_input(
                self._query,
                catalog,
                self._equivalence,
                expect_closure=apply_closure,
            )

        self._effective: Dict[str, EffectiveTable] = {}
        for table in query.tables:
            base = query.base_table(table)
            stats = catalog.stats(base)
            local = [
                p
                for p in query.predicates
                if p.is_local and p.references(table)
            ]
            self._effective[table] = compute_effective_table(
                table, stats, local, self._equivalence, config
            )

        self._prepared: List[PreparedJoinPredicate] = [
            self._prepare(p) for p in query.predicates if p.is_join
        ]
        self._representatives = self._derive_representatives()

    # -- public accessors --------------------------------------------------

    @property
    def query(self) -> Query:
        """The query after the (optional) transitive-closure rewrite."""
        return self._query

    @property
    def config(self) -> EstimatorConfig:
        return self._config

    @property
    def closure(self) -> Optional[ClosureResult]:
        return self._closure

    @property
    def equivalence(self) -> EquivalenceClasses:
        return self._equivalence

    @property
    def prepared_predicates(self) -> Tuple[PreparedJoinPredicate, ...]:
        return tuple(self._prepared)

    def effective_table(self, table: str) -> EffectiveTable:
        if table not in self._effective:
            raise EstimationError(f"table {table!r} is not part of the query")
        return self._effective[table]

    def base_rows(self, table: str) -> float:
        """Effective cardinality ``||R||'`` of a single table."""
        return self.effective_table(table).rows

    def selectivity_of(self, predicate: ComparisonPredicate) -> float:
        """The precomputed selectivity of a join predicate of this query."""
        canonical = predicate.canonical()
        for prepared in self._prepared:
            if prepared.predicate == canonical:
                return prepared.selectivity
        raise EstimationError(f"{predicate} is not a join predicate of this query")

    # -- incremental phase (step 6) -----------------------------------------

    def start(self, table: str) -> EstimateState:
        """Begin incremental estimation from a single table."""
        return EstimateState(frozenset((table,)), self.base_rows(table))

    def eligible(
        self, joined: FrozenSet[str], table: str
    ) -> Tuple[PreparedJoinPredicate, ...]:
        """Eligible join predicates linking ``table`` to the joined set.

        "the query optimizer only needs to consider the predicates that
        link columns in table R with the corresponding columns in a second
        table S that is present in table I."
        """
        result = []
        for prepared in self._prepared:
            tables = prepared.tables
            if table in tables and (tables - {table}) <= joined:
                result.append(prepared)
        return tuple(result)

    def join(self, state: EstimateState, table: str) -> Tuple[EstimateState, StepEstimate]:
        """Join the next table into the intermediate result.

        Raises:
            EstimationError: if the table is unknown or already joined.
        """
        if table in state.tables:
            raise EstimationError(f"table {table!r} is already part of the result")
        if table not in self._effective:
            raise EstimationError(f"table {table!r} is not part of the query")
        eligible = self.eligible(state.tables, table)
        selectivity, used = self._combine(eligible)
        rows = state.rows * self.base_rows(table) * selectivity
        new_state = EstimateState(state.tables | {table}, rows)
        step = StepEstimate(
            table=table,
            rows=rows,
            applied_selectivity=selectivity,
            eligible=eligible,
            used=used,
        )
        return new_state, step

    def eligible_between(
        self, left: FrozenSet[str], right: FrozenSet[str]
    ) -> Tuple[PreparedJoinPredicate, ...]:
        """Join predicates linking two disjoint table sets (bushy joins)."""
        result = []
        for prepared in self._prepared:
            tables = prepared.tables
            if (tables & left) and (tables & right) and tables <= (left | right):
                result.append(prepared)
        return tuple(result)

    def join_states(
        self, left: EstimateState, right: EstimateState
    ) -> Tuple[EstimateState, StepEstimate]:
        """Join two intermediate results (bushy-plan estimation).

        The incremental rule generalizes: the eligible predicates are those
        crossing the two sets, the configured rule combines them per
        equivalence class, and ``rows = rows_L * rows_R * selectivity``.
        Under full transitive closure Rule LS remains exact: within a
        class the largest crossing selectivity is ``1 / max(min_L, min_R)``
        over the two sides' smallest cardinalities, which is precisely the
        divisor Equation 3 still owes after both sides' internal divisors.

        Raises:
            EstimationError: if the two sets overlap.
        """
        if left.tables & right.tables:
            raise EstimationError(
                f"cannot join overlapping sets {sorted(left.tables)} and "
                f"{sorted(right.tables)}"
            )
        eligible = self.eligible_between(left.tables, right.tables)
        selectivity, used = self._combine(eligible)
        rows = left.rows * right.rows * selectivity
        state = EstimateState(left.tables | right.tables, rows)
        step = StepEstimate(
            table=",".join(sorted(right.tables)),
            rows=rows,
            applied_selectivity=selectivity,
            eligible=eligible,
            used=used,
        )
        return state, step

    def estimate_order(self, order: Sequence[str]) -> IncrementalEstimate:
        """Estimate the result size along a specific join order.

        Returns the per-step intermediate sizes — the quantity the paper's
        experiment table prints for each algorithm.
        """
        if len(order) < 1:
            raise EstimationError("a join order needs at least one table")
        if len(set(order)) != len(order):
            raise EstimationError(f"join order repeats a table: {order}")
        state = self.start(order[0])
        steps = [StepEstimate(table=order[0], rows=state.rows)]
        for table in order[1:]:
            state, step = self.join(state, table)
            steps.append(step)
        return IncrementalEstimate(tuple(order), tuple(steps))

    def estimate(self, order: Sequence[str]) -> float:
        """The final estimated size along a join order."""
        return self.estimate_order(order).rows

    # -- closed form (Equation 3) --------------------------------------------

    def closed_form(self, tables: Optional[Iterable[str]] = None) -> float:
        """Equation 3, generalized: the order-independent result size.

        ``prod(||R_i||')`` divided, per equivalence class, by every
        per-table class cardinality except the smallest.  Under the paper's
        assumptions and full transitive closure this is the correct result
        size, and Rule LS's incremental estimates agree with it for every
        join order (the paper's Section 7 induction; asserted by property
        tests here).

        Only meaningful when the join graph restricted to the table subset
        is connected through the equivalence classes (otherwise the missing
        cross products make the closed form an undercount of the Cartesian
        contribution — the incremental API handles that case).
        """
        subset = frozenset(tables) if tables is not None else frozenset(self._query.tables)
        unknown = subset - set(self._query.tables)
        if unknown:
            raise EstimationError(f"tables {sorted(unknown)} are not in the query")
        rows = 1.0
        for table in subset:
            rows *= self.base_rows(table)
        for group in self._equivalence.classes():
            per_table: Dict[str, float] = {}
            for column in group:
                if column.table not in subset:
                    continue
                distinct = self._distinct_for(column)
                # A table contributes one cardinality per class; multiple
                # columns of one table in the class share the group value
                # under ELS (and the minimum is taken when grouping is off).
                previous = per_table.get(column.table)
                per_table[column.table] = (
                    distinct if previous is None else min(previous, distinct)
                )
            if len(per_table) < 2:
                continue
            ds = sorted(per_table.values())
            for d in ds[1:]:
                rows = rows / d if d > 0 else 0.0
        return rows

    # -- internals -------------------------------------------------------

    def _prepare(self, predicate: ComparisonPredicate) -> PreparedJoinPredicate:
        if predicate.op is not Op.EQ:
            return PreparedJoinPredicate(
                predicate, self._config.default_join_selectivity, None
            )
        assert isinstance(predicate.right, ColumnRef)
        class_id = self._equivalence.class_id(predicate.left)
        if self._config.use_frequency_stats:
            frequency = self._frequency_selectivity(predicate.left, predicate.right)
            if frequency is not None:
                return PreparedJoinPredicate(predicate, frequency, class_id)
        left_d = self._distinct_for(predicate.left)
        right_d = self._distinct_for(predicate.right)
        selectivity = join_selectivity(left_d, right_d)
        return PreparedJoinPredicate(predicate, selectivity, class_id)

    def _frequency_selectivity(
        self, left: ColumnRef, right: ColumnRef
    ) -> Optional[float]:
        """Distribution-aware selectivity (the Section 9 extension).

        Preference order: most-common-values lists (skew,
        :mod:`repro.core.skew`), then histogram overlap (partial domains,
        :mod:`repro.core.histjoin`), then ``None`` — letting Equation 2
        handle the predicate as usual when the catalog has no distribution
        information.
        """
        from .histjoin import histogram_join_selectivity
        from .skew import frequency_join_selectivity

        left_stats = self._catalog.column_stats(
            self._query.base_table(left.table), left.column
        )
        right_stats = self._catalog.column_stats(
            self._query.base_table(right.table), right.column
        )
        left_rows = self.base_rows(left.table)
        right_rows = self.base_rows(right.table)
        if left_stats.mcv is not None or right_stats.mcv is not None:
            return frequency_join_selectivity(
                left_rows, left_stats, right_rows, right_stats
            )
        if left_stats.histogram is not None or right_stats.histogram is not None:
            return histogram_join_selectivity(
                left_rows, left_stats, right_rows, right_stats
            )
        return None

    def _distinct_for(self, column: ColumnRef) -> float:
        """The column cardinality entering join selectivities (step 5).

        ELS uses effective, group-aware cardinalities; the standard
        algorithm (``fold_local_into_columns=False``) uses the original
        catalog values — :func:`compute_effective_table` already arranged
        for ``EffectiveTable.distinct`` to answer accordingly, except that
        group handling must also be bypassed here when disabled.
        """
        effective = self._effective.get(column.table)
        if effective is None:
            raise EstimationError(f"table {column.table!r} is not part of the query")
        if not self._config.handle_single_table_jequiv:
            if column.column not in effective.column_distinct:
                raise EstimationError(
                    f"no statistics for column {column}"
                )
            return effective.column_distinct[column.column]
        return effective.distinct(column.column)

    def _combine(
        self, eligible: Sequence[PreparedJoinPredicate]
    ) -> Tuple[float, Tuple[PreparedJoinPredicate, ...]]:
        """Apply the configured rule to the eligible predicates.

        Returns the combined selectivity and the predicates that actually
        contributed to it (all of them under Rule M; one per class under
        Rules SS/LS).
        """
        if not eligible:
            return 1.0, ()
        by_class: Dict[object, List[PreparedJoinPredicate]] = {}
        independent: List[PreparedJoinPredicate] = []
        for prepared in eligible:
            if prepared.class_id is None:
                independent.append(prepared)
            else:
                by_class.setdefault(prepared.class_id, []).append(prepared)

        total = 1.0
        used: List[PreparedJoinPredicate] = []
        for prepared in independent:
            total *= prepared.selectivity
            used.append(prepared)
        for class_id, members in by_class.items():
            selectivities = [m.selectivity for m in members]
            representative = self._representatives.get(class_id)
            combined = combine_class_selectivities(
                selectivities, self._config.rule, representative
            )
            total *= combined
            if self._config.rule is SelectivityRule.MULTIPLICATIVE:
                used.extend(members)
            elif self._config.rule is SelectivityRule.SMALLEST:
                used.append(min(members, key=_by_selectivity))
            elif self._config.rule is SelectivityRule.LARGEST:
                used.append(max(members, key=_by_selectivity))
            else:
                used.extend(members)
        return total, tuple(used)

    def _derive_representatives(self) -> Dict[object, float]:
        """Per-class representative selectivities for Rule REP."""
        if self._config.rule is not SelectivityRule.REPRESENTATIVE:
            return {}
        if self._config.representative_selectivity is not None:
            constant = self._config.representative_selectivity
            return {
                self._equivalence.class_id(next(iter(group))): constant
                for group in self._equivalence.nontrivial_classes()
            }
        by_class: Dict[object, List[float]] = {}
        for prepared in self._prepared:
            if prepared.class_id is not None:
                by_class.setdefault(prepared.class_id, []).append(prepared.selectivity)
        return {
            class_id: derive_representative(values, self._config.representative_choice)
            for class_id, values in by_class.items()
        }
