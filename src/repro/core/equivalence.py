"""Equivalence classes of columns linked by equality predicates.

Section 2 of the paper: "Initially, each column is an equivalence class by
itself.  When an equality (local or join) predicate is seen during query
optimization, the equivalence classes corresponding to the two columns on
each side of the equality are merged."

The structure is a classic union–find (disjoint-set) over
:class:`~repro.sql.predicates.ColumnRef` with union by size and path
compression.  Estimators use it to

* group eligible join predicates that belong to one class (Rules SS/LS
  operate per group),
* detect single-table j-equivalent column groups (Section 6), and
* drive the equality part of predicate transitive closure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..sql.predicates import ColumnRef, ComparisonPredicate, Op

__all__ = ["EquivalenceClasses"]


class EquivalenceClasses:
    """Union–find over column references.

    Columns never seen by :meth:`add` or :meth:`union` are implicitly
    singleton classes; queries against them are well defined.
    """

    def __init__(self) -> None:
        self._parent: Dict[ColumnRef, ColumnRef] = {}
        self._size: Dict[ColumnRef, int] = {}

    @classmethod
    def from_predicates(
        cls, predicates: Iterable[ComparisonPredicate]
    ) -> "EquivalenceClasses":
        """Build classes by merging on every column=column equality.

        Non-equality predicates and constant predicates do not merge
        classes (their columns are still registered so that ``columns()``
        reports everything the query touches).
        """
        classes = cls()
        for predicate in predicates:
            for column in predicate.columns:
                classes.add(column)
            if predicate.op is Op.EQ and isinstance(predicate.right, ColumnRef):
                classes.union(predicate.left, predicate.right)
        return classes

    def add(self, column: ColumnRef) -> None:
        """Register a column as (at least) a singleton class."""
        if column not in self._parent:
            self._parent[column] = column
            self._size[column] = 1

    def union(self, a: ColumnRef, b: ColumnRef) -> None:
        """Merge the classes of two columns (adding them if unseen)."""
        self.add(a)
        self.add(b)
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]

    def find(self, column: ColumnRef) -> ColumnRef:
        """The class representative for a column (path-compressing)."""
        if column not in self._parent:
            return column
        root = column
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[column] != root:
            self._parent[column], column = root, self._parent[column]
        return root

    def same(self, a: ColumnRef, b: ColumnRef) -> bool:
        """True when the two columns are j-equivalent."""
        return self.find(a) == self.find(b)

    def class_id(self, column: ColumnRef) -> ColumnRef:
        """A stable identifier for the class of a column.

        The identifier is the lexicographically smallest member, so it does
        not depend on union order — tests and reports can rely on it.
        """
        root = self.find(column)
        members = [c for c in self._parent if self.find(c) == root]
        return min(members) if members else column

    def members(self, column: ColumnRef) -> FrozenSet[ColumnRef]:
        """All columns in the same class as the argument."""
        root = self.find(column)
        return frozenset(c for c in self._parent if self.find(c) == root)

    def columns(self) -> Tuple[ColumnRef, ...]:
        """All registered columns, sorted."""
        return tuple(sorted(self._parent))

    def classes(self) -> Tuple[FrozenSet[ColumnRef], ...]:
        """All classes (including singletons), deterministically ordered."""
        by_root: Dict[ColumnRef, List[ColumnRef]] = {}
        for column in self._parent:
            by_root.setdefault(self.find(column), []).append(column)
        groups = [frozenset(group) for group in by_root.values()]
        return tuple(sorted(groups, key=lambda g: min(g)))

    def nontrivial_classes(self) -> Tuple[FrozenSet[ColumnRef], ...]:
        """Classes with at least two members (the ones that matter)."""
        return tuple(g for g in self.classes() if len(g) > 1)

    def single_table_groups(self, table: str) -> Tuple[FrozenSet[ColumnRef], ...]:
        """Groups of two or more j-equivalent columns within one table.

        These are exactly the Section 6 special cases: each group triggers
        the effective-cardinality reduction and the urn-model effective
        column cardinality.
        """
        groups: List[FrozenSet[ColumnRef]] = []
        for cls in self.classes():
            local = frozenset(c for c in cls if c.table == table)
            if len(local) > 1:
                groups.append(local)
        return tuple(sorted(groups, key=min))

    def __len__(self) -> int:
        return len(self.classes())

    def __repr__(self) -> str:
        parts = [
            "{" + ", ".join(str(c) for c in sorted(group)) + "}"
            for group in self.classes()
        ]
        return f"EquivalenceClasses({', '.join(parts)})"
