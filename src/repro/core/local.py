"""Local (single-table) predicate selectivity estimation.

Covers step 3 of Algorithm ELS: "Assign to each local predicate a
selectivity estimate that incorporates any distribution statistics."

Selectivity sources, in order of preference:

1. **Most-common-values list** — exact equality fractions for heavy hitters.
2. **Histogram** — equi-width or equi-depth, for both equality and range
   predicates (Section 5: "If we have distribution statistics on y, they
   can be used to accurately estimate ||R||'.").
3. **Uniformity over the value range** — linear interpolation between the
   recorded min and max, with a ``1/d`` adjustment for bound inclusivity.
4. **Default constants** — when the catalog has no usable information
   (System-R style magic numbers).

Multiple predicates on one column are combined per the companion report
[16], as summarized in the paper: "the most restrictive equality predicate
is chosen if it exists, otherwise we chose a pair of range predicates which
form the tightest bound."  Contradictory conjunctions (``x = 5 AND x = 7``,
or an equality outside the range bounds) combine to selectivity zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..catalog.statistics import ColumnStats
from ..errors import EstimationError
from ..sql.predicates import ComparisonPredicate, Op, PredicateKind

__all__ = [
    "DEFAULT_EQUALITY_SELECTIVITY",
    "DEFAULT_RANGE_SELECTIVITY",
    "DEFAULT_BETWEEN_SELECTIVITY",
    "DEFAULT_INEQUALITY_SELECTIVITY",
    "ColumnFilterEffect",
    "constant_selectivity",
    "combine_column_predicates",
]

Number = Union[int, float]

# System-R style fallbacks, used only when the catalog has no statistics
# that can answer the question.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_BETWEEN_SELECTIVITY = 0.25
DEFAULT_INEQUALITY_SELECTIVITY = 0.9  # for <> with no distinct info


def _clamp(x: float) -> float:
    return min(1.0, max(0.0, x))


def _equality_selectivity(value, stats: ColumnStats) -> float:
    from ..catalog.histogram import EquiWidthHistogram

    if stats.mcv is not None:
        exact = stats.mcv.equality_fraction(value)
        if exact is not None:
            return exact
    numeric = isinstance(value, (int, float)) and not isinstance(value, bool)
    # Only equi-width histograms answer point queries (bucket density over
    # bucket distincts); an equi-depth histogram's continuous interpolation
    # assigns zero mass to interior points, so it falls through to the
    # uniformity estimate below.
    if isinstance(stats.histogram, EquiWidthHistogram) and numeric:
        return _clamp(stats.histogram.fraction(Op.EQ, value))
    if stats.has_range and numeric:
        if value < stats.low or value > stats.high:  # type: ignore[operator]
            return 0.0
    if stats.distinct > 0:
        return 1.0 / stats.distinct
    return DEFAULT_EQUALITY_SELECTIVITY


def _uniform_range_selectivity(op: Op, value: Number, stats: ColumnStats) -> float:
    """Uniformity-based range selectivity over ``[low, high]``.

    ``col < c`` maps to ``(c - low) / (high - low)``; inclusive operators
    add one value's worth (``1/d``) so that ``col <= low`` is ``1/d``
    rather than zero.
    """
    assert stats.low is not None and stats.high is not None
    low = float(stats.low)
    high = float(stats.high)
    value_f = float(value)
    point = 1.0 / stats.distinct if stats.distinct > 0 else 0.0
    if high == low:
        # Single-valued domain: the comparison is all-or-nothing.
        return 1.0 if op.evaluate(low, value_f) else 0.0
    base = (value_f - low) / (high - low)
    if op is Op.LT:
        return _clamp(base)
    if op is Op.LE:
        return _clamp(base + point)
    if op is Op.GT:
        return _clamp(1.0 - base - point)
    if op is Op.GE:
        return _clamp(1.0 - base)
    raise EstimationError(f"operator {op} is not a range operator")


def constant_selectivity(
    predicate: ComparisonPredicate, stats: ColumnStats
) -> float:
    """Selectivity of a single ``col op constant`` predicate.

    Raises:
        EstimationError: if the predicate is not a constant-local predicate.
    """
    if predicate.kind is not PredicateKind.CONSTANT_LOCAL:
        raise EstimationError(f"{predicate} is not a constant-local predicate")
    value = predicate.constant
    op = predicate.op
    if op is Op.EQ:
        return _equality_selectivity(value, stats)
    if op is Op.NE:
        return _clamp(1.0 - _equality_selectivity(value, stats))
    # Range operators.
    numeric = isinstance(value, (int, float)) and not isinstance(value, bool)
    if stats.histogram is not None and numeric:
        return _clamp(stats.histogram.fraction(op, value))
    if stats.has_range and numeric:
        return _uniform_range_selectivity(op, value, stats)
    return DEFAULT_RANGE_SELECTIVITY


@dataclass(frozen=True)
class ColumnFilterEffect:
    """Combined effect of all constant predicates on one column.

    Attributes:
        column: The filtered column's name.
        selectivity: Fraction of rows satisfying the conjunction.
        distinct_after: Effective column cardinality ``d'`` of the filtered
            column itself (Section 5: ``d'_y = 1`` for an equality literal,
            otherwise ``d'_y = d_y * S_L``).
    """

    column: str
    selectivity: float
    distinct_after: float


def combine_column_predicates(
    column: str,
    predicates: Sequence[ComparisonPredicate],
    stats: ColumnStats,
) -> ColumnFilterEffect:
    """Combine all constant predicates on one column per [16].

    The rules, in order:

    1. If any equality predicate exists, it dominates: two equalities with
       different constants (or an equality inconsistent with some range or
       <> predicate) make the conjunction unsatisfiable (selectivity 0);
       otherwise the equality's selectivity is used and ``d'`` becomes 1.
    2. Otherwise the *tightest* lower and upper bounds are kept and their
       interval selectivity estimated in one shot (histogram
       ``fraction_between`` when available, uniform interpolation when only
       min/max are known, System-R defaults otherwise).
    3. ``<>`` predicates multiply in their individual selectivities.

    Raises:
        EstimationError: if a predicate is not on the named column.
    """
    equalities: List[ComparisonPredicate] = []
    lower_bounds: List[ComparisonPredicate] = []
    upper_bounds: List[ComparisonPredicate] = []
    not_equals: List[ComparisonPredicate] = []
    for predicate in predicates:
        if (
            predicate.kind is not PredicateKind.CONSTANT_LOCAL
            or predicate.left.column != column
        ):
            raise EstimationError(
                f"{predicate} is not a constant predicate on column {column!r}"
            )
        if predicate.op is Op.EQ:
            equalities.append(predicate)
        elif predicate.op is Op.NE:
            not_equals.append(predicate)
        elif predicate.op.is_lower_bound:
            lower_bounds.append(predicate)
        else:
            upper_bounds.append(predicate)

    if equalities:
        return _combine_with_equality(
            column, equalities, lower_bounds, upper_bounds, not_equals, stats
        )

    selectivity = _range_interval_selectivity(lower_bounds, upper_bounds, stats)
    for predicate in not_equals:
        selectivity *= constant_selectivity(predicate, stats)
    selectivity = _clamp(selectivity)
    distinct_after = stats.distinct * selectivity
    return ColumnFilterEffect(column, selectivity, distinct_after)


def _combine_with_equality(
    column: str,
    equalities: Sequence[ComparisonPredicate],
    lower_bounds: Sequence[ComparisonPredicate],
    upper_bounds: Sequence[ComparisonPredicate],
    not_equals: Sequence[ComparisonPredicate],
    stats: ColumnStats,
) -> ColumnFilterEffect:
    constants = {p.constant for p in equalities}
    if len(constants) > 1:
        return ColumnFilterEffect(column, 0.0, 0.0)
    value = next(iter(constants))
    # The fixed value must satisfy every other predicate on the column.
    for other in list(lower_bounds) + list(upper_bounds) + list(not_equals):
        if _comparable(value, other.constant) and not other.op.evaluate(
            value, other.constant
        ):
            return ColumnFilterEffect(column, 0.0, 0.0)
    selectivity = _equality_selectivity(value, stats)
    distinct_after = 1.0 if selectivity > 0.0 else 0.0
    return ColumnFilterEffect(column, selectivity, distinct_after)


def _range_interval_selectivity(
    lower_bounds: Sequence[ComparisonPredicate],
    upper_bounds: Sequence[ComparisonPredicate],
    stats: ColumnStats,
) -> float:
    if not lower_bounds and not upper_bounds:
        return 1.0
    tight_low = _tightest(lower_bounds, pick_max=True)
    tight_high = _tightest(upper_bounds, pick_max=False)
    if tight_low is not None and tight_high is not None:
        low_pred, high_pred = tight_low, tight_high
        if _comparable(low_pred.constant, high_pred.constant):
            low_v = low_pred.constant
            high_v = high_pred.constant
            if low_v > high_v or (
                low_v == high_v
                and not (low_pred.op is Op.GE and high_pred.op is Op.LE)
            ):
                return 0.0
        numeric = _is_number(low_pred.constant) and _is_number(high_pred.constant)
        if stats.histogram is not None and numeric:
            return _clamp(
                stats.histogram.fraction_between(
                    low_pred.constant,
                    high_pred.constant,
                    low_inclusive=low_pred.op is Op.GE,
                    high_inclusive=high_pred.op is Op.LE,
                )
            )
        if stats.has_range and numeric:
            low_sel = _uniform_range_selectivity(
                low_pred.op, low_pred.constant, stats
            )
            high_sel = _uniform_range_selectivity(
                high_pred.op, high_pred.constant, stats
            )
            return _clamp(low_sel + high_sel - 1.0)
        return DEFAULT_BETWEEN_SELECTIVITY
    bound = tight_low if tight_low is not None else tight_high
    assert bound is not None
    return constant_selectivity(bound, stats)


def _tightest(
    bounds: Sequence[ComparisonPredicate], pick_max: bool
) -> Optional[ComparisonPredicate]:
    """The most restrictive bound of one direction.

    For lower bounds the largest constant wins; for upper bounds the
    smallest.  On equal constants the strict operator is tighter.  Bounds
    over non-comparable constants (mixed types) fall back to first-seen.
    """
    if not bounds:
        return None
    best = bounds[0]
    for candidate in bounds[1:]:
        if not _comparable(candidate.constant, best.constant):
            continue
        if candidate.constant == best.constant:
            if candidate.op in (Op.GT, Op.LT) and best.op in (Op.GE, Op.LE):
                best = candidate
        elif (candidate.constant > best.constant) == pick_max:
            best = candidate
    return best


def _comparable(a, b) -> bool:
    if _is_number(a) and _is_number(b):
        return True
    return isinstance(a, str) and isinstance(b, str)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
