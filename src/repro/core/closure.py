"""Predicate transitive closure (Algorithm ELS, steps 1–2).

Given the de-duplicated predicate conjunction of a query, this module
derives all implied predicates using the paper's five variations:

a. two join predicates imply another join predicate
   ``(R1.x = R2.y) AND (R2.y = R3.z) => (R1.x = R3.z)``
b. two join predicates imply a local (column-equality) predicate
   ``(R1.x = R2.y) AND (R1.x = R2.w) => (R2.y = R2.w)``
c. two local predicates imply another local predicate
   ``(R1.x = R1.y) AND (R1.y = R1.z) => (R1.x = R1.z)``
d. a join predicate and a local predicate imply another join predicate
   ``(R1.x = R2.y) AND (R1.x = R1.v) => (R2.y = R1.v)``
e. a join predicate and a local predicate imply another local predicate
   ``(R1.x = R2.y) AND (R1.x op c) => (R2.y op c)``

Rules a–d are all instances of transitivity of equality; rule e propagates
constant comparisons across an equality.  The implementation iterates the
rules to a fixpoint and records, for every implied predicate, which rule
produced it — the tests assert each of the five variations individually.

"Performing this predicate transitive closure gives the optimizer maximum
freedom to vary the join order and ensures that the same QEP is generated
for equivalent queries independently of how the queries are specified."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..sql.predicates import (
    ColumnRef,
    ComparisonPredicate,
    Literal,
    Op,
    PredicateKind,
)
from ..sql.query import Query, dedupe_predicates
from .equivalence import EquivalenceClasses

__all__ = ["ClosureRule", "ImpliedPredicate", "ClosureResult", "transitive_closure", "close_query"]


class ClosureRule(enum.Enum):
    """Which of the paper's five derivation rules produced a predicate."""

    JOIN_JOIN_TO_JOIN = "a"
    JOIN_JOIN_TO_LOCAL = "b"
    LOCAL_LOCAL_TO_LOCAL = "c"
    JOIN_LOCAL_TO_JOIN = "d"
    JOIN_LOCAL_TO_CONSTANT = "e"


@dataclass(frozen=True)
class ImpliedPredicate:
    """An implied predicate together with its provenance."""

    predicate: ComparisonPredicate
    rule: ClosureRule
    sources: Tuple[ComparisonPredicate, ComparisonPredicate]

    def __str__(self) -> str:
        return f"{self.predicate}  [rule {self.rule.value}]"


@dataclass(frozen=True)
class ClosureResult:
    """Output of the transitive-closure pass.

    Attributes:
        predicates: The full closed conjunction (given + implied), in
            canonical form with duplicates removed.
        implied: The predicates that were not in the input, with the rule
            that derived each.
        equivalence: Equivalence classes over all columns of the closed
            predicate set.
    """

    predicates: Tuple[ComparisonPredicate, ...]
    implied: Tuple[ImpliedPredicate, ...]
    equivalence: EquivalenceClasses

    @property
    def implied_predicates(self) -> Tuple[ComparisonPredicate, ...]:
        return tuple(ip.predicate for ip in self.implied)

    def implied_by_rule(self, rule: ClosureRule) -> Tuple[ComparisonPredicate, ...]:
        return tuple(ip.predicate for ip in self.implied if ip.rule is rule)


def _classify_equality_derivation(
    new: ComparisonPredicate,
    source_a: ComparisonPredicate,
    source_b: ComparisonPredicate,
) -> ClosureRule:
    """Map an equality derivation to one of rules a–d by operand shapes."""
    a_join = source_a.kind is PredicateKind.JOIN
    b_join = source_b.kind is PredicateKind.JOIN
    new_join = new.kind is PredicateKind.JOIN
    if a_join and b_join:
        return (
            ClosureRule.JOIN_JOIN_TO_JOIN if new_join else ClosureRule.JOIN_JOIN_TO_LOCAL
        )
    if a_join or b_join:
        # One source is a join predicate, the other a local column equality.
        # The paper's rule (d) derives a join predicate from that pair; when
        # both endpoints of the conclusion land in the same table it is the
        # local-conclusion sibling, which the paper folds under rule (c)'s
        # "local" umbrella — we keep rule (d) because a join source exists.
        return ClosureRule.JOIN_LOCAL_TO_JOIN
    return ClosureRule.LOCAL_LOCAL_TO_LOCAL


def transitive_closure(
    predicates: Tuple[ComparisonPredicate, ...],
) -> ClosureResult:
    """Compute the transitive closure of a conjunction of predicates.

    The input is first canonicalized and de-duplicated (step 1).  Equality
    predicates are closed under transitivity; constant predicates are
    propagated to every j-equivalent column (rule e).  Non-equality
    column-column predicates pass through untouched: as the paper notes,
    "equality predicates are the most common and important class of
    predicates that generate implied predicates".
    """
    given = dedupe_predicates(predicates)
    known: Set[ComparisonPredicate] = set(given)
    ordered: List[ComparisonPredicate] = list(given)
    implied: List[ImpliedPredicate] = []

    # -- equality closure (rules a-d), iterated to fixpoint --------------
    changed = True
    while changed:
        changed = False
        equalities = [
            p
            for p in ordered
            if p.op is Op.EQ and isinstance(p.right, ColumnRef)
        ]
        for i, first in enumerate(equalities):
            for second in equalities[i + 1 :]:
                shared = _shared_column(first, second)
                if shared is None:
                    continue
                left = _other_column(first, shared)
                right = _other_column(second, shared)
                if left == right:
                    continue
                candidate = ComparisonPredicate(left, Op.EQ, right).canonical()
                if candidate in known:
                    continue
                rule = _classify_equality_derivation(candidate, first, second)
                known.add(candidate)
                ordered.append(candidate)
                implied.append(ImpliedPredicate(candidate, rule, (first, second)))
                changed = True

    # -- constant propagation (rule e) ------------------------------------
    equivalence = EquivalenceClasses.from_predicates(ordered)
    constant_preds = [
        p for p in ordered if p.kind is PredicateKind.CONSTANT_LOCAL
    ]
    for constant in constant_preds:
        for member in equivalence.members(constant.left):
            if member == constant.left:
                continue
            assert isinstance(constant.right, Literal)
            candidate = ComparisonPredicate(member, constant.op, constant.right)
            if candidate in known:
                continue
            # Provenance: the constant predicate plus *an* equality that
            # witnesses the class membership (the closure has made all
            # pairwise equalities explicit, so a direct witness exists).
            witness = _find_equality(ordered, constant.left, member)
            known.add(candidate)
            ordered.append(candidate)
            implied.append(
                ImpliedPredicate(
                    candidate, ClosureRule.JOIN_LOCAL_TO_CONSTANT, (witness, constant)
                )
            )

    return ClosureResult(
        predicates=tuple(ordered),
        implied=tuple(implied),
        equivalence=equivalence,
    )


def close_query(query: Query) -> Tuple[Query, ClosureResult]:
    """Apply transitive closure to a query, returning the rewritten query.

    This is the library's equivalent of the Starburst query-rewrite rule the
    paper used ("Predicate transitive closure (PTC) was implemented as a
    query rewrite rule so that we could disable it as necessary") — callers
    that want PTC disabled simply skip this function.
    """
    result = transitive_closure(query.predicates)
    return query.with_predicates(result.predicates), result


def _shared_column(a: ComparisonPredicate, b: ComparisonPredicate):
    """The column reference two equality predicates have in common, if any."""
    for column in a.columns:
        if column in b.columns:
            return column
    return None


def _other_column(predicate: ComparisonPredicate, column: ColumnRef) -> ColumnRef:
    assert isinstance(predicate.right, ColumnRef)
    return predicate.right if predicate.left == column else predicate.left


def _find_equality(
    predicates: List[ComparisonPredicate], a: ColumnRef, b: ColumnRef
) -> ComparisonPredicate:
    """Find the explicit equality predicate linking two columns."""
    target = ComparisonPredicate(a, Op.EQ, b).canonical()
    for predicate in predicates:
        if predicate == target:
            return predicate
    # The closure guarantees a direct witness; synthesize one defensively.
    return target
