"""Estimator configuration: the knobs that define ELS and its baselines.

Every algorithm in the paper's experiment is one setting of these flags:

* **Algorithm ELS** — all features on, Rule LS.
* **Algorithm SM** — the "standard" path (no local-predicate effects on
  column cardinalities, no single-table j-equivalence handling), Rule M.
* **Algorithm SSS** — the standard path with Rule SS.
* **Representative** — the Section 3.3 proposal: a fixed per-class
  selectivity.

Predicate transitive closure is a separate, query-level rewrite
(:func:`repro.core.closure.close_query`) and is toggled by the caller, just
as the paper toggled Starburst's rewrite rule.  Ablation benchmarks flip
individual flags off one at a time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["SelectivityRule", "EstimatorConfig", "ELS", "SM", "SRS", "SSS"]


class SelectivityRule(enum.Enum):
    """How to combine the eligible join selectivities of one equivalence class."""

    MULTIPLICATIVE = "M"  # Rule M: multiply all of them (Selinger [13])
    SMALLEST = "SS"  # Rule SS: the smallest selectivity per class
    LARGEST = "LS"  # Rule LS: the largest selectivity per class (ELS)
    REPRESENTATIVE = "REP"  # Section 3.3: one fixed selectivity per class


@dataclass(frozen=True)
class EstimatorConfig:
    """Feature flags for a :class:`~repro.core.estimator.JoinSizeEstimator`.

    Attributes:
        rule: Per-equivalence-class selectivity combination rule.
        fold_local_into_columns: Section 5 — local predicates reduce the
            column cardinalities used in join selectivities.  Off for the
            "standard algorithm" which "computes join selectivities
            independent of the effect of local predicates".
        use_urn_model: Section 5 — use the urn model for distinct-value
            reduction of non-filtered columns (off = proportional scaling,
            the "other common estimate").
        handle_single_table_jequiv: Section 6 — special-case j-equivalent
            join columns within one table.  When off, the implied
            column-equality local predicate just scales the row count.
        representative_selectivity: For ``Rule REP``: the fixed selectivity
            applied once per class per incremental step.  ``None`` derives
            a per-class value from the class's predicates using
            ``representative_choice``.
        representative_choice: ``"smallest"`` or ``"largest"`` — how a
            per-class representative is derived when no explicit value is
            given.
        default_join_selectivity: Selectivity for non-equality join
            predicates (the paper's machinery only covers equijoins).
        use_frequency_stats: The Section 9 future-work extension — when
            most-common-values lists are available on both join columns,
            compute per-predicate selectivities from frequencies
            (:mod:`repro.core.skew`) instead of Equation 2.  Degenerates to
            Equation 2 when no MCVs exist, so it is safe to leave on for
            uniform workloads.
        check_invariants: Run the layer-2 semantic diagnostics
            (:func:`repro.lint.semantic.check_estimator_input`) on the
            query the preliminary phase produced, raising
            :class:`repro.errors.DiagnosticError` on any error-severity
            finding.  Off by default (zero-overhead estimation); the
            benchmark harness turns it on so every measured run is
            invariant-checked.
    """

    rule: SelectivityRule = SelectivityRule.LARGEST
    fold_local_into_columns: bool = True
    use_urn_model: bool = True
    handle_single_table_jequiv: bool = True
    representative_selectivity: Optional[float] = None
    representative_choice: str = "smallest"
    default_join_selectivity: float = 1.0 / 3.0
    use_frequency_stats: bool = False
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.representative_choice not in ("smallest", "largest"):
            raise ValueError(
                "representative_choice must be 'smallest' or 'largest', got "
                f"{self.representative_choice!r}"
            )
        if self.representative_selectivity is not None and not (
            0.0 < self.representative_selectivity <= 1.0
        ):
            raise ValueError("representative_selectivity must be in (0, 1]")
        if not 0.0 < self.default_join_selectivity <= 1.0:
            raise ValueError("default_join_selectivity must be in (0, 1]")

    def but(self, **changes) -> "EstimatorConfig":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)


#: Algorithm ELS: every paper feature enabled, Rule LS.
ELS = EstimatorConfig(rule=SelectivityRule.LARGEST)

#: Algorithm SM: standard estimation path with the multiplicative rule.
SM = EstimatorConfig(
    rule=SelectivityRule.MULTIPLICATIVE,
    fold_local_into_columns=False,
    use_urn_model=False,
    handle_single_table_jequiv=False,
)

#: Algorithm SSS: standard estimation path with the smallest-selectivity rule.
SSS = EstimatorConfig(
    rule=SelectivityRule.SMALLEST,
    fold_local_into_columns=False,
    use_urn_model=False,
    handle_single_table_jequiv=False,
)

#: Algorithm SRS: standard estimation path with the Section 3.3
#: representative rule (one derived selectivity per equivalence class).
SRS = EstimatorConfig(
    rule=SelectivityRule.REPRESENTATIVE,
    fold_local_into_columns=False,
    use_urn_model=False,
    handle_single_table_jequiv=False,
)
