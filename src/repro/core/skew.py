"""Skew-aware join-size estimation (the paper's Section 9 future work).

"Relaxing the [uniformity] assumption in the case of join predicates would
enable query optimizers to account for important data distributions such
as the Zipfian distribution."  This module implements that relaxation in
the way later systems did: with **frequency statistics**.

Given most-common-values lists on both join columns (collected by ANALYZE
with ``mcv_k > 0``), a two-way equijoin size decomposes into four parts:

* **MCV x MCV** — exact: ``sum f_L(v) * f_R(v)`` over shared MCVs;
* **MCV x tail** — each left MCV not in the right MCV list matches the
  right tail's average frequency (if it falls in the right domain under
  containment);
* **tail x MCV** — symmetric;
* **tail x tail** — the paper's own Equation 1 applied to what remains:
  ``min(d_L^tail, d_R^tail)`` shared values times the average tail
  frequencies.

When neither column has an MCV list this degenerates to exactly
Equation 1, so the estimator extension is a strict generalization: enable
it with ``EstimatorConfig.but(use_frequency_stats=True)`` — uniform
workloads are unaffected, Zipf workloads stop collapsing.

:func:`exact_join_size` (full frequency maps) is also provided as the
oracle the tests validate against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from ..catalog.statistics import ColumnStats
from ..errors import EstimationError

__all__ = ["exact_join_size", "frequency_join_size", "frequency_join_selectivity"]

Value = Union[int, float, str]


def exact_join_size(
    left_frequencies: Mapping[Value, int], right_frequencies: Mapping[Value, int]
) -> int:
    """The exact equijoin size from full value-frequency maps.

    ``|L >< R| = sum over v of f_L(v) * f_R(v)`` — the identity every
    estimate in this module (and the paper) approximates.
    """
    smaller, larger = left_frequencies, right_frequencies
    if len(larger) < len(smaller):
        smaller, larger = larger, smaller
    return sum(count * larger.get(value, 0) for value, count in smaller.items())


@dataclass(frozen=True)
class _Side:
    """One join side split into its MCV part and its tail."""

    rows: float
    distinct: float
    mcv: Dict[Value, float]

    @property
    def mcv_rows(self) -> float:
        return float(sum(self.mcv.values()))

    @property
    def tail_rows(self) -> float:
        return max(0.0, self.rows - self.mcv_rows)

    @property
    def tail_distinct(self) -> float:
        return max(0.0, self.distinct - len(self.mcv))

    @property
    def tail_frequency(self) -> float:
        """Average rows per distinct tail value (uniformity on the tail)."""
        if self.tail_distinct <= 0:
            return 0.0
        return self.tail_rows / self.tail_distinct


def _side(rows: float, stats: ColumnStats, scale: float) -> _Side:
    """Build a side, scaling recorded MCV counts to the effective row count.

    ``scale`` maps catalog-time frequencies to effective frequencies after
    local predicates (the same proportional reduction the estimator applies
    to the row count).
    """
    mcv: Dict[Value, float] = {}
    if stats.mcv is not None and stats.mcv.total > 0:
        for value, count in stats.mcv.entries.items():
            mcv[value] = count * scale
    return _Side(rows=rows, distinct=float(stats.distinct), mcv=mcv)


def frequency_join_size(
    left_rows: float,
    left_stats: ColumnStats,
    right_rows: float,
    right_stats: ColumnStats,
) -> float:
    """Skew-aware two-way equijoin size estimate.

    Args:
        left_rows: Effective cardinality of the left table (after local
            predicates).
        left_stats: Catalog statistics of the left join column (its MCV
            list, if any, is assumed proportional under the local
            predicates — the same assumption the row count uses).
        right_rows: Effective cardinality of the right table.
        right_stats: Catalog statistics of the right join column.

    Raises:
        EstimationError: on negative row counts.
    """
    if left_rows < 0 or right_rows < 0:
        raise EstimationError("row counts must be non-negative")
    if left_rows == 0 or right_rows == 0:
        return 0.0

    left_scale = _scale(left_rows, left_stats)
    right_scale = _scale(right_rows, right_stats)
    left = _side(left_rows, left_stats, left_scale)
    right = _side(right_rows, right_stats, right_scale)

    if not left.mcv and not right.mcv:
        # No frequency information: exactly Equation 1.
        top = max(left.distinct, right.distinct)
        return left_rows * right_rows / top if top > 0 else 0.0

    total = 0.0
    # MCV x MCV: exact on the recorded values.
    shared = set(left.mcv) & set(right.mcv)
    for value in shared:
        total += left.mcv[value] * right.mcv[value]

    # MCV x tail (both directions): an MCV missing from the other side's
    # list matches that side's average tail frequency with the containment
    # hit probability (the probe value lands among the build side's tail
    # values with chance tail_distinct / max(d_L, d_R)).
    for value, frequency in left.mcv.items():
        if value not in shared:
            total += frequency * right.tail_frequency * _tail_hit(left, right)
    for value, frequency in right.mcv.items():
        if value not in shared:
            total += frequency * left.tail_frequency * _tail_hit(right, left)

    # Tail x tail: Equation 1 on the leftovers.
    shared_tail = min(left.tail_distinct, right.tail_distinct)
    total += shared_tail * left.tail_frequency * right.tail_frequency
    return total


def _tail_hit(probe: _Side, build: _Side) -> float:
    """Probability an off-list probe value exists in the build tail.

    Under containment the smaller column's values are a subset of the
    larger's, so a probe value drawn from the union domain (size
    ``max(d_L, d_R)``) lands on one of the build side's
    ``build.tail_distinct`` unlisted values with probability
    ``tail_distinct / max(d_L, d_R)``.  When the build tail is empty the
    probe can only match build MCVs, which the exact part already covered.
    """
    domain = max(probe.distinct, build.distinct)
    if domain <= 0 or build.tail_distinct <= 0:
        return 0.0
    return min(1.0, build.tail_distinct / domain)


def _scale(effective_rows: float, stats: ColumnStats) -> float:
    """Proportional MCV scaling from catalog rows to effective rows."""
    if stats.mcv is None or stats.mcv.total <= 0:
        return 1.0
    return min(1.0, effective_rows / stats.mcv.total)


def frequency_join_selectivity(
    left_rows: float,
    left_stats: ColumnStats,
    right_rows: float,
    right_stats: ColumnStats,
) -> float:
    """The skew-aware size re-expressed as an Equation 2 style selectivity.

    ``S_J = |L >< R| / (||L|| * ||R||)`` — this is what plugs into the
    incremental framework, so Rules M/SS/LS continue to work unchanged on
    top of the better per-predicate numbers.
    """
    if left_rows <= 0 or right_rows <= 0:
        return 0.0
    size = frequency_join_size(left_rows, left_stats, right_rows, right_stats)
    return min(1.0, size / (left_rows * right_rows))
