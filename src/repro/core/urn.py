"""The urn model for distinct-value estimation under selection (Section 5).

When a local predicate reduces a table from ``||R||`` to ``||R||'`` rows,
the number of distinct values surviving in *another* column ``x`` is modeled
as throwing ``k = ||R||'`` balls uniformly into ``n = d_x`` urns and counting
non-empty urns:

    E[non-empty urns] = n * (1 - (1 - 1/n)^k)

The paper contrasts this with the common proportional estimate
``d_x' = d_x * (||R||' / ||R||)`` and gives the numeric anchor: with
``d_x = 10000``, ``||R|| = 100000``, ``||R||' = 50000``, the urn model gives
9933 while the proportional estimate gives 5000; with ``||R||' = ||R||`` the
urn model gives 10000 (no spurious reduction).

The exponential is computed as ``exp(k * log1p(-1/n))`` so that very large
``k`` and ``n`` stay numerically stable.
"""

from __future__ import annotations

import math

__all__ = [
    "expected_distinct",
    "urn_distinct",
    "proportional_distinct",
]


def expected_distinct(distinct: int, selected_rows: float) -> float:
    """Expected number of distinct values after selecting ``selected_rows``.

    Args:
        distinct: ``n`` — distinct values before selection (urn count).
        selected_rows: ``k`` — rows surviving the selection (ball count).
            Fractional row estimates are accepted; the formula extends
            continuously.

    Returns:
        The real-valued expectation ``n * (1 - (1 - 1/n)^k)``.

    Raises:
        ValueError: for negative arguments.
    """
    if distinct < 0:
        raise ValueError(f"distinct count must be >= 0, got {distinct}")
    if selected_rows < 0:
        raise ValueError(f"selected row count must be >= 0, got {selected_rows}")
    if distinct == 0 or selected_rows == 0:
        return 0.0
    if distinct == 1:
        return 1.0
    n = float(distinct)
    # (1 - 1/n)^k computed in log space for numerical stability.
    miss_probability = math.exp(selected_rows * math.log1p(-1.0 / n))
    return n * (1.0 - miss_probability)


def urn_distinct(distinct: int, selected_rows: float) -> int:
    """The paper's integer estimate: ceiling of the urn expectation.

    Section 5 writes the estimate with ceiling brackets; the result is also
    clamped to ``[0, distinct]`` (the expectation never exceeds ``n`` but
    the ceiling could reach it exactly, which is fine).
    """
    value = expected_distinct(distinct, selected_rows)
    return min(distinct, int(math.ceil(value - 1e-12)))


def proportional_distinct(distinct: int, selected_rows: float, total_rows: float) -> float:
    """The "other common estimate": scale distincts by the selected fraction.

    ``d_x' = d_x * (||R||' / ||R||)``.  Included as the baseline the paper
    argues against (it badly underestimates when rows-per-value is high).

    Raises:
        ValueError: when ``total_rows`` is zero but rows were selected.
    """
    if total_rows <= 0:
        if selected_rows > 0:
            raise ValueError("selected rows from an empty table")
        return 0.0
    fraction = min(1.0, max(0.0, selected_rows / total_rows))
    return distinct * fraction
