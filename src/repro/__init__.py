"""Reproduction of *On the Estimation of Join Result Sizes* (Swami &
Schiefer, EDBT 1994).

The package implements **Algorithm ELS** (Equivalence and Largest
Selectivity) for incremental join-result-size estimation together with the
baselines the paper compares against (Rule M, Rule SS, the representative
selectivity proposal), and every substrate needed to evaluate them: a SQL
front-end, a statistics catalog, predicate transitive closure, a
Selinger-style join-order optimizer, an execution engine for ground truth,
and synthetic workload generators.

Quickstart::

    from repro import Catalog, JoinSizeEstimator, parse_query, ELS

    catalog = Catalog.from_stats({
        "R1": (100, {"x": 10}),
        "R2": (1000, {"y": 100}),
        "R3": (1000, {"z": 1000}),
    })
    query = parse_query(
        "SELECT * FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z"
    )
    estimator = JoinSizeEstimator(query, catalog, ELS)
    print(estimator.estimate(["R2", "R3", "R1"]))   # 1000.0 (correct)

See DESIGN.md for the subsystem inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and example.
"""

from .catalog import (
    Catalog,
    ColumnDef,
    ColumnStats,
    ColumnType,
    HistogramKind,
    TableSchema,
    TableStats,
)
from .core import (
    ELS,
    SM,
    SRS,
    SSS,
    CardinalityEstimator,
    EquivalenceClasses,
    EstimatorConfig,
    IncrementalEstimate,
    JoinSizeEstimator,
    SelectivityRule,
    close_query,
    estimator_names,
    make_estimator,
    register_estimator,
    transitive_closure,
    two_way_join_size,
    urn_distinct,
)
from .errors import DiagnosticError, LintError, ReproError
from .execution import ExecutionResult, Executor
from .lint import Diagnostic, Severity, analyze_query, lint_paths
from .optimizer import CostModel, JoinMethod, Optimizer, OptimizerResult, explain
from .sql import (
    ColumnRef,
    ComparisonPredicate,
    Op,
    Query,
    column_equality,
    join_predicate,
    local_predicate,
    parse_query,
)
from .storage import Database, Table
from .workloads import TableSpec, build_database

__version__ = "1.0.0"

__all__ = [
    "CardinalityEstimator",
    "Catalog",
    "ColumnDef",
    "ColumnRef",
    "ColumnStats",
    "ColumnType",
    "ComparisonPredicate",
    "CostModel",
    "Database",
    "Diagnostic",
    "DiagnosticError",
    "ELS",
    "EquivalenceClasses",
    "EstimatorConfig",
    "ExecutionResult",
    "Executor",
    "HistogramKind",
    "IncrementalEstimate",
    "JoinMethod",
    "JoinSizeEstimator",
    "LintError",
    "Op",
    "Optimizer",
    "OptimizerResult",
    "Query",
    "ReproError",
    "SM",
    "SRS",
    "SSS",
    "SelectivityRule",
    "Severity",
    "Table",
    "TableSchema",
    "TableSpec",
    "TableStats",
    "analyze_query",
    "close_query",
    "column_equality",
    "build_database",
    "estimator_names",
    "explain",
    "join_predicate",
    "lint_paths",
    "make_estimator",
    "local_predicate",
    "parse_query",
    "register_estimator",
    "transitive_closure",
    "two_way_join_size",
    "urn_distinct",
    "__version__",
]
