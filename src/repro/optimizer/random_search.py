"""Randomized join-order search: iterative improvement and annealing.

The paper motivates incremental estimation by exactly these consumers:
"Incremental estimation is used, for example, in the dynamic programming
algorithm [13], the AB algorithm [15] and randomized algorithms [14, 5]."
This module supplies the randomized family (after Swami's thesis [14] and
Kang [5]): both algorithms walk the space of *left-deep join orders*, cost
each complete order by folding the incremental estimator along it (the
same ``_expand`` step dynamic programming uses), and move between
neighbors obtained by swapping two positions.

* **Iterative improvement** — repeated random restarts, each descending
  to a local minimum by accepting only improving swaps.
* **Simulated annealing** — one long walk accepting uphill moves with
  probability ``exp(-delta / temperature)`` under geometric cooling.

Exponential DP is exact but explodes past ~13 relations; these run in
O(restarts * moves * n) and plug into the same :class:`Optimizer` facade
(``enumerator="random"`` / ``"annealing"``).  All randomness flows through
an explicit seed, so results are reproducible.
"""

from __future__ import annotations

import math
import random
from typing import List, Mapping, Optional, Sequence, Tuple

from ..core.estimator import JoinSizeEstimator
from ..errors import OptimizationError
from .cost import CostModel
from .enumerate import _build_scans, _Candidate, _expand
from .plans import JoinMethod, PlanNode

__all__ = ["cost_of_order", "enumerate_iterative_improvement", "enumerate_annealing"]

DEFAULT_METHODS = (JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE)


def cost_of_order(
    order: Sequence[str],
    scans: Mapping[str, _Candidate],
    estimator: JoinSizeEstimator,
    cost_model: CostModel,
    methods: Sequence[JoinMethod],
) -> Optional[_Candidate]:
    """Build the best left-deep plan for a fixed join order.

    Each step picks the cheapest applicable join method; the estimator is
    walked incrementally along the order exactly as in the DP.  Returns
    ``None`` when some step has no applicable method (cannot happen with
    nested loops in the repertoire, since NL accepts cartesian steps).
    """
    candidate = scans[order[0]]
    for relation in order[1:]:
        expanded = _expand(candidate, relation, scans, estimator, cost_model, methods)
        if expanded is None:
            return None
        candidate = expanded
    return candidate


def _random_connected_order(
    relations: List[str], estimator: JoinSizeEstimator, rng: random.Random
) -> List[str]:
    """A random order that prefers connected extensions (few cartesians)."""
    remaining = list(relations)
    rng.shuffle(remaining)
    order = [remaining.pop(0)]
    joined = frozenset(order)
    while remaining:
        connected = [r for r in remaining if estimator.eligible(joined, r)]
        pool = connected or remaining
        chosen = rng.choice(pool)
        remaining.remove(chosen)
        order.append(chosen)
        joined = joined | {chosen}
    return order


def _neighbor(order: List[str], rng: random.Random) -> List[str]:
    """Swap two random positions (the classic 'swap' move)."""
    i, j = rng.sample(range(len(order)), 2)
    neighbor = list(order)
    neighbor[i], neighbor[j] = neighbor[j], neighbor[i]
    return neighbor


def enumerate_iterative_improvement(
    estimator: JoinSizeEstimator,
    cost_model: CostModel,
    widths: Mapping[str, int],
    original_rows: Mapping[str, int],
    methods: Sequence[JoinMethod] = DEFAULT_METHODS,
    seed: int = 0,
    restarts: int = 8,
    max_stale_moves: int = 50,
) -> PlanNode:
    """Iterative improvement over left-deep join orders.

    Args:
        estimator: Prepared join-size estimator (any algorithm config).
        cost_model: Page-based cost model.
        widths: Row widths per relation.
        original_rows: Unfiltered row counts per relation (scan costs).
        methods: Join method repertoire.
        seed: Randomness seed (reproducible searches).
        restarts: Number of random starting orders.
        max_stale_moves: Consecutive non-improving swaps before a restart
            is declared locally optimal.

    Raises:
        OptimizationError: for an empty query or if no order is costable.
    """
    relations = list(estimator.query.tables)
    if not relations:
        raise OptimizationError("cannot optimize a query with no tables")
    scans = _build_scans(estimator, cost_model, widths, original_rows)
    if len(relations) == 1:
        return scans[relations[0]].plan

    rng = random.Random(seed)
    best: Optional[_Candidate] = None
    for _ in range(max(1, restarts)):
        order = _random_connected_order(relations, estimator, rng)
        current = cost_of_order(order, scans, estimator, cost_model, methods)
        if current is None:
            continue
        stale = 0
        while stale < max_stale_moves:
            neighbor_order = _neighbor(order, rng)
            neighbor = cost_of_order(
                neighbor_order, scans, estimator, cost_model, methods
            )
            if neighbor is not None and neighbor.cost < current.cost:
                order, current = neighbor_order, neighbor
                stale = 0
            else:
                stale += 1
        if best is None or current.cost < best.cost:
            best = current
    if best is None:
        raise OptimizationError("iterative improvement found no costable order")
    return best.plan


def enumerate_annealing(
    estimator: JoinSizeEstimator,
    cost_model: CostModel,
    widths: Mapping[str, int],
    original_rows: Mapping[str, int],
    methods: Sequence[JoinMethod] = DEFAULT_METHODS,
    seed: int = 0,
    initial_temperature_factor: float = 0.1,
    cooling: float = 0.95,
    moves_per_temperature: int = 20,
    frozen_temperature_ratio: float = 1e-4,
) -> PlanNode:
    """Simulated annealing over left-deep join orders (after [14, 5]).

    The initial temperature is ``initial_temperature_factor`` times the
    starting order's cost, cooled geometrically; uphill swaps are accepted
    with probability ``exp(-delta / T)``.  The best order ever visited is
    returned (not merely the final one).

    Raises:
        OptimizationError: on a query with no tables or when no valid
            starting order exists.
    """
    relations = list(estimator.query.tables)
    if not relations:
        raise OptimizationError("cannot optimize a query with no tables")
    scans = _build_scans(estimator, cost_model, widths, original_rows)
    if len(relations) == 1:
        return scans[relations[0]].plan

    rng = random.Random(seed)
    order = _random_connected_order(relations, estimator, rng)
    current = cost_of_order(order, scans, estimator, cost_model, methods)
    if current is None:
        raise OptimizationError("annealing found no costable starting order")
    best = current
    temperature = max(current.cost * initial_temperature_factor, 1e-9)
    floor = temperature * frozen_temperature_ratio
    while temperature > floor:
        for _ in range(moves_per_temperature):
            neighbor_order = _neighbor(order, rng)
            neighbor = cost_of_order(
                neighbor_order, scans, estimator, cost_model, methods
            )
            if neighbor is None:
                continue
            delta = neighbor.cost - current.cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                order, current = neighbor_order, neighbor
                if current.cost < best.cost:
                    best = current
        temperature *= cooling
    return best.plan
