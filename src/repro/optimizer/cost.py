"""Page-based cost model for scans and the three join methods.

The currency is *page I/Os*, with a small CPU weight per tuple operation to
break ties — the standard System-R-era formulation [13].  Cardinality
estimates flow in from the pluggable join-size estimator; this module turns
(rows, widths) into costs:

* **Scan**: read every page of the base table.
* **Nested loops**: read the outer once; re-read the inner once per
  buffer-full of the outer (block nested loops).
* **Sort merge**: two-pass external sort of both inputs (write + read every
  page, times a log factor for multiway merge levels) plus one merge pass.
* **Hash** (extension): one read of each input plus hashing CPU; assumes
  the build side's hash table fits in memory, else a Grace factor of 3.

The model is deliberately simple.  What the paper's experiment needs from a
cost model is only that *feeding it wrong cardinalities produces bad join
orders and feeding it right cardinalities produces good ones* — absolute
calibration against 1994 hardware is out of scope (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Cost parameters; defaults model a small 1990s buffer pool.

    Attributes:
        page_size: Bytes per page.
        buffer_pages: Pages of buffer available to a join.
        cpu_weight: Page-equivalents charged per tuple comparison/move, the
            ``W`` of Selinger's ``cost = I/O + W * RSI-calls``.
        materialize_output: Charge writing each join's output to a temp
            (and it will be read again by the next join); keeps oversized
            intermediates expensive, which is what bad estimates hide.
    """

    page_size: int = 4096
    buffer_pages: int = 64
    cpu_weight: float = 0.001
    materialize_output: bool = True

    def pages(self, rows: float, row_width: int) -> float:
        """Pages needed to hold ``rows`` tuples of the given width."""
        if rows <= 0:
            return 0.0
        per_page = max(1.0, self.page_size / max(1, row_width))
        return math.ceil(rows / per_page)

    # -- scans -----------------------------------------------------------

    def scan_cost(self, table_rows: float, row_width: int, predicates: int = 0) -> float:
        """Sequential scan plus per-row predicate CPU."""
        io = self.pages(table_rows, row_width)
        cpu = self.cpu_weight * table_rows * max(1, predicates)
        return io + cpu

    # -- joins -------------------------------------------------------------

    def nested_loops_cost(
        self,
        outer_rows: float,
        outer_width: int,
        inner_rows: float,
        inner_width: int,
    ) -> float:
        """Block nested loops over materialized inputs."""
        outer_pages = self.pages(outer_rows, outer_width)
        inner_pages = self.pages(inner_rows, inner_width)
        if inner_pages <= self.buffer_pages:
            io = outer_pages + inner_pages
        else:
            passes = max(1.0, math.ceil(outer_pages / max(1, self.buffer_pages - 1)))
            io = outer_pages + passes * inner_pages
        cpu = self.cpu_weight * outer_rows * inner_rows
        return io + cpu

    def sort_merge_cost(
        self,
        outer_rows: float,
        outer_width: int,
        inner_rows: float,
        inner_width: int,
    ) -> float:
        """External sort of both inputs plus one merge pass."""
        io = self._sort_cost(outer_rows, outer_width) + self._sort_cost(
            inner_rows, inner_width
        )
        io += self.pages(outer_rows, outer_width) + self.pages(inner_rows, inner_width)
        cpu = self.cpu_weight * (
            _n_log_n(outer_rows) + _n_log_n(inner_rows) + outer_rows + inner_rows
        )
        return io + cpu

    def hash_cost(
        self,
        outer_rows: float,
        outer_width: int,
        inner_rows: float,
        inner_width: int,
    ) -> float:
        """Hash join: in-memory when the build side fits, Grace otherwise."""
        outer_pages = self.pages(outer_rows, outer_width)
        inner_pages = self.pages(inner_rows, inner_width)
        if inner_pages <= self.buffer_pages:
            io = outer_pages + inner_pages
        else:
            io = 3.0 * (outer_pages + inner_pages)
        cpu = self.cpu_weight * (outer_rows + inner_rows)
        return io + cpu

    def output_cost(self, result_rows: float, result_width: int) -> float:
        """Materializing a join's output (write now, read by the consumer)."""
        if not self.materialize_output:
            return 0.0
        return 2.0 * self.pages(result_rows, result_width) + self.cpu_weight * result_rows

    def _sort_cost(self, rows: float, row_width: int) -> float:
        pages = self.pages(rows, row_width)
        if pages <= 1:
            return pages
        fan_in = max(2, self.buffer_pages - 1)
        runs = max(1.0, math.ceil(pages / max(1, self.buffer_pages)))
        merge_levels = max(1.0, math.ceil(math.log(runs, fan_in))) if runs > 1 else 1.0
        return 2.0 * pages * merge_levels


def _n_log_n(rows: float) -> float:
    if rows <= 1:
        return rows
    return rows * math.log2(rows)
