"""The optimizer facade: estimation + enumeration + cost in one call.

This is the reproduction's stand-in for the modified Starburst optimizer of
Section 8.  The cardinality estimator is *pluggable*: passing the ``SM``,
``SSS``, or ``ELS`` configuration (and toggling ``apply_closure``) yields
exactly the four experimental setups of the paper's table —

===========================  ==================  ===========
Paper row                    config              closure
===========================  ==================  ===========
Orig. / SM                   ``SM``              off
Orig. + PTC / SM             ``SM``              on
Orig. + PTC / SSS            ``SSS``             on
Orig. / ELS                  ``ELS``             on (ELS owns PTC)
===========================  ==================  ===========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..catalog.statistics import Catalog
from ..core.config import ELS, EstimatorConfig
from ..core.estimator import IncrementalEstimate, JoinSizeEstimator
from ..errors import OptimizationError
from ..sql.query import Query
from .cost import CostModel
from .enumerate import enumerate_dp, enumerate_dp_bushy, enumerate_greedy
from .random_search import enumerate_annealing, enumerate_iterative_improvement
from .plans import JoinMethod, PlanNode, explain, leaf_order

__all__ = ["OptimizerResult", "Optimizer"]

DEFAULT_METHODS: Tuple[JoinMethod, ...] = (
    JoinMethod.NESTED_LOOPS,
    JoinMethod.SORT_MERGE,
)


@dataclass(frozen=True)
class OptimizerResult:
    """A chosen plan plus the estimation context that produced it.

    Attributes:
        plan: The minimum-cost left-deep plan.
        estimator: The estimator instance (exposes the closed query, the
            equivalence classes, and effective statistics for reports).
        estimate: Per-step size estimates along the plan's join order —
            the "Estimated Result Sizes" column of the paper's table.
    """

    plan: PlanNode
    estimator: JoinSizeEstimator
    estimate: IncrementalEstimate

    @property
    def join_order(self) -> Tuple[str, ...]:
        return leaf_order(self.plan)

    @property
    def estimated_cost(self) -> float:
        return self.plan.estimated_cost

    @property
    def estimated_rows(self) -> float:
        return self.plan.estimated_rows

    @property
    def intermediate_sizes(self) -> Tuple[float, ...]:
        return self.estimate.intermediate_sizes

    def explain(self) -> str:
        return explain(self.plan)


class Optimizer:
    """Join-order optimizer over a statistics catalog.

    Args:
        catalog: Statistics and schemas for every base table.
        cost_model: Page-based cost model (defaults are fine for the
            paper's workloads).
        methods: Join methods to consider; defaults to the paper's
            repertoire (Nested Loops + Sort Merge).
        enumerator: ``"dp"`` (left-deep Selinger dynamic programming),
            ``"dp-bushy"`` (dynamic programming over bushy trees),
            ``"greedy"`` (cheap polynomial heuristic), ``"random"``
            (iterative improvement with restarts), or ``"annealing"``
            (simulated annealing) — the randomized pair being the [14, 5]
            family the paper cites as incremental-estimation consumers.
        seed: Randomness seed for the randomized enumerators.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        methods: Sequence[JoinMethod] = DEFAULT_METHODS,
        enumerator: str = "dp",
        seed: int = 0,
    ) -> None:
        if enumerator not in ("dp", "dp-bushy", "greedy", "random", "annealing"):
            raise OptimizationError(
                f"unknown enumerator {enumerator!r}; use 'dp', 'dp-bushy', "
                "'greedy', 'random', or 'annealing'"
            )
        self._catalog = catalog
        self._cost_model = cost_model or CostModel()
        self._methods = tuple(methods)
        self._enumerator = enumerator
        self._seed = seed

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def optimize(
        self,
        query: Query,
        config: EstimatorConfig = ELS,
        apply_closure: bool = True,
    ) -> OptimizerResult:
        """Choose a plan for the query under the given estimation algorithm.

        ``apply_closure`` plays the role of the Starburst PTC rewrite rule
        toggle; the estimation configuration selects the algorithm.
        """
        estimator = JoinSizeEstimator(query, self._catalog, config, apply_closure)
        widths: Dict[str, int] = {}
        original_rows: Dict[str, int] = {}
        for relation in estimator.query.tables:
            base = estimator.query.base_table(relation)
            widths[relation] = self._catalog.schema(base).row_width_bytes
            original_rows[relation] = self._catalog.stats(base).row_count
        if self._enumerator in ("random", "annealing"):
            enumerate_fn = (
                enumerate_iterative_improvement
                if self._enumerator == "random"
                else enumerate_annealing
            )
            plan = enumerate_fn(
                estimator,
                self._cost_model,
                widths,
                original_rows,
                self._methods,
                seed=self._seed,
            )
        else:
            enumerate_fn = {
                "dp": enumerate_dp,
                "dp-bushy": enumerate_dp_bushy,
                "greedy": enumerate_greedy,
            }[self._enumerator]
            plan = enumerate_fn(
                estimator, self._cost_model, widths, original_rows, self._methods
            )
        estimate = estimator.estimate_order(leaf_order(plan))
        return OptimizerResult(plan=plan, estimator=estimator, estimate=estimate)
