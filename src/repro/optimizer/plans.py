"""Physical plan trees produced by the join-order optimizer.

Plans are left-deep join trees (the shape Selinger-style dynamic
programming enumerates [13]): the left input of every join is a scan or
another join, the right input is always a base-relation scan.  Each node
carries the optimizer's *estimated* output cardinality and cumulative cost
so experiment reports can print the per-join estimates exactly as the
paper's Section 8 table does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple, Union

from ..sql.predicates import ComparisonPredicate

__all__ = [
    "JoinMethod",
    "ScanPlan",
    "JoinPlan",
    "PlanNode",
    "leaf_order",
    "joins_of",
    "explain",
]


class JoinMethod(enum.Enum):
    """Physical join algorithms the optimizer may choose.

    The paper's experiment enabled Nested Loops and Sort Merge ("the
    optimizer's entire repertoire was enabled (including the Nested Loops
    and Sort Merge join methods)"); hash join is a modern extension that is
    off by default.
    """

    NESTED_LOOPS = "NL"
    SORT_MERGE = "SM"
    HASH = "HJ"


@dataclass(frozen=True)
class ScanPlan:
    """A sequential scan of one relation with pushed-down local predicates.

    Attributes:
        relation: The query-level relation name (alias).
        base_table: The stored table behind the relation.
        local_predicates: Constant and same-table predicates applied right
            after the scan — after transitive closure this is where the
            implied local predicates enable early selection.
        estimated_rows: ``||R||'`` — effective cardinality after the local
            predicates.
        estimated_cost: Pages read by the scan (plus CPU weight).
        row_width: Logical tuple width in bytes, for page math upstream.
    """

    relation: str
    base_table: str
    local_predicates: Tuple[ComparisonPredicate, ...]
    estimated_rows: float
    estimated_cost: float
    row_width: int

    @property
    def tables(self) -> FrozenSet[str]:
        return frozenset((self.relation,))

    @property
    def is_scan(self) -> bool:
        return True


@dataclass(frozen=True)
class JoinPlan:
    """A join of two subplans.

    Left-deep enumeration always places a base-relation scan on the right;
    the bushy enumerator may put a join subtree there.
    """

    left: "PlanNode"
    right: "PlanNode"
    method: JoinMethod
    predicates: Tuple[ComparisonPredicate, ...]
    estimated_rows: float
    estimated_cost: float
    row_width: int

    @property
    def tables(self) -> FrozenSet[str]:
        return self.left.tables | self.right.tables

    @property
    def is_scan(self) -> bool:
        return False

    @property
    def is_cartesian(self) -> bool:
        return not self.predicates


PlanNode = Union[ScanPlan, JoinPlan]


def leaf_order(plan: PlanNode) -> Tuple[str, ...]:
    """The left-to-right relation order of a plan's leaves.

    For a left-deep plan this is exactly the incremental join order the
    estimator walked while the plan was built, so
    ``estimator.estimate_order(leaf_order(plan))`` recomputes the plan's
    per-step size estimates.  For bushy plans it is just the leaf sequence.
    """
    if isinstance(plan, ScanPlan):
        return (plan.relation,)
    return leaf_order(plan.left) + leaf_order(plan.right)


def joins_of(plan: PlanNode) -> Tuple[JoinPlan, ...]:
    """All join nodes bottom-up (left subtree, right subtree, then root)."""
    if isinstance(plan, ScanPlan):
        return ()
    return joins_of(plan.left) + joins_of(plan.right) + (plan,)


def explain(plan: PlanNode, indent: int = 0) -> str:
    """Human-readable plan tree with estimates, EXPLAIN-style."""
    pad = "  " * indent
    if isinstance(plan, ScanPlan):
        preds = (
            " [" + " AND ".join(str(p) for p in plan.local_predicates) + "]"
            if plan.local_predicates
            else ""
        )
        return (
            f"{pad}Scan {plan.relation}{preds} "
            f"(rows~{plan.estimated_rows:.3g}, cost~{plan.estimated_cost:.3g})"
        )
    preds = " AND ".join(str(p) for p in plan.predicates) or "TRUE (cartesian)"
    lines: List[str] = [
        f"{pad}{plan.method.value}-Join on {preds} "
        f"(rows~{plan.estimated_rows:.3g}, cost~{plan.estimated_cost:.3g})"
    ]
    lines.append(explain(plan.left, indent + 1))
    lines.append(explain(plan.right, indent + 1))
    return "\n".join(lines)
