"""Join-order enumeration: Selinger dynamic programming and a greedy fallback.

Both enumerators build **left-deep** plans and estimate cardinalities
*incrementally along the plan being built*, exactly the setting the paper
targets: "the query optimization algorithm often needs to estimate the join
result sizes incrementally ... in the dynamic programming algorithm [13],
the AB algorithm [15] and randomized algorithms [14, 5]".

The DP keeps one best (minimum-cost) candidate per table subset; each
candidate carries its own estimated cardinality, obtained by walking the
estimator one table at a time along the candidate's join order.  Cartesian
products are deferred: an expansion without any eligible join predicate is
considered only when a subset has no connected expansion at all (the paper:
"most query optimizers would avoid the join order beginning with
(R1 >< R3) since this would be evaluated as a cartesian product").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core.estimator import EstimateState, JoinSizeEstimator
from ..errors import OptimizationError
from ..sql.predicates import Op
from .cost import CostModel
from .plans import JoinMethod, JoinPlan, PlanNode, ScanPlan, leaf_order

__all__ = ["enumerate_dp", "enumerate_dp_bushy", "enumerate_greedy"]


@dataclass(frozen=True)
class _Candidate:
    plan: PlanNode
    cost: float
    state: EstimateState

    @property
    def sort_key(self):
        """Deterministic comparison: cost first, then leaf order.

        Symmetric cost formulas (e.g. sort-merge) can tie exactly between
        mirror-image orders; the lexicographic leaf-order tie-break keeps
        plan choice independent of hash-randomized set iteration.
        """
        return (self.cost, leaf_order(self.plan))


def _build_scans(
    estimator: JoinSizeEstimator,
    cost_model: CostModel,
    widths: Mapping[str, int],
    original_rows: Mapping[str, int],
) -> Dict[str, _Candidate]:
    """One scan candidate per relation, local predicates pushed down."""
    query = estimator.query
    scans: Dict[str, _Candidate] = {}
    for relation in query.tables:
        local = tuple(p for p in query.predicates if p.is_local and p.references(relation))
        rows = estimator.base_rows(relation)
        width = widths[relation]
        cost = cost_model.scan_cost(original_rows[relation], width, len(local))
        plan = ScanPlan(
            relation=relation,
            base_table=query.base_table(relation),
            local_predicates=local,
            estimated_rows=rows,
            estimated_cost=cost,
            row_width=width,
        )
        scans[relation] = _Candidate(plan, cost, estimator.start(relation))
    return scans


def _join_methods_for(
    eligible, methods: Sequence[JoinMethod]
) -> List[JoinMethod]:
    """Methods applicable to this expansion (SM/HJ need an equi-key)."""
    has_equi_key = any(p.predicate.op is Op.EQ for p in eligible)
    result = []
    for method in methods:
        if method is JoinMethod.NESTED_LOOPS or has_equi_key:
            result.append(method)
    return result


def _join_cost(
    cost_model: CostModel,
    method: JoinMethod,
    outer_rows: float,
    outer_width: int,
    inner_rows: float,
    inner_width: int,
) -> float:
    if method is JoinMethod.NESTED_LOOPS:
        return cost_model.nested_loops_cost(
            outer_rows, outer_width, inner_rows, inner_width
        )
    if method is JoinMethod.SORT_MERGE:
        return cost_model.sort_merge_cost(
            outer_rows, outer_width, inner_rows, inner_width
        )
    return cost_model.hash_cost(outer_rows, outer_width, inner_rows, inner_width)


def _expand(
    candidate: _Candidate,
    relation: str,
    scans: Mapping[str, _Candidate],
    estimator: JoinSizeEstimator,
    cost_model: CostModel,
    methods: Sequence[JoinMethod],
) -> Optional[_Candidate]:
    """The cheapest way to join ``relation`` into ``candidate``, if any."""
    eligible = estimator.eligible(candidate.state.tables, relation)
    applicable = _join_methods_for(eligible, methods)
    if not applicable:
        return None
    new_state, step = estimator.join(candidate.state, relation)
    scan = scans[relation]
    assert isinstance(scan.plan, ScanPlan)
    outer_width = candidate.plan.row_width
    inner_width = scan.plan.row_width
    result_width = outer_width + inner_width
    best: Optional[_Candidate] = None
    for method in applicable:
        join_cost = _join_cost(
            cost_model,
            method,
            candidate.state.rows,
            outer_width,
            scan.state.rows,
            inner_width,
        )
        total = (
            candidate.cost
            + scan.cost
            + join_cost
            + cost_model.output_cost(new_state.rows, result_width)
        )
        if best is None or total < best.cost:
            plan = JoinPlan(
                left=candidate.plan,
                right=scan.plan,
                method=method,
                predicates=tuple(p.predicate for p in eligible),
                estimated_rows=new_state.rows,
                estimated_cost=total,
                row_width=result_width,
            )
            best = _Candidate(plan, total, new_state)
    return best


def enumerate_dp(
    estimator: JoinSizeEstimator,
    cost_model: CostModel,
    widths: Mapping[str, int],
    original_rows: Mapping[str, int],
    methods: Sequence[JoinMethod] = (JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE),
) -> PlanNode:
    """Selinger-style dynamic programming over left-deep join orders.

    Args:
        estimator: The (already prepared) join-size estimator — this is the
            pluggable component the experiments swap between SM, SSS, and
            ELS configurations.
        cost_model: Page-based cost model.
        widths: Row width in bytes per relation.
        original_rows: Unfiltered table cardinality per relation (scans
            read whole tables; the paper keeps "the original, unreduced
            table and column cardinalities ... for use in cost calculations
            before the local predicates have been applied").
        methods: Join methods the optimizer may choose from.

    Raises:
        OptimizationError: if the query has no tables.
    """
    relations = list(estimator.query.tables)
    if not relations:
        raise OptimizationError("cannot optimize a query with no tables")
    scans = _build_scans(estimator, cost_model, widths, original_rows)
    if len(relations) == 1:
        return scans[relations[0]].plan

    best: Dict[FrozenSet[str], _Candidate] = {
        frozenset((r,)): scans[r] for r in relations
    }
    for size in range(2, len(relations) + 1):
        for subset in map(frozenset, itertools.combinations(relations, size)):
            connected: List[_Candidate] = []
            cartesian: List[_Candidate] = []
            for relation in sorted(subset):
                source = best.get(subset - {relation})
                if source is None:
                    continue
                candidate = _expand(
                    source, relation, scans, estimator, cost_model, methods
                )
                if candidate is None:
                    continue
                assert isinstance(candidate.plan, JoinPlan)
                bucket = cartesian if candidate.plan.is_cartesian else connected
                bucket.append(candidate)
            # Defer cartesian products: only fall back to them when the
            # subset cannot be formed through join predicates.
            pool = connected or cartesian
            if pool:
                best[subset] = min(pool, key=lambda c: c.sort_key)

    full = best.get(frozenset(relations))
    if full is None:
        raise OptimizationError(
            "dynamic programming found no plan covering all relations"
        )
    return full.plan


def enumerate_greedy(
    estimator: JoinSizeEstimator,
    cost_model: CostModel,
    widths: Mapping[str, int],
    original_rows: Mapping[str, int],
    methods: Sequence[JoinMethod] = (JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE),
) -> PlanNode:
    """Greedy left-deep enumeration for large queries.

    Tries every relation as the starting table; from each start, repeatedly
    adds the relation whose cheapest join extension has the lowest cost
    (preferring connected extensions).  Returns the best complete plan over
    all starts.  O(n^3) expansions versus DP's exponential subsets.

    Raises:
        OptimizationError: on a query with no tables, or when no start
            yields a complete plan.
    """
    relations = list(estimator.query.tables)
    if not relations:
        raise OptimizationError("cannot optimize a query with no tables")
    scans = _build_scans(estimator, cost_model, widths, original_rows)
    if len(relations) == 1:
        return scans[relations[0]].plan

    best_overall: Optional[_Candidate] = None
    for start in relations:
        candidate = scans[start]
        remaining = [r for r in relations if r != start]
        failed = False
        while remaining:
            connected: List[Tuple[_Candidate, str]] = []
            cartesian: List[Tuple[_Candidate, str]] = []
            for relation in remaining:
                expanded = _expand(
                    candidate, relation, scans, estimator, cost_model, methods
                )
                if expanded is None:
                    continue
                assert isinstance(expanded.plan, JoinPlan)
                bucket = cartesian if expanded.plan.is_cartesian else connected
                bucket.append((expanded, relation))
            pool = connected or cartesian
            if not pool:
                failed = True
                break
            candidate, chosen = min(pool, key=lambda pair: pair[0].sort_key)
            remaining.remove(chosen)
        if failed:
            continue
        if best_overall is None or candidate.cost < best_overall.cost:
            best_overall = candidate
    if best_overall is None:
        raise OptimizationError("greedy enumeration found no complete plan")
    return best_overall.plan


def _expand_pair(
    left: _Candidate,
    right: _Candidate,
    estimator: JoinSizeEstimator,
    cost_model: CostModel,
    methods: Sequence[JoinMethod],
) -> Optional[_Candidate]:
    """The cheapest join of two disjoint sub-candidates (bushy step)."""
    eligible = estimator.eligible_between(left.state.tables, right.state.tables)
    applicable = _join_methods_for(eligible, methods)
    if not applicable:
        return None
    new_state, _ = estimator.join_states(left.state, right.state)
    outer_width = left.plan.row_width
    inner_width = right.plan.row_width
    result_width = outer_width + inner_width
    best: Optional[_Candidate] = None
    for method in applicable:
        join_cost = _join_cost(
            cost_model,
            method,
            left.state.rows,
            outer_width,
            right.state.rows,
            inner_width,
        )
        total = (
            left.cost
            + right.cost
            + join_cost
            + cost_model.output_cost(new_state.rows, result_width)
        )
        if best is None or total < best.cost:
            plan = JoinPlan(
                left=left.plan,
                right=right.plan,
                method=method,
                predicates=tuple(p.predicate for p in eligible),
                estimated_rows=new_state.rows,
                estimated_cost=total,
                row_width=result_width,
            )
            best = _Candidate(plan, total, new_state)
    return best


def enumerate_dp_bushy(
    estimator: JoinSizeEstimator,
    cost_model: CostModel,
    widths: Mapping[str, int],
    original_rows: Mapping[str, int],
    methods: Sequence[JoinMethod] = (JoinMethod.NESTED_LOOPS, JoinMethod.SORT_MERGE),
) -> PlanNode:
    """Dynamic programming over *bushy* join trees.

    Like :func:`enumerate_dp` but each subset may be formed by joining any
    two disjoint sub-candidates, not only sub-candidate + single relation.
    Estimation uses :meth:`JoinSizeEstimator.join_states` — under full
    transitive closure Rule LS stays exact for set-to-set joins, so bushy
    plans get the same correct cardinalities as left-deep ones.  Cartesian
    splits are deferred exactly as in the left-deep DP.

    Exponentially more expensive than left-deep DP (O(3^n) splits); meant
    for queries of up to ~10 relations.

    Raises:
        OptimizationError: on a query with no tables, or when the DP
            table never completes a full plan.
    """
    relations = list(estimator.query.tables)
    if not relations:
        raise OptimizationError("cannot optimize a query with no tables")
    scans = _build_scans(estimator, cost_model, widths, original_rows)
    if len(relations) == 1:
        return scans[relations[0]].plan

    best: Dict[FrozenSet[str], _Candidate] = {
        frozenset((r,)): scans[r] for r in relations
    }
    for size in range(2, len(relations) + 1):
        for subset_tuple in itertools.combinations(sorted(relations), size):
            subset = frozenset(subset_tuple)
            connected: List[_Candidate] = []
            cartesian: List[_Candidate] = []
            # Every ordered split into two non-empty disjoint halves; the
            # ordering doubles as the outer/inner orientation choice.
            for left_size in range(1, size):
                for left_tuple in itertools.combinations(subset_tuple, left_size):
                    left_set = frozenset(left_tuple)
                    right_set = subset - left_set
                    left_candidate = best.get(left_set)
                    right_candidate = best.get(right_set)
                    if left_candidate is None or right_candidate is None:
                        continue
                    candidate = _expand_pair(
                        left_candidate, right_candidate, estimator, cost_model, methods
                    )
                    if candidate is None:
                        continue
                    assert isinstance(candidate.plan, JoinPlan)
                    bucket = cartesian if candidate.plan.is_cartesian else connected
                    bucket.append(candidate)
            pool = connected or cartesian
            if pool:
                best[subset] = min(pool, key=lambda c: c.sort_key)

    full = best.get(frozenset(relations))
    if full is None:
        raise OptimizationError("bushy enumeration found no complete plan")
    return full.plan
