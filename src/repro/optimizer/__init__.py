"""Join-order optimizer: plan trees, cost model, and enumerators."""

from .cost import CostModel
from .enumerate import enumerate_dp, enumerate_dp_bushy, enumerate_greedy
from .optimizer import Optimizer, OptimizerResult
from .random_search import cost_of_order, enumerate_annealing, enumerate_iterative_improvement
from .plans import JoinMethod, JoinPlan, PlanNode, ScanPlan, explain, joins_of, leaf_order

__all__ = [
    "CostModel",
    "JoinMethod",
    "JoinPlan",
    "Optimizer",
    "OptimizerResult",
    "PlanNode",
    "ScanPlan",
    "enumerate_dp",
    "enumerate_dp_bushy",
    "cost_of_order",
    "enumerate_annealing",
    "enumerate_greedy",
    "enumerate_iterative_improvement",
    "explain",
    "joins_of",
    "leaf_order",
]
