"""Ground-truth join sizes by actually executing reference plans.

The estimators are judged against *executed* result sizes, never against
each other.  The reference plan built here is deliberately independent of
the optimizer: scans with all local predicates pushed down, then hash joins
(nested loops when no equi-key exists) in a size-aware greedy order.  Any
correct plan yields the same count, so the choice only affects how long the
ground truth takes to compute.

Two layers keep that cost down on the hot path:

* ground truths execute on the **columnar vectorized engine** by default
  (``engine="columnar"``; the differential test suite proves it
  count-identical to the row engine), and
* :func:`true_join_size` consults the **ground-truth cache**
  (:mod:`repro.analysis.truthcache`) keyed by database fingerprint and
  canonical query text, so an identical join is never executed twice in a
  process.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..execution.executor import ExecutionResult, Executor
from ..optimizer.plans import JoinMethod, JoinPlan, PlanNode, ScanPlan
from ..resilience.deadline import Deadline
from ..sql.predicates import ComparisonPredicate, Op
from ..sql.query import Query
from ..storage.database import Database
from .truthcache import DEFAULT_TRUTH_CACHE, TruthCache

__all__ = ["build_reference_plan", "execute_query", "true_join_size"]


def _resolve_deadline(
    timeout_s: Optional[float], deadline: Optional[Deadline]
) -> Optional[Deadline]:
    """An explicit deadline wins; else a fresh one from ``timeout_s``."""
    if deadline is not None:
        return deadline
    if timeout_s is not None:
        return Deadline(timeout_s)
    return None


def _eligible(
    predicates: Sequence[ComparisonPredicate], joined: FrozenSet[str], table: str
) -> Tuple[ComparisonPredicate, ...]:
    result = []
    for predicate in predicates:
        if predicate.is_join and table in predicate.tables:
            if (predicate.tables - {table}) <= joined:
                result.append(predicate)
    return tuple(result)


def _scan(query: Query, database: Database, relation: str) -> ScanPlan:
    base = query.base_table(relation)
    table = database.table(base)
    local = tuple(
        p for p in query.predicates if p.is_local and p.references(relation)
    )
    return ScanPlan(
        relation=relation,
        base_table=base,
        local_predicates=local,
        estimated_rows=float(table.row_count),
        estimated_cost=0.0,
        row_width=table.schema.row_width_bytes,
    )


def build_reference_plan(
    query: Query, database: Database, order: Optional[Sequence[str]] = None
) -> PlanNode:
    """A correct left-deep plan for ground-truth execution.

    Args:
        query: The (possibly closure-rewritten) query.
        database: Stored tables.
        order: Explicit join order; default is a greedy order that starts
            from the smallest table and prefers connected extensions, which
            keeps intermediates small on the library's workloads.

    Raises:
        ExecutionError: if ``order`` is not a permutation of the query's
            tables.
    """
    relations = list(query.tables)
    if order is not None:
        if sorted(order) != sorted(relations):
            raise ExecutionError(
                f"order {list(order)} is not a permutation of {relations}"
            )
        sequence = list(order)
    else:
        sequence = _greedy_order(query, database)

    plan: PlanNode = _scan(query, database, sequence[0])
    joined = frozenset((sequence[0],))
    for relation in sequence[1:]:
        eligible = _eligible(query.predicates, joined, relation)
        has_equi = any(p.op is Op.EQ for p in eligible)
        method = JoinMethod.HASH if has_equi else JoinMethod.NESTED_LOOPS
        right = _scan(query, database, relation)
        plan = JoinPlan(
            left=plan,
            right=right,
            method=method,
            predicates=eligible,
            estimated_rows=0.0,
            estimated_cost=0.0,
            row_width=plan.row_width + right.row_width,
        )
        joined = joined | {relation}
    return plan


def _greedy_order(query: Query, database: Database) -> List[str]:
    """Smallest-table-first order preferring connected extensions."""
    sizes = {
        relation: database.table(query.base_table(relation)).row_count
        for relation in query.tables
    }
    rank = lambda r: (sizes[r], r)
    remaining = sorted(query.tables, key=rank)
    order = [remaining.pop(0)]
    joined = frozenset(order)
    while remaining:
        connected = [
            r for r in remaining if _eligible(query.predicates, joined, r)
        ]
        pool = connected or remaining
        chosen = min(pool, key=rank)
        remaining.remove(chosen)
        order.append(chosen)
        joined = joined | {chosen}
    return order


def execute_query(
    query: Query,
    database: Database,
    order: Optional[Sequence[str]] = None,
    engine: str = "columnar",
    timeout_s: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    morsel_workers: Optional[int] = None,
) -> ExecutionResult:
    """Execute a query via the reference plan, honoring its projection.

    Args:
        query: The query to execute.
        database: Stored tables.
        order: Explicit join order for the reference plan.
        engine: Execution engine (``"row"``, ``"columnar"``, or
            ``"parallel"``).
        timeout_s: Optional wall-clock budget; the executors check it
            cooperatively and raise
            :class:`~repro.errors.DeadlineExceededError` when spent.
        deadline: An already-running :class:`Deadline` to honor instead
            (wins over ``timeout_s``; lets callers share one budget across
            several executions).
        morsel_workers: Fan-out width for the ``"parallel"`` engine
            (``None`` means one per CPU); ignored by the other engines.
    """
    plan = build_reference_plan(query, database, order)
    executor = Executor(
        database,
        engine=engine,
        deadline=_resolve_deadline(timeout_s, deadline),
        morsel_workers=morsel_workers,
    )
    return executor.execute(plan, query.projection)


def true_join_size(
    query: Query,
    database: Database,
    order: Optional[Sequence[str]] = None,
    engine: str = "columnar",
    cache: Optional[TruthCache] = DEFAULT_TRUTH_CACHE,
    timeout_s: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    morsel_workers: Optional[int] = None,
) -> int:
    """The exact result cardinality of the query's join.

    Args:
        query: The query whose join size to execute.
        database: Stored tables.
        order: Explicit join order for the reference plan (does not affect
            the count, only execution time).
        engine: Execution engine; the vectorized ``"columnar"`` default is
            several times faster than ``"row"`` on COUNT ground truths,
            and ``"parallel"`` adds the morsel-driven tier on top.
        cache: Ground-truth cache to consult and fill; defaults to the
            process-wide :data:`~repro.analysis.truthcache.DEFAULT_TRUTH_CACHE`.
            Pass ``None`` to force execution.
        timeout_s: Optional wall-clock budget for the execution; cache
            hits never consume it.  When spent, the run aborts with
            :class:`~repro.errors.DeadlineExceededError`.
        deadline: An already-running :class:`Deadline` to honor instead
            (wins over ``timeout_s``).
        morsel_workers: Fan-out width for the ``"parallel"`` engine
            (``None`` means one per CPU); ignored by the other engines
            and deliberately absent from the cache key — worker count
            never changes the count, only how fast it is computed.
    """
    if cache is not None:
        cached = cache.get(database, query)
        if cached is not None:
            return cached
    plan = build_reference_plan(query, database, order)
    executor = Executor(
        database,
        engine=engine,
        deadline=_resolve_deadline(timeout_s, deadline),
        morsel_workers=morsel_workers,
    )
    count = executor.count(plan).count
    if cache is not None:
        cache.put(database, query, count)
    return int(count)
