"""Analysis utilities: error metrics, ground truth, harnesses, reports."""

from .explain_analyze import NodeComparison, explain_analyze, render_explain_analyze
from .graphs import plan_dot, query_graph_dot
from .harness import (
    PAPER_ALGORITHMS,
    AccuracyRecord,
    AlgorithmSpec,
    evaluate_workload,
    evaluate_workloads,
    prefix_query,
)
from .metrics import (
    ErrorSummary,
    log10_ratio,
    q_error,
    rank_correlation,
    ratio_error,
    summarize_errors,
)
from .propagation import PropagationPoint, run_error_propagation
from .report import AsciiTable, format_quantity
from .sensitivity import StalenessPoint, perturb_catalog, run_staleness_study
from .truth import build_reference_plan, execute_query, true_join_size
from .truthcache import (
    DEFAULT_TRUTH_CACHE,
    TruthCache,
    TruthCacheStats,
    canonical_query_text,
)

__all__ = [
    "AccuracyRecord",
    "AlgorithmSpec",
    "AsciiTable",
    "DEFAULT_TRUTH_CACHE",
    "ErrorSummary",
    "NodeComparison",
    "PAPER_ALGORITHMS",
    "PropagationPoint",
    "StalenessPoint",
    "TruthCache",
    "TruthCacheStats",
    "build_reference_plan",
    "canonical_query_text",
    "evaluate_workload",
    "evaluate_workloads",
    "execute_query",
    "explain_analyze",
    "format_quantity",
    "log10_ratio",
    "perturb_catalog",
    "plan_dot",
    "prefix_query",
    "q_error",
    "query_graph_dot",
    "rank_correlation",
    "ratio_error",
    "render_explain_analyze",
    "run_error_propagation",
    "run_staleness_study",
    "summarize_errors",
    "true_join_size",
]
