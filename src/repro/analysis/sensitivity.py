"""Sensitivity of plan choice and estimates to stale statistics.

The paper's opening motivation cites [4] (Ioannidis & Christodoulakis):
"Errors in the statistics maintained by the database system can affect the
various estimates computed by the query optimizer."  This module quantifies
that for the implemented algorithms: it perturbs catalog statistics by a
controlled multiplicative error and measures

* how far each algorithm's size estimate drifts from the (unchanged) true
  executed size, and
* whether the optimizer's *plan choice* survives — the practically
  important question, since a plan is only wrong when a better one was
  available.

Perturbations scale row counts and column cardinalities by factors drawn
log-uniformly from ``[1/(1+e), 1+e]`` (keeping ``distinct <= rows``), which
models stale statistics after un-analyzed growth or shrinkage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..catalog.statistics import Catalog, ColumnStats, TableStats
from ..core.estimator import JoinSizeEstimator
from ..optimizer.optimizer import Optimizer
from ..storage.database import Database
from ..workloads.generator import build_database
from ..workloads.queries import GeneratedWorkload
from .harness import PAPER_ALGORITHMS, AlgorithmSpec
from .metrics import q_error
from .truth import true_join_size

__all__ = ["perturb_catalog", "StalenessPoint", "run_staleness_study"]


def perturb_catalog(
    catalog: Catalog, error: float, rng: random.Random
) -> Catalog:
    """A copy of the catalog with multiplicatively perturbed statistics.

    Args:
        catalog: Source statistics (not modified).
        error: Maximum relative error ``e``; every row count and distinct
            count is scaled by an independent factor in ``[1/(1+e), 1+e]``.
        rng: Randomness source (seeded by the caller for reproducibility).

    Raises:
        ValueError: for negative ``error``.
    """
    if error < 0:
        raise ValueError(f"error must be >= 0, got {error}")

    def factor() -> float:
        import math

        low, high = -math.log(1.0 + error), math.log(1.0 + error)
        return math.exp(rng.uniform(low, high)) if error > 0 else 1.0

    perturbed = Catalog()
    for name in catalog.tables():
        stats = catalog.stats(name)
        rows = max(1, round(stats.row_count * factor()))
        columns: Dict[str, ColumnStats] = {}
        for column, column_stats in stats.columns.items():
            distinct = max(1, round(column_stats.distinct * factor()))
            distinct = min(distinct, rows)
            columns[column] = ColumnStats(
                distinct=distinct,
                low=column_stats.low,
                high=column_stats.high,
                histogram=column_stats.histogram,
                mcv=column_stats.mcv,
            )
        perturbed.register(catalog.schema(name), TableStats(rows, columns))
    return perturbed


@dataclass(frozen=True)
class StalenessPoint:
    """Aggregate outcome for one (algorithm, error level) cell."""

    algorithm: str
    error: float
    mean_q_error: float
    plan_stability: float  # fraction of trials keeping the fresh-stats plan


def run_staleness_study(
    workloads: Sequence[GeneratedWorkload],
    errors: Iterable[float] = (0.0, 0.5, 1.0, 2.0),
    algorithms: Iterable[AlgorithmSpec] = PAPER_ALGORITHMS,
    seed: int = 0,
    databases: Optional[Sequence[Database]] = None,
) -> List[StalenessPoint]:
    """Estimate quality and plan stability under stale statistics.

    For each workload and error level, the catalog is perturbed, every
    algorithm re-estimates (q-error against the *true* executed size), and
    the optimizer re-plans; a plan is "stable" when its join order matches
    the fresh-statistics plan for the same algorithm.
    """
    algorithm_list = list(algorithms)
    error_list = list(errors)
    if databases is None:
        databases = [
            build_database(w.specs, seed=seed + i) for i, w in enumerate(workloads)
        ]
    rng = random.Random(seed)

    q_errors: Dict[Tuple[str, float], List[float]] = {}
    stable: Dict[Tuple[str, float], List[bool]] = {}
    for workload, database in zip(workloads, databases):
        truth = true_join_size(workload.query, database)
        order = list(workload.query.tables)
        fresh_orders = {}
        for spec in algorithm_list:
            fresh = Optimizer(database.catalog).optimize(
                workload.query, spec.config, apply_closure=spec.apply_closure
            )
            fresh_orders[spec.name] = fresh.join_order
        for error in error_list:
            catalog = perturb_catalog(database.catalog, error, rng)
            for spec in algorithm_list:
                estimator = JoinSizeEstimator(
                    workload.query, catalog, spec.config, spec.apply_closure
                )
                estimate = estimator.estimate(order)
                key = (spec.name, error)
                q_errors.setdefault(key, []).append(q_error(estimate, truth))
                stale_plan = Optimizer(catalog).optimize(
                    workload.query, spec.config, apply_closure=spec.apply_closure
                )
                stable.setdefault(key, []).append(
                    stale_plan.join_order == fresh_orders[spec.name]
                )

    points: List[StalenessPoint] = []
    for spec in algorithm_list:
        for error in error_list:
            key = (spec.name, error)
            values = q_errors[key]
            flags = stable[key]
            points.append(
                StalenessPoint(
                    algorithm=spec.name,
                    error=error,
                    mean_q_error=sum(values) / len(values),
                    plan_stability=sum(flags) / len(flags),
                )
            )
    return points
