"""Estimation error metrics and summaries.

The standard currency for cardinality estimation error is the **q-error**:
``max(estimate/actual, actual/estimate)`` — symmetric, multiplicative, and
1.0 for a perfect estimate.  The **ratio error** (``estimate/actual``)
keeps the sign of the error: Rule M and Rule SS *underestimate* (ratio << 1)
which is exactly the failure mode Examples 2 and 3 exhibit, so benchmark
tables report both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = [
    "ratio_error",
    "q_error",
    "log10_ratio",
    "rank_correlation",
    "ErrorSummary",
    "summarize_errors",
]

#: Estimates/actuals below this are treated as this value when forming
#: ratios, so empty results do not produce infinities in summaries.
EPSILON = 1e-12


def ratio_error(estimate: float, actual: float) -> float:
    """Signed multiplicative error ``estimate / actual`` (1.0 is perfect)."""
    return max(estimate, EPSILON) / max(actual, EPSILON)


def q_error(estimate: float, actual: float) -> float:
    """Symmetric multiplicative error ``max(e/a, a/e)`` (>= 1.0)."""
    ratio = ratio_error(estimate, actual)
    return max(ratio, 1.0 / ratio)


def log10_ratio(estimate: float, actual: float) -> float:
    """``log10(estimate/actual)`` — the error-propagation papers' scale.

    Zero is perfect; -3 means a 1000x underestimate.  Ioannidis &
    Christodoulakis [4] show this grows with the number of joins; the
    propagation benchmark plots it per algorithm.
    """
    return math.log10(ratio_error(estimate, actual))


@dataclass(frozen=True)
class ErrorSummary:
    """Distributional summary of a set of error values."""

    count: int
    mean: float
    geometric_mean: float
    median: float
    p90: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3g} gmean={self.geometric_mean:.3g} "
            f"median={self.median:.3g} p90={self.p90:.3g} max={self.maximum:.3g}"
        )


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile over an already sorted sequence."""
    if not ordered:
        raise ValueError("cannot take a percentile of no values")
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def summarize_errors(values: Iterable[float]) -> ErrorSummary:
    """Summarize positive error values (q-errors or ratios).

    Raises:
        ValueError: for an empty input or non-positive values (q-errors and
            ratio errors are strictly positive by construction).
    """
    data: List[float] = sorted(values)
    if not data:
        raise ValueError("cannot summarize zero error values")
    if data[0] <= 0:
        raise ValueError(f"error values must be positive, got {data[0]}")
    mean = sum(data) / len(data)
    geometric = math.exp(sum(math.log(v) for v in data) / len(data))
    return ErrorSummary(
        count=len(data),
        mean=mean,
        geometric_mean=geometric,
        median=_percentile(data, 0.5),
        p90=_percentile(data, 0.9),
        maximum=data[-1],
    )


def rank_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation between two paired samples.

    Used to validate the cost model: across alternative plans for one
    query, modeled cost should *rank* plans the way measured execution
    does, even though absolute calibration is out of scope.  Ties receive
    average ranks.

    Raises:
        ValueError: on length mismatch or fewer than two pairs.
    """
    if len(xs) != len(ys):
        raise ValueError(f"paired samples differ in length: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("rank correlation needs at least two pairs")

    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
                j += 1
            average = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                result[order[k]] = average
            i = j + 1
        return result

    rx = ranks(xs)
    ry = ranks(ys)
    mean_x = sum(rx) / len(rx)
    mean_y = sum(ry) / len(ry)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rx, ry))
    var_x = sum((a - mean_x) ** 2 for a in rx)
    var_y = sum((b - mean_y) ** 2 for b in ry)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
