"""Query graph and plan tree export in Graphviz DOT format.

Dependency-free visualization for the two structures the paper reasons
about:

* :func:`query_graph_dot` — relations as nodes, join predicates as edges,
  with each equivalence class drawn in its own color and the local
  predicates listed inside the node labels.  A chain, its closure-clique,
  and a star are instantly distinguishable, which makes the
  dependent-predicates story visible.
* :func:`plan_dot` — the optimizer's (possibly bushy) plan tree with
  per-node method, estimated rows, and cost.

The output is plain DOT text; render it with any Graphviz installation
(``dot -Tpng``) or paste it into an online viewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.equivalence import EquivalenceClasses
from ..optimizer.plans import JoinPlan, PlanNode, ScanPlan
from ..sql.query import Query

__all__ = ["query_graph_dot", "plan_dot"]

#: Edge colors cycled per equivalence class (Graphviz X11 names).
_CLASS_COLORS = (
    "blue",
    "red",
    "forestgreen",
    "darkorange",
    "purple",
    "teal",
    "brown",
    "magenta",
)


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def query_graph_dot(query: Query, title: str = "") -> str:
    """The query's join graph as DOT, colored by equivalence class.

    Non-equality join predicates are drawn as dashed gray edges (they do
    not participate in equivalence classes).
    """
    equivalence = EquivalenceClasses.from_predicates(query.predicates)
    class_color: Dict = {}
    for group in equivalence.nontrivial_classes():
        class_color[min(group)] = _CLASS_COLORS[len(class_color) % len(_CLASS_COLORS)]

    lines: List[str] = ["graph query {"]
    if title:
        lines.append(f'  label="{_escape(title)}";')
    lines.append("  node [shape=box, fontname=monospace];")

    for table in query.tables:
        locals_ = [
            str(p)
            for p in query.predicates
            if p.is_local and p.references(table)
        ]
        label = table
        if locals_:
            label += "\\n" + "\\n".join(_escape(p) for p in locals_)
        lines.append(f'  "{table}" [label="{label}"];')

    for predicate in query.join_predicates:
        left, right = sorted(predicate.tables)
        label = _escape(str(predicate))
        if predicate.is_equijoin:
            color = class_color.get(
                equivalence.class_id(predicate.left), "black"
            )
            style = ""
        else:
            color = "gray"
            style = ", style=dashed"
        lines.append(
            f'  "{left}" -- "{right}" [label="{label}", color={color}{style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def plan_dot(plan: PlanNode, title: str = "") -> str:
    """A physical plan tree as DOT (directed, children below parents)."""
    lines: List[str] = ["digraph plan {"]
    if title:
        lines.append(f'  label="{_escape(title)}";')
    lines.append("  node [shape=box, fontname=monospace];")
    counter = [0]

    def emit(node: PlanNode) -> str:
        identifier = f"n{counter[0]}"
        counter[0] += 1
        if isinstance(node, ScanPlan):
            label = f"Scan {node.relation}"
            if node.local_predicates:
                label += "\\n" + "\\n".join(
                    _escape(str(p)) for p in node.local_predicates
                )
            label += f"\\nrows~{node.estimated_rows:.3g}"
            lines.append(f'  {identifier} [label="{label}"];')
            return identifier
        assert isinstance(node, JoinPlan)
        label = (
            f"{node.method.value}-Join\\nrows~{node.estimated_rows:.3g}"
            f"\\ncost~{node.estimated_cost:.3g}"
        )
        lines.append(f'  {identifier} [label="{label}", style=bold];')
        left = emit(node.left)
        right = emit(node.right)
        lines.append(f"  {identifier} -> {left};")
        lines.append(f"  {identifier} -> {right};")
        return identifier

    emit(plan)
    lines.append("}")
    return "\n".join(lines)
