"""Ground-truth result cache keyed by database content and query text.

Every accuracy study in this repository compares estimates against
*executed* ground truth, and the studies overlap heavily: the prefix-query
analysis executes each join prefix once per algorithm sweep, sensitivity
studies re-execute the same query against the same data under perturbed
*statistics* (the data never changes), and repeated benchmark runs execute
identical plans again and again.  A ground truth is a pure function of
``(database content, query)``, so it is safe to cache — provided the key
really captures both.

* **Database side** — :meth:`Database.fingerprint
  <repro.storage.database.Database.fingerprint>`: a content digest over
  every table's name, schema, and rows.  Appending a single row changes
  the fingerprint, so stale entries are never served; they simply stop
  being reachable and age out of the LRU.
* **Query side** — :func:`canonical_query_text`: a normalized rendering
  that is invariant under FROM-clause order, predicate order, and
  predicate operand orientation, so ``R1 ⋈ R2`` and ``R2 ⋈ R1`` share one
  entry.

The module-level :data:`DEFAULT_TRUTH_CACHE` is what
:func:`repro.analysis.truth.true_join_size` uses unless told otherwise;
pass ``cache=None`` there to force re-execution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..sql.query import Query
from ..storage.database import Database

__all__ = [
    "DEFAULT_TRUTH_CACHE",
    "TruthCache",
    "TruthCacheStats",
    "canonical_query_text",
]


def canonical_query_text(query: Query) -> str:
    """A normalized query rendering for cache keying.

    Two queries over the same tables with the same predicate conjunction
    produce the same text regardless of FROM-clause order or predicate
    order (predicates are already canonicalized operand-wise by
    :meth:`ComparisonPredicate.canonical` at query construction).  The
    projection is *excluded*: the cache stores join cardinalities, which
    are projection-independent.
    """
    tables = sorted(f"{t}={query.base_table(t)}" for t in query.tables)
    predicates = sorted(str(p) for p in query.predicates)
    return f"FROM {','.join(tables)} WHERE {' AND '.join(predicates)}"


@dataclass
class TruthCacheStats:
    """Observability counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:  # els: quantity=count
        return self.hits + self.misses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class TruthCache:
    """An LRU cache of executed join cardinalities.

    Keys are ``(database fingerprint, canonical query text)``; values are
    exact result counts.  The cache never invalidates eagerly — a changed
    database simply produces a different fingerprint, and untouched
    entries are evicted least-recently-used once ``max_entries`` is
    reached.

    Thread-unsafe by design (the harness parallelizes with processes, not
    threads; each worker process holds its own cache).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, str], int]" = OrderedDict()
        self.stats = TruthCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, database: Database, query: Query) -> Tuple[str, str]:
        """The cache key for one (database, query) pair."""
        return (database.fingerprint(), canonical_query_text(query))

    def get(self, database: Database, query: Query) -> Optional[int]:
        """The cached count, or ``None`` on a miss (counted either way)."""
        key = self.key(database, query)
        count = self._entries.get(key)
        if count is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return count

    def put(self, database: Database, query: Query, count: int) -> None:
        """Store an executed count, evicting the LRU entry when full."""
        key = self.key(database, query)
        self._entries[key] = int(count)
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.stats.reset()


#: The process-wide default cache used by :func:`repro.analysis.truth.true_join_size`.
DEFAULT_TRUTH_CACHE = TruthCache()
