"""Ground-truth result cache keyed by database content and query text.

Every accuracy study in this repository compares estimates against
*executed* ground truth, and the studies overlap heavily: the prefix-query
analysis executes each join prefix once per algorithm sweep, sensitivity
studies re-execute the same query against the same data under perturbed
*statistics* (the data never changes), and repeated benchmark runs execute
identical plans again and again.  A ground truth is a pure function of
``(database content, query)``, so it is safe to cache — provided the key
really captures both.

* **Database side** — :meth:`Database.fingerprint
  <repro.storage.database.Database.fingerprint>`: a content digest over
  every table's name, schema, and rows.  Appending a single row changes
  the fingerprint, so stale entries are never served; they simply stop
  being reachable and age out of the LRU.
* **Query side** — :func:`canonical_query_text`: a normalized rendering
  that is invariant under FROM-clause order, predicate order, and
  predicate operand orientation, so ``R1 ⋈ R2`` and ``R2 ⋈ R1`` share one
  entry.

Entries are *digest-verified on read*: each stored count carries a
content digest over its key and value, recomputed and compared on every
hit.  A tampered or bit-rotted entry therefore surfaces as a counted
miss (``stats.corruptions``) and is dropped — the cache can serve stale
*nothing*, but never a wrong ground truth.

The module-level :data:`DEFAULT_TRUTH_CACHE` is what
:func:`repro.analysis.truth.true_join_size` uses unless told otherwise;
pass ``cache=None`` there to force re-execution.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sql.query import Query
from ..storage.database import Database

__all__ = [
    "DEFAULT_TRUTH_CACHE",
    "TruthCache",
    "TruthCacheStats",
    "canonical_query_text",
]


def _entry_digest(key: Tuple[str, str], count: int) -> str:
    """Content digest binding a cached count to its key."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(key[0].encode("utf-8"))
    digest.update(b"|")
    digest.update(key[1].encode("utf-8"))
    digest.update(b"|")
    digest.update(str(count).encode("ascii"))
    return digest.hexdigest()


def canonical_query_text(query: Query) -> str:
    """A normalized query rendering for cache keying.

    Two queries over the same tables with the same predicate conjunction
    produce the same text regardless of FROM-clause order or predicate
    order (predicates are already canonicalized operand-wise by
    :meth:`ComparisonPredicate.canonical` at query construction).  The
    projection is *excluded*: the cache stores join cardinalities, which
    are projection-independent.
    """
    tables = sorted(f"{t}={query.base_table(t)}" for t in query.tables)
    predicates = sorted(str(p) for p in query.predicates)
    return f"FROM {','.join(tables)} WHERE {' AND '.join(predicates)}"


@dataclass
class TruthCacheStats:
    """Observability counters for one cache instance.

    ``corruptions`` counts entries whose digest verification failed on
    read; each such lookup is also counted as a miss (the caller
    re-executes), never as an eviction (capacity was not the cause).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    corruptions: int = 0

    @property
    def lookups(self) -> int:  # els: quantity=count
        return self.hits + self.misses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corruptions = 0

    def to_dict(self) -> Dict[str, int]:
        """A JSON-friendly view (used by the ``bench`` report writer)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "lookups": self.lookups,
        }


class TruthCache:
    """An LRU cache of executed join cardinalities.

    Keys are ``(database fingerprint, canonical query text)``; values are
    exact result counts.  The cache never invalidates eagerly — a changed
    database simply produces a different fingerprint, and untouched
    entries are evicted least-recently-used once ``max_entries`` is
    reached.

    Thread-safe: every access to the LRU map and the counters happens
    under one internal lock, so the cache can back a threaded service (or
    a thread pool inside one harness worker) without torn LRU state or
    lost counter increments.  Fingerprinting and digest arithmetic stay
    outside the critical section — only the map/stats mutation is
    serialized.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], Tuple[int, str]]" = (
            OrderedDict()
        )  # els: guarded_by=_lock
        self.stats = TruthCacheStats()  # els: guarded_by=_lock

    def __len__(self) -> int:
        return len(self._entries)

    def key(self, database: Database, query: Query) -> Tuple[str, str]:
        """The cache key for one (database, query) pair."""
        return (database.fingerprint(), canonical_query_text(query))

    def get(self, database: Database, query: Query) -> Optional[int]:
        """The cached count, or ``None`` on a miss (counted either way).

        Every hit is digest-verified: an entry whose stored digest no
        longer matches its key and count is dropped and reported as a
        miss (and counted in ``stats.corruptions``), so corruption can
        cost a re-execution but never a wrong ground truth.
        """
        key = self.key(database, query)  # fingerprint outside the lock
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            count, stored_digest = entry
            if stored_digest != _entry_digest(key, count):
                self._entries.pop(key, None)
                self.stats.corruptions += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return count

    def put(self, database: Database, query: Query, count: int) -> None:
        """Store an executed count, evicting the LRU entry when full."""
        key = self.key(database, query)  # fingerprint outside the lock
        value = int(count)
        digest = _entry_digest(key, value)
        with self._lock:
            self._entries[key] = (value, digest)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def corrupt(self, database: Database, query: Query) -> bool:
        """Deliberately tamper with one entry (chaos/test hook).

        Flips the stored count without refreshing the digest, simulating
        bit rot or a torn write.  Returns whether an entry was present to
        corrupt.  Production code never calls this; the fault-injection
        layer (:mod:`repro.resilience.chaos`) uses it to prove the
        digest-verification path end to end.
        """
        key = self.key(database, query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            count, stored_digest = entry
            self._entries[key] = (count + 1, stored_digest)
            return True

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats.reset()


#: The process-wide default cache used by :func:`repro.analysis.truth.true_join_size`.
DEFAULT_TRUTH_CACHE = TruthCache()
