"""EXPLAIN ANALYZE: per-operator estimated versus actual cardinalities.

The practical interface between the paper's topic and a database user:
after executing a plan, line up each node's *estimated* rows (stamped on
the plan by the optimizer) with the *actual* rows the executor measured,
and report per-node q-errors.  Misestimates that the final count hides —
an intermediate join that exploded or collapsed — show up immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..execution.executor import ExecutionResult, Executor
from ..execution.metrics import ExecutionMetrics, OperatorStats
from ..optimizer.plans import JoinPlan, PlanNode, ScanPlan
from ..sql.query import Projection
from ..storage.database import Database
from .metrics import q_error
from .report import AsciiTable

__all__ = ["NodeComparison", "explain_analyze", "render_explain_analyze"]


@dataclass(frozen=True)
class NodeComparison:
    """One plan node's estimate lined up with its measured output."""

    label: str
    depth: int
    estimated_rows: float
    actual_rows: int

    @property
    def q_error(self) -> float:
        return q_error(self.estimated_rows, float(self.actual_rows))


def _collect(
    plan: PlanNode, stats: List[OperatorStats], depth: int, out: List[NodeComparison]
) -> OperatorStats:
    """Walk the plan the way the executor built its operator list.

    The executor registers operators depth-first, left child first, with a
    scan's optional filter registered right after the scan; consuming the
    stats list in the same order re-associates each node with its counters.
    """
    if isinstance(plan, ScanPlan):
        scan_stats = stats.pop(0)
        node_stats = scan_stats
        if plan.local_predicates:
            node_stats = stats.pop(0)  # the filter on top of the scan
        out.append(
            NodeComparison(
                label=f"scan({plan.relation})",
                depth=depth,
                estimated_rows=plan.estimated_rows,
                actual_rows=node_stats.rows_out,
            )
        )
        return node_stats
    assert isinstance(plan, JoinPlan)
    _collect(plan.left, stats, depth + 1, out)
    _collect(plan.right, stats, depth + 1, out)
    join_stats = stats.pop(0)
    out.append(
        NodeComparison(
            label=f"{plan.method.value}-join",
            depth=depth,
            estimated_rows=plan.estimated_rows,
            actual_rows=join_stats.rows_out,
        )
    )
    return join_stats


def explain_analyze(
    plan: PlanNode, database: Database
) -> Tuple[List[NodeComparison], ExecutionResult]:
    """Execute a plan and compare every node's estimate with its actuals.

    Returns the node comparisons (bottom-up, leaves before their join) and
    the full execution result.
    """
    executor = Executor(database)
    result = executor.execute(plan, Projection(count_star=True))
    stats = [op for op in result.metrics.operators if op.label != "project"]
    comparisons: List[NodeComparison] = []
    _collect(plan, list(stats), 0, comparisons)
    return comparisons, result


def render_explain_analyze(comparisons: List[NodeComparison]) -> str:
    """Format comparisons as an aligned EXPLAIN ANALYZE table."""
    table = AsciiTable(["Node", "Estimated rows", "Actual rows", "q-error"])
    for node in comparisons:
        table.add_row(
            "  " * node.depth + node.label,
            node.estimated_rows,
            node.actual_rows,
            node.q_error,
        )
    return table.render()
