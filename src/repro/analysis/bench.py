"""Execution benchmark: estimator and ground-truth engine timings.

Backs the ``repro-els bench`` subcommand.  For every prefix of the
paper's Section 8 join (S⋈M, S⋈M⋈B, S⋈M⋈B⋈G) it times, with medians
over configurable repeats:

* **estimator build** — ``JoinSizeEstimator`` construction (closure,
  effective cardinalities, selectivities) under Algorithm ELS,
* **estimate** — one incremental walk of the join order,
* **row truth** — executed COUNT(*) on the row-at-a-time engine,
* **columnar truth** — the same plan on the vectorized columnar engine,
* **cached truth** — a :func:`~repro.analysis.truth.true_join_size` call
  answered by the ground-truth cache.

The report lands in ``BENCH_execution.json`` together with machine
metadata, establishing the perf trajectory later PRs are measured
against.  ``min_speedup`` turns the report into a CI gate: the run fails
when the overall columnar-over-row speedup drops below the floor.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import ELS
from ..core.estimator import JoinSizeEstimator
from ..errors import BenchmarkError
from ..execution.executor import Executor
from ..sql.query import Query
from ..storage.database import Database
from ..workloads.paper import load_smbg_database, smbg_query, smbg_specs
from ..workloads.queries import GeneratedWorkload
from ..resilience.retry import RetryPolicy
from .harness import evaluate_workloads, prefix_query
from .truth import build_reference_plan, true_join_size
from .truthcache import TruthCache

__all__ = [
    "machine_metadata",
    "render_bench_report",
    "run_execution_bench",
    "write_bench_json",
]


def machine_metadata() -> Dict[str, object]:
    """Hardware/runtime facts recorded with every benchmark report."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _median_seconds(action: Callable[[], object], repeats: int) -> float:
    samples: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        action()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _bench_prefix(
    database: Database,
    query: Query,
    tables: Sequence[str],
    repeats: int,
) -> Dict[str, object]:
    """Benchmark one join prefix on both engines (plus estimator timings)."""
    sub_query = prefix_query(query, tables)
    order = list(tables)
    plan = build_reference_plan(sub_query, database)

    # Warm-up: charges one-time caches (the storage transpose, the plan's
    # page math) outside the timed region and pins the true count.
    true_count = Executor(database, engine="columnar").count(plan).count
    row_check = Executor(database, engine="row").count(plan).count
    if row_check != true_count:
        raise BenchmarkError(
            f"engine disagreement on {'><'.join(tables)}: "
            f"row={row_check} columnar={true_count}"
        )

    estimator = JoinSizeEstimator(sub_query, database.catalog, ELS, True)
    estimate = estimator.estimate(order)
    build_s = _median_seconds(
        lambda: JoinSizeEstimator(sub_query, database.catalog, ELS, True), repeats
    )
    estimate_s = _median_seconds(lambda: estimator.estimate(order), repeats)
    row_truth_s = _median_seconds(
        lambda: Executor(database, engine="row").count(plan), repeats
    )
    columnar_truth_s = _median_seconds(
        lambda: Executor(database, engine="columnar").count(plan), repeats
    )
    cache = TruthCache()
    true_join_size(sub_query, database, cache=cache)  # fill
    cached_truth_s = _median_seconds(
        lambda: true_join_size(sub_query, database, cache=cache), repeats
    )
    return {
        "label": " >< ".join(tables),
        "tables": list(tables),
        "true_count": true_count,
        "estimate": estimate,
        "estimator_build_s": build_s,
        "estimate_s": estimate_s,
        "row_truth_s": row_truth_s,
        "columnar_truth_s": columnar_truth_s,
        "cached_truth_s": cached_truth_s,
        "speedup": row_truth_s / columnar_truth_s if columnar_truth_s > 0 else 0.0,
        "truth_cache": cache.stats.to_dict(),
    }


def run_execution_bench(
    scale: float = 1.0,
    repeats: int = 5,
    seed: int = 42,
    workers: int = 1,
    sweep: bool = True,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run the full execution benchmark and return the report dict.

    Args:
        scale: Table-size scale of the S/M/B/G database (1.0 = the
            paper's 157k rows).
        repeats: Timing samples per measurement; medians are reported.
        seed: Data-generation seed.
        workers: Process count for the parallel-harness sweep section.
        sweep: Also time :func:`~repro.analysis.harness.evaluate_workloads`
            over the prefix workloads (includes per-worker data
            generation; disable for the quickest run).
        timeout_s: Per-payload ground-truth budget for the sweep section;
            payloads that exceed it after retries are recorded as
            degraded (counted in ``parallel_sweep.degraded_count``)
            instead of failing the bench.
        retries: Attempts per sweep payload (``None`` = the harness
            default policy).
        checkpoint_path: Sweep checkpoint file; completed payloads are
            skipped on restart.
    """
    if repeats < 1:
        raise BenchmarkError(f"repeats must be positive, got {repeats}")
    database = load_smbg_database(scale=scale, seed=seed)
    query = smbg_query(threshold=max(2, int(100 * scale)))
    tables = list(query.tables)
    prefixes = [
        _bench_prefix(database, query, tables[: k + 2], repeats)
        for k in range(len(tables) - 1)
    ]
    overall_row = sum(p["row_truth_s"] for p in prefixes)
    overall_columnar = sum(p["columnar_truth_s"] for p in prefixes)
    report: Dict[str, object] = {
        "meta": {
            "tool": "repro-els bench",
            "scale": scale,
            "repeats": repeats,
            "seed": seed,
            "workers": workers,
            "engines": ["row", "columnar"],
            "machine": machine_metadata(),
        },
        "prefixes": prefixes,
        "overall": {
            "row_truth_s": overall_row,
            "columnar_truth_s": overall_columnar,
            "speedup": overall_row / overall_columnar if overall_columnar > 0 else 0.0,
        },
    }
    if sweep:
        workloads = [
            GeneratedWorkload(
                tuple(smbg_specs(scale)), prefix_query(query, tables[: k + 2])
            )
            for k in range(len(tables) - 1)
        ]
        policy = (
            RetryPolicy(max_attempts=retries) if retries is not None else None
        )
        started = time.perf_counter()
        records = evaluate_workloads(
            workloads,
            seed=seed,
            workers=workers,
            timeout_s=timeout_s,
            retry=policy,
            checkpoint_path=checkpoint_path,
        )
        degraded_count = sum(
            1 for workload_records in records if any(r.degraded for r in workload_records)
        )
        report["parallel_sweep"] = {
            "workers": workers,
            "workloads": len(workloads),
            "seconds": time.perf_counter() - started,
            "degraded_count": degraded_count,
        }
    return report


def write_bench_json(report: Dict[str, object], path: str) -> None:
    """Write the benchmark report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def render_bench_report(report: Dict[str, object]) -> str:
    """A human-readable summary table of one benchmark report."""
    from .report import AsciiTable

    meta = report["meta"]
    table = AsciiTable(
        ["Prefix", "True", "Build (s)", "Estimate (s)", "Row (s)", "Columnar (s)", "Speedup"],
        title=f"Execution benchmark at scale {meta['scale']} ({meta['repeats']} repeats)",
    )
    for prefix in report["prefixes"]:
        table.add_row(
            prefix["label"],
            prefix["true_count"],
            f"{prefix['estimator_build_s']:.6f}",
            f"{prefix['estimate_s']:.6f}",
            f"{prefix['row_truth_s']:.6f}",
            f"{prefix['columnar_truth_s']:.6f}",
            f"{prefix['speedup']:.2f}x",
        )
    overall = report["overall"]
    lines = [table.render()]
    lines.append(
        f"overall ground truth: row {overall['row_truth_s']:.6f}s, "
        f"columnar {overall['columnar_truth_s']:.6f}s "
        f"({overall['speedup']:.2f}x speedup)"
    )
    sweep = report.get("parallel_sweep")
    if sweep:
        line = (
            f"parallel sweep: {sweep['workloads']} workloads with "
            f"{sweep['workers']} worker(s) in {sweep['seconds']:.3f}s"
        )
        degraded_count = sweep.get("degraded_count", 0)
        if degraded_count:
            line += f" ({degraded_count} degraded)"
        lines.append(line)
    return "\n".join(lines)
