"""Execution benchmark: estimator and ground-truth engine timings.

Backs the ``repro-els bench`` subcommand.  For every prefix of the
paper's Section 8 join (S⋈M, S⋈M⋈B, S⋈M⋈B⋈G) it times, with medians
over configurable repeats:

* **estimator build** — ``JoinSizeEstimator`` construction (closure,
  effective cardinalities, selectivities) under Algorithm ELS,
* **estimate** — one incremental walk of the join order,
* **row truth** — executed COUNT(*) on the row-at-a-time engine,
* **columnar truth** — the same plan on the vectorized columnar engine,
* **parallel truth** — with ``engine="parallel"``, the same plan on the
  morsel-parallel tier at the configured worker count *and* at one
  worker (the one-worker column proves the parallel engine never
  regresses the serial baseline),
* **cached truth** — a :func:`~repro.analysis.truth.true_join_size` call
  answered by the ground-truth cache.

The report lands in ``BENCH_execution.json`` together with machine
metadata — including the full per-engine worker configuration
(``meta["engine_config"]``: morsel workers, morsel rows, radix
partitions), not just ``cpu_count`` — establishing the perf trajectory
later PRs are measured against.  ``min_speedup`` turns the report into a
CI gate: the run fails when the gated speedup (columnar over row, or
parallel over columnar when the parallel engine is benched) drops below
the floor.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import ELS
from ..core.estimator import JoinSizeEstimator
from ..errors import BenchmarkError
from ..execution.executor import Executor, validate_engine
from ..execution.parallel import (
    DEFAULT_MORSEL_ROWS,
    DEFAULT_RADIX_BITS,
    FANOUT_MIN_PROBE_ROWS,
)
from ..sql.query import Query
from ..storage.database import Database
from ..workloads.paper import load_smbg_database, smbg_query, smbg_specs
from ..workloads.queries import GeneratedWorkload
from ..resilience.retry import RetryPolicy
from .harness import evaluate_workloads, prefix_query
from .truth import build_reference_plan, true_join_size
from .truthcache import TruthCache

__all__ = [
    "machine_metadata",
    "render_bench_report",
    "run_execution_bench",
    "write_bench_json",
]


def machine_metadata() -> Dict[str, object]:
    """Hardware/runtime facts recorded with every benchmark report."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _median_seconds(action: Callable[[], object], repeats: int) -> float:
    samples: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        action()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _bench_prefix(
    database: Database,
    query: Query,
    tables: Sequence[str],
    repeats: int,
    parallel_workers: Optional[int] = None,
) -> Dict[str, object]:
    """Benchmark one join prefix on the engines (plus estimator timings).

    With ``parallel_workers`` set, the morsel-parallel engine is also
    timed — at that worker count and at one worker — and included in the
    count-disagreement guard.
    """
    sub_query = prefix_query(query, tables)
    order = list(tables)
    plan = build_reference_plan(sub_query, database)

    # Warm-up: charges one-time caches (the storage transpose, the plan's
    # page math) outside the timed region and pins the true count.
    true_count = Executor(database, engine="columnar").count(plan).count
    row_check = Executor(database, engine="row").count(plan).count
    if row_check != true_count:
        raise BenchmarkError(
            f"engine disagreement on {'><'.join(tables)}: "
            f"row={row_check} columnar={true_count}"
        )
    if parallel_workers is not None:
        # Warms the value-index caches and extends the guard three ways.
        parallel_check = (
            Executor(database, engine="parallel", morsel_workers=parallel_workers)
            .count(plan)
            .count
        )
        if parallel_check != true_count:
            raise BenchmarkError(
                f"engine disagreement on {'><'.join(tables)}: "
                f"columnar={true_count} parallel={parallel_check}"
            )

    estimator = JoinSizeEstimator(sub_query, database.catalog, ELS, True)
    estimate = estimator.estimate(order)
    build_s = _median_seconds(
        lambda: JoinSizeEstimator(sub_query, database.catalog, ELS, True), repeats
    )
    estimate_s = _median_seconds(lambda: estimator.estimate(order), repeats)
    row_truth_s = _median_seconds(
        lambda: Executor(database, engine="row").count(plan), repeats
    )
    columnar_truth_s = _median_seconds(
        lambda: Executor(database, engine="columnar").count(plan), repeats
    )
    cache = TruthCache()
    true_join_size(sub_query, database, cache=cache)  # fill
    cached_truth_s = _median_seconds(
        lambda: true_join_size(sub_query, database, cache=cache), repeats
    )
    result: Dict[str, object] = {
        "label": " >< ".join(tables),
        "tables": list(tables),
        "true_count": true_count,
        "estimate": estimate,
        "estimator_build_s": build_s,
        "estimate_s": estimate_s,
        "row_truth_s": row_truth_s,
        "columnar_truth_s": columnar_truth_s,
        "cached_truth_s": cached_truth_s,
        "speedup": row_truth_s / columnar_truth_s if columnar_truth_s > 0 else 0.0,
        "truth_cache": cache.stats.to_dict(),
    }
    if parallel_workers is not None:
        parallel_truth_s = _median_seconds(
            lambda: Executor(
                database, engine="parallel", morsel_workers=parallel_workers
            ).count(plan),
            repeats,
        )
        parallel_w1_truth_s = _median_seconds(
            lambda: Executor(
                database, engine="parallel", morsel_workers=1
            ).count(plan),
            repeats,
        )
        result["parallel_truth_s"] = parallel_truth_s
        result["parallel_w1_truth_s"] = parallel_w1_truth_s
        result["parallel_speedup"] = (
            columnar_truth_s / parallel_truth_s if parallel_truth_s > 0 else 0.0
        )
        result["parallel_w1_speedup"] = (
            columnar_truth_s / parallel_w1_truth_s if parallel_w1_truth_s > 0 else 0.0
        )
    return result


def run_execution_bench(
    scale: float = 1.0,
    repeats: int = 5,
    seed: int = 42,
    workers: int = 1,
    sweep: bool = True,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    engine: str = "columnar",
    morsel_workers: Optional[int] = None,
) -> Dict[str, object]:
    """Run the full execution benchmark and return the report dict.

    Args:
        scale: Table-size scale of the S/M/B/G database (1.0 = the
            paper's 157k rows).
        repeats: Timing samples per measurement; medians are reported.
        seed: Data-generation seed.
        workers: Process count for the parallel-harness sweep section.
        sweep: Also time :func:`~repro.analysis.harness.evaluate_workloads`
            over the prefix workloads (includes per-worker data
            generation; disable for the quickest run).
        timeout_s: Per-payload ground-truth budget for the sweep section;
            payloads that exceed it after retries are recorded as
            degraded (counted in ``parallel_sweep.degraded_count``)
            instead of failing the bench.
        retries: Attempts per sweep payload (``None`` = the harness
            default policy).
        checkpoint_path: Sweep checkpoint file; completed payloads are
            skipped on restart.
        engine: The newest engine to bench: ``"columnar"`` times row and
            columnar (the historical report shape); ``"parallel"``
            additionally times the morsel-parallel engine at
            ``morsel_workers`` and at one worker.
        morsel_workers: Worker count for the parallel engine timings
            (``None`` means one per CPU).

    Raises:
        BenchmarkError: on invalid knobs (``repeats``/``workers`` < 1,
            non-positive ``scale``, an unknown ``engine``).
    """
    if repeats < 1:
        raise BenchmarkError(f"repeats must be positive, got {repeats}")
    validate_engine(engine)
    if engine == "row":
        raise BenchmarkError(
            "bench engine must be 'columnar' or 'parallel'; the row engine "
            "is always timed as the baseline"
        )
    parallel_workers: Optional[int] = None
    if engine == "parallel":
        parallel_workers = (
            morsel_workers if morsel_workers is not None else (os.cpu_count() or 1)
        )
        if parallel_workers < 1:
            raise BenchmarkError(
                f"morsel_workers must be positive, got {parallel_workers}"
            )
    database = load_smbg_database(scale=scale, seed=seed)
    query = smbg_query(threshold=max(2, int(100 * scale)))
    tables = list(query.tables)
    prefixes = [
        _bench_prefix(
            database, query, tables[: k + 2], repeats, parallel_workers
        )
        for k in range(len(tables) - 1)
    ]
    overall_row = sum(p["row_truth_s"] for p in prefixes)
    overall_columnar = sum(p["columnar_truth_s"] for p in prefixes)
    engines = ["row", "columnar"] + (["parallel"] if parallel_workers else [])
    engine_config: Dict[str, object] = {
        "sweep_workers": workers,
    }
    if parallel_workers is not None:
        engine_config["parallel"] = {
            "morsel_workers": parallel_workers,
            "morsel_rows": DEFAULT_MORSEL_ROWS,
            "radix_bits": DEFAULT_RADIX_BITS,
            "partitions": 1 << DEFAULT_RADIX_BITS,
            "fanout_min_probe_rows": FANOUT_MIN_PROBE_ROWS,
        }
    report: Dict[str, object] = {
        "meta": {
            "tool": "repro-els bench",
            "scale": scale,
            "repeats": repeats,
            "seed": seed,
            "workers": workers,
            "engine": engine,
            "morsel_workers": parallel_workers,
            "engines": engines,
            "engine_config": engine_config,
            "machine": machine_metadata(),
        },
        "prefixes": prefixes,
        "overall": {
            "row_truth_s": overall_row,
            "columnar_truth_s": overall_columnar,
            "speedup": overall_row / overall_columnar if overall_columnar > 0 else 0.0,
        },
    }
    if parallel_workers is not None:
        overall_parallel = sum(p["parallel_truth_s"] for p in prefixes)
        overall_parallel_w1 = sum(p["parallel_w1_truth_s"] for p in prefixes)
        overall = report["overall"]
        overall["parallel_truth_s"] = overall_parallel
        overall["parallel_w1_truth_s"] = overall_parallel_w1
        overall["parallel_speedup"] = (
            overall_columnar / overall_parallel if overall_parallel > 0 else 0.0
        )
        overall["parallel_w1_speedup"] = (
            overall_columnar / overall_parallel_w1
            if overall_parallel_w1 > 0
            else 0.0
        )
    if sweep:
        workloads = [
            GeneratedWorkload(
                tuple(smbg_specs(scale)), prefix_query(query, tables[: k + 2])
            )
            for k in range(len(tables) - 1)
        ]
        policy = (
            RetryPolicy(max_attempts=retries) if retries is not None else None
        )
        started = time.perf_counter()
        records = evaluate_workloads(
            workloads,
            seed=seed,
            workers=workers,
            timeout_s=timeout_s,
            retry=policy,
            checkpoint_path=checkpoint_path,
            engine=engine,
            morsel_workers=parallel_workers,
        )
        degraded_count = sum(
            1 for workload_records in records if any(r.degraded for r in workload_records)
        )
        report["parallel_sweep"] = {
            "workers": workers,
            "workloads": len(workloads),
            "seconds": time.perf_counter() - started,
            "degraded_count": degraded_count,
        }
    return report


def write_bench_json(report: Dict[str, object], path: str) -> None:
    """Write the benchmark report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def render_bench_report(report: Dict[str, object]) -> str:
    """A human-readable summary table of one benchmark report."""
    from .report import AsciiTable

    meta = report["meta"]
    has_parallel = any("parallel_truth_s" in p for p in report["prefixes"])
    headers = ["Prefix", "True", "Build (s)", "Estimate (s)", "Row (s)", "Columnar (s)", "Speedup"]
    if has_parallel:
        headers += ["Parallel (s)", "P-Speedup"]
    table = AsciiTable(
        headers,
        title=f"Execution benchmark at scale {meta['scale']} ({meta['repeats']} repeats)",
    )
    for prefix in report["prefixes"]:
        row = [
            prefix["label"],
            prefix["true_count"],
            f"{prefix['estimator_build_s']:.6f}",
            f"{prefix['estimate_s']:.6f}",
            f"{prefix['row_truth_s']:.6f}",
            f"{prefix['columnar_truth_s']:.6f}",
            f"{prefix['speedup']:.2f}x",
        ]
        if has_parallel:
            row += [
                f"{prefix['parallel_truth_s']:.6f}",
                f"{prefix['parallel_speedup']:.2f}x",
            ]
        table.add_row(*row)
    overall = report["overall"]
    lines = [table.render()]
    lines.append(
        f"overall ground truth: row {overall['row_truth_s']:.6f}s, "
        f"columnar {overall['columnar_truth_s']:.6f}s "
        f"({overall['speedup']:.2f}x speedup)"
    )
    if has_parallel:
        workers = meta.get("morsel_workers")
        lines.append(
            f"parallel engine ({workers} morsel worker(s)): "
            f"{overall['parallel_truth_s']:.6f}s "
            f"({overall['parallel_speedup']:.2f}x over columnar; "
            f"1-worker {overall['parallel_w1_truth_s']:.6f}s, "
            f"{overall['parallel_w1_speedup']:.2f}x)"
        )
    sweep = report.get("parallel_sweep")
    if sweep:
        line = (
            f"parallel sweep: {sweep['workloads']} workloads with "
            f"{sweep['workers']} worker(s) in {sweep['seconds']:.3f}s"
        )
        degraded_count = sweep.get("degraded_count", 0)
        if degraded_count:
            line += f" ({degraded_count} degraded)"
        lines.append(line)
    return "\n".join(lines)
