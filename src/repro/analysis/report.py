"""Plain-text report tables for benchmark and example output.

Benchmarks print tables shaped like the paper's Section 8 results table;
this tiny formatter keeps them aligned and consistent without pulling in a
dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["format_quantity", "AsciiTable"]

Cell = Union[str, int, float, None]


def format_quantity(value: Union[int, float], digits: int = 4) -> str:
    """Compact numeric formatting: integers plain, extremes scientific.

    ``4e-21`` prints as ``4e-21`` (the way the paper's table shows the
    collapsed estimates), ``1000.0`` prints as ``1000``.
    """
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "nan"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e7 or magnitude < 1e-3:
        return f"{value:.3g}"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.{digits}g}"


class AsciiTable:
    """A minimal aligned text table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self._headers = [str(h) for h in headers]
        self._rows: List[List[str]] = []
        self._title = title

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self._headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self._headers)} columns"
            )
        rendered = []
        for cell in cells:
            if cell is None:
                rendered.append("-")
            elif isinstance(cell, (int, float)):
                rendered.append(format_quantity(cell))
            else:
                rendered.append(str(cell))
        self._rows.append(rendered)

    def render(self) -> str:
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self._title:
            lines.append(self._title)
        separator = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self._headers, widths)))
        lines.append(separator)
        for row in self._rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
