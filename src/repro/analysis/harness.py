"""Shared estimation-accuracy harness used by benchmarks and examples.

Wires the pieces together for one workload: generate data, ANALYZE,
estimate with each configured algorithm, execute for ground truth, and
report per-algorithm errors.  The four named algorithm setups match the
rows of the paper's Section 8 table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.config import ELS, SM, SSS, EstimatorConfig
from ..core.estimator import JoinSizeEstimator
from ..sql.predicates import ComparisonPredicate
from ..sql.query import Projection, Query
from ..storage.database import Database
from ..workloads.generator import build_database
from ..workloads.queries import GeneratedWorkload
from .metrics import q_error, ratio_error
from .truth import true_join_size

__all__ = [
    "AlgorithmSpec",
    "PAPER_ALGORITHMS",
    "AccuracyRecord",
    "prefix_query",
    "evaluate_workload",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named estimation setup: configuration plus the PTC toggle."""

    name: str
    config: EstimatorConfig
    apply_closure: bool = True


#: The four experimental setups of the paper's Section 8 table.
PAPER_ALGORITHMS: Tuple[AlgorithmSpec, ...] = (
    AlgorithmSpec("SM (no PTC)", SM, apply_closure=False),
    AlgorithmSpec("SM + PTC", SM),
    AlgorithmSpec("SSS + PTC", SSS),
    AlgorithmSpec("ELS", ELS),
)


@dataclass(frozen=True)
class AccuracyRecord:
    """One (workload, algorithm) estimation outcome."""

    algorithm: str
    estimate: float
    actual: int

    @property
    def q_error(self) -> float:
        return q_error(self.estimate, self.actual)

    @property
    def ratio(self) -> float:
        return ratio_error(self.estimate, self.actual)


def prefix_query(query: Query, tables: Sequence[str]) -> Query:
    """The sub-query over a prefix of the tables (for incremental studies).

    Keeps every predicate whose tables all fall inside the prefix; the
    projection becomes COUNT(*) since only the cardinality matters.
    """
    subset = set(tables)
    predicates: List[ComparisonPredicate] = [
        p for p in query.predicates if p.tables <= subset
    ]
    aliases = {t: query.base_table(t) for t in tables}
    return Query.build(tables, predicates, Projection(count_star=True), aliases)


def evaluate_workload(
    workload: GeneratedWorkload,
    algorithms: Iterable[AlgorithmSpec] = PAPER_ALGORITHMS,
    seed: int = 0,
    order: Optional[Sequence[str]] = None,
    database: Optional[Database] = None,
    check_invariants: bool = False,
) -> List[AccuracyRecord]:
    """Estimate-vs-truth comparison for one workload.

    Args:
        workload: The specs and query to evaluate.
        algorithms: Estimation setups to compare.
        seed: Data-generation seed (ignored when ``database`` is given).
        order: Join order the estimators walk; defaults to FROM-clause
            order, which is connected for chains/stars/cliques.
        database: Reuse an already generated database.
        check_invariants: Run the layer-2 semantic diagnostics
            (:mod:`repro.lint.semantic`) inside every estimator build, so a
            benchmark over a query that violates the paper's invariants
            fails loudly (:class:`repro.errors.DiagnosticError`) instead of
            reporting numbers from a broken premise.
    """
    db = database if database is not None else build_database(workload.specs, seed)
    actual = true_join_size(workload.query, db)
    join_order = list(order) if order is not None else list(workload.query.tables)
    records: List[AccuracyRecord] = []
    for spec in algorithms:
        config = (
            spec.config.but(check_invariants=True) if check_invariants else spec.config
        )
        estimator = JoinSizeEstimator(
            workload.query, db.catalog, config, spec.apply_closure
        )
        estimate = estimator.estimate(join_order)
        records.append(AccuracyRecord(spec.name, estimate, actual))
    return records
