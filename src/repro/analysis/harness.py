"""Shared estimation-accuracy harness used by benchmarks and examples.

Wires the pieces together for one workload: generate data, ANALYZE,
estimate with each configured algorithm, execute for ground truth, and
report per-algorithm errors.  The four named algorithm setups match the
rows of the paper's Section 8 table.

For sweeps over many workloads, :func:`evaluate_workloads` fans the
per-workload pipeline across a :mod:`multiprocessing` pool.  Results are
deterministic regardless of worker count: workload ``i`` always generates
its data from seed ``seed + i`` and results are returned in input order,
so ``workers=8`` and ``workers=1`` produce byte-identical record lists.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.config import ELS, SM, SSS, EstimatorConfig
from ..core.estimator import JoinSizeEstimator
from ..sql.predicates import ComparisonPredicate
from ..sql.query import Projection, Query
from ..storage.database import Database
from ..workloads.generator import build_database
from ..workloads.queries import GeneratedWorkload
from .metrics import q_error, ratio_error
from .truth import true_join_size

__all__ = [
    "AlgorithmSpec",
    "PAPER_ALGORITHMS",
    "AccuracyRecord",
    "prefix_query",
    "evaluate_workload",
    "evaluate_workloads",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named estimation setup: configuration plus the PTC toggle."""

    name: str
    config: EstimatorConfig
    apply_closure: bool = True


#: The four experimental setups of the paper's Section 8 table.
PAPER_ALGORITHMS: Tuple[AlgorithmSpec, ...] = (
    AlgorithmSpec("SM (no PTC)", SM, apply_closure=False),
    AlgorithmSpec("SM + PTC", SM),
    AlgorithmSpec("SSS + PTC", SSS),
    AlgorithmSpec("ELS", ELS),
)


@dataclass(frozen=True)
class AccuracyRecord:
    """One (workload, algorithm) estimation outcome."""

    algorithm: str
    estimate: float
    actual: int

    @property
    def q_error(self) -> float:
        return q_error(self.estimate, self.actual)

    @property
    def ratio(self) -> float:
        return ratio_error(self.estimate, self.actual)


def prefix_query(query: Query, tables: Sequence[str]) -> Query:
    """The sub-query over a prefix of the tables (for incremental studies).

    Keeps every predicate whose tables all fall inside the prefix; the
    projection becomes COUNT(*) since only the cardinality matters.
    """
    subset = set(tables)
    predicates: List[ComparisonPredicate] = [
        p for p in query.predicates if p.tables <= subset
    ]
    aliases = {t: query.base_table(t) for t in tables}
    return Query.build(tables, predicates, Projection(count_star=True), aliases)


def evaluate_workload(
    workload: GeneratedWorkload,
    algorithms: Iterable[AlgorithmSpec] = PAPER_ALGORITHMS,
    seed: int = 0,
    order: Optional[Sequence[str]] = None,
    database: Optional[Database] = None,
    check_invariants: bool = False,
    engine: str = "columnar",
) -> List[AccuracyRecord]:
    """Estimate-vs-truth comparison for one workload.

    Args:
        workload: The specs and query to evaluate.
        algorithms: Estimation setups to compare.
        seed: Data-generation seed (ignored when ``database`` is given).
        order: Join order the estimators walk; defaults to FROM-clause
            order, which is connected for chains/stars/cliques.
        database: Reuse an already generated database.
        check_invariants: Run the layer-2 semantic diagnostics
            (:mod:`repro.lint.semantic`) inside every estimator build, so a
            benchmark over a query that violates the paper's invariants
            fails loudly (:class:`repro.errors.DiagnosticError`) instead of
            reporting numbers from a broken premise.
        engine: Execution engine for the ground truth (both engines yield
            identical counts; columnar is faster).
    """
    db = database if database is not None else build_database(workload.specs, seed)
    actual = true_join_size(workload.query, db, engine=engine)
    join_order = list(order) if order is not None else list(workload.query.tables)
    records: List[AccuracyRecord] = []
    for spec in algorithms:
        config = (
            spec.config.but(check_invariants=True) if check_invariants else spec.config
        )
        estimator = JoinSizeEstimator(
            workload.query, db.catalog, config, spec.apply_closure
        )
        estimate = estimator.estimate(join_order)
        records.append(AccuracyRecord(spec.name, estimate, actual))
    return records


def _evaluate_one(
    payload: Tuple[GeneratedWorkload, Tuple[AlgorithmSpec, ...], int, bool, str],
) -> List[AccuracyRecord]:
    """Pool worker: unpack one workload task and evaluate it serially."""
    workload, algorithms, seed, check_invariants, engine = payload
    return evaluate_workload(
        workload,
        algorithms,
        seed=seed,
        check_invariants=check_invariants,
        engine=engine,
    )


def evaluate_workloads(
    workloads: Sequence[GeneratedWorkload],
    algorithms: Iterable[AlgorithmSpec] = PAPER_ALGORITHMS,
    seed: int = 0,
    workers: int = 1,
    check_invariants: bool = False,
    engine: str = "columnar",
) -> List[List[AccuracyRecord]]:
    """Evaluate many workloads, optionally across a process pool.

    Workload ``i`` always generates its database from seed ``seed + i``
    and the result list preserves input order, so the output is a pure
    function of ``(workloads, algorithms, seed)`` — worker count only
    changes wall-clock time, never a number.  Each worker process holds
    its own ground-truth cache; caching still helps within a worker (e.g.
    repeated queries inside one workload list) but is not shared across
    processes.

    Args:
        workloads: The workloads to evaluate, in order.
        algorithms: Estimation setups compared for each workload.
        seed: Base data-generation seed.
        workers: Process count; ``<= 1`` evaluates serially in-process.
        check_invariants: As in :func:`evaluate_workload`.
        engine: Ground-truth execution engine.
    """
    specs = tuple(algorithms)
    payloads = [
        (workload, specs, seed + index, check_invariants, engine)
        for index, workload in enumerate(workloads)
    ]
    if workers <= 1 or len(payloads) <= 1:
        return [_evaluate_one(payload) for payload in payloads]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    with context.Pool(processes=min(workers, len(payloads))) as pool:
        return pool.map(_evaluate_one, payloads)
