"""Shared estimation-accuracy harness used by benchmarks and examples.

Wires the pieces together for one workload: generate data, ANALYZE,
estimate with each configured algorithm, execute for ground truth, and
report per-algorithm errors.  The four named algorithm setups match the
rows of the paper's Section 8 table.

For sweeps over many workloads, :func:`evaluate_workloads` fans the
per-workload pipeline across a :mod:`multiprocessing` pool.  Results are
deterministic regardless of worker count: workload ``i`` always generates
its data from seed ``seed + i`` and results are returned in input order,
so ``workers=8`` and ``workers=1`` produce byte-identical record lists.

The sweep is also *fault-tolerant* (:mod:`repro.resilience`):

* each payload runs under an optional ground-truth deadline
  (``timeout_s``) checked cooperatively inside the executors;
* transient failures — a crashed worker, an expired deadline — are
  retried under a :class:`~repro.resilience.retry.RetryPolicy` with
  seeded-deterministic backoff, re-spawning the pool if it died;
* a payload whose ground truth never fits the deadline degrades
  gracefully: its records carry ``degraded=True``, ``actual=None``, and
  a machine-readable :class:`~repro.resilience.retry.FailureReport`
  instead of aborting the sweep;
* ``checkpoint_path`` appends completed payloads as JSON lines keyed by
  a content fingerprint, and a restarted sweep skips them;
* a seeded :class:`~repro.resilience.chaos.FaultPlan` (argument or
  ``REPRO_FAULT_PLAN`` environment variable) injects crashes, slow
  executions, and cache corruption for differential chaos testing.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import ELS, SM, SSS, EstimatorConfig
from ..core.estimator import JoinSizeEstimator
from ..errors import DeadlineExceededError, ReproError, WorkloadError
from ..execution.executor import validate_engine
from ..resilience.chaos import FaultPlan, InjectedWorkerCrash
from ..resilience.checkpoint import (
    append_checkpoint,
    fingerprint_of,
    load_checkpoint,
)
from ..resilience.deadline import Deadline
from ..resilience.retry import DEFAULT_RETRY_POLICY, FailureReport, RetryPolicy
from ..sql.predicates import ComparisonPredicate
from ..sql.query import Projection, Query
from ..storage.database import Database
from ..workloads.generator import build_database
from ..workloads.queries import GeneratedWorkload
from .metrics import q_error, ratio_error
from .truth import true_join_size
from .truthcache import DEFAULT_TRUTH_CACHE, canonical_query_text

__all__ = [
    "AlgorithmSpec",
    "PAPER_ALGORITHMS",
    "AccuracyRecord",
    "prefix_query",
    "evaluate_workload",
    "evaluate_workloads",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named estimation setup: configuration plus the PTC toggle."""

    name: str
    config: EstimatorConfig
    apply_closure: bool = True


#: The four experimental setups of the paper's Section 8 table.
PAPER_ALGORITHMS: Tuple[AlgorithmSpec, ...] = (
    AlgorithmSpec("SM (no PTC)", SM, apply_closure=False),
    AlgorithmSpec("SM + PTC", SM),
    AlgorithmSpec("SSS + PTC", SSS),
    AlgorithmSpec("ELS", ELS),
)


@dataclass(frozen=True)
class AccuracyRecord:
    """One (workload, algorithm) estimation outcome.

    ``actual`` is ``None`` — and ``degraded`` is ``True`` — when the
    ground truth could not be computed within its deadline after retries;
    the estimate is still recorded so a sweep degrades instead of dying.
    ``failure`` then carries the machine-readable reason.  Degraded
    records should be excluded from accuracy aggregates (their error
    metrics are NaN by construction).
    """

    algorithm: str
    estimate: float
    actual: Optional[int]
    degraded: bool = False
    failure: Optional[FailureReport] = None

    @property
    def q_error(self) -> float:
        if self.actual is None:
            return float("nan")
        return q_error(self.estimate, self.actual)

    @property
    def ratio(self) -> float:
        if self.actual is None:
            return float("nan")
        return ratio_error(self.estimate, self.actual)


def prefix_query(query: Query, tables: Sequence[str]) -> Query:
    """The sub-query over a prefix of the tables (for incremental studies).

    Keeps every predicate whose tables all fall inside the prefix; the
    projection becomes COUNT(*) since only the cardinality matters.
    """
    subset = set(tables)
    predicates: List[ComparisonPredicate] = [
        p for p in query.predicates if p.tables <= subset
    ]
    aliases = {t: query.base_table(t) for t in tables}
    return Query.build(tables, predicates, Projection(count_star=True), aliases)


def _estimate_records(
    workload: GeneratedWorkload,
    algorithms: Iterable[AlgorithmSpec],
    database: Database,
    order: Optional[Sequence[str]],
    check_invariants: bool,
    actual: Optional[int],
    failure: Optional[FailureReport] = None,
) -> List[AccuracyRecord]:
    """Run every estimator once and pair it with the (maybe absent) truth."""
    join_order = list(order) if order is not None else list(workload.query.tables)
    degraded = actual is None
    records: List[AccuracyRecord] = []
    for spec in algorithms:
        config = (
            spec.config.but(check_invariants=True) if check_invariants else spec.config
        )
        estimator = JoinSizeEstimator(
            workload.query, database.catalog, config, spec.apply_closure
        )
        estimate = estimator.estimate(join_order)
        records.append(
            AccuracyRecord(
                spec.name,
                estimate,
                actual,
                degraded=degraded,
                failure=failure if degraded else None,
            )
        )
    return records


def evaluate_workload(
    workload: GeneratedWorkload,
    algorithms: Iterable[AlgorithmSpec] = PAPER_ALGORITHMS,
    seed: int = 0,
    order: Optional[Sequence[str]] = None,
    database: Optional[Database] = None,
    check_invariants: bool = False,
    engine: str = "columnar",
    timeout_s: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    morsel_workers: Optional[int] = None,
) -> List[AccuracyRecord]:
    """Estimate-vs-truth comparison for one workload.

    Args:
        workload: The specs and query to evaluate.
        algorithms: Estimation setups to compare.
        seed: Data-generation seed (ignored when ``database`` is given).
        order: Join order the estimators walk; defaults to FROM-clause
            order, which is connected for chains/stars/cliques.
        database: Reuse an already generated database.
        check_invariants: Run the layer-2 semantic diagnostics
            (:mod:`repro.lint.semantic`) inside every estimator build, so a
            benchmark over a query that violates the paper's invariants
            fails loudly (:class:`repro.errors.DiagnosticError`) instead of
            reporting numbers from a broken premise.
        engine: Execution engine for the ground truth (both engines yield
            identical counts; columnar is faster).
        timeout_s: Optional wall-clock budget for the ground-truth
            execution; when spent, the run aborts with
            :class:`~repro.errors.DeadlineExceededError` (the *sweep*
            driver :func:`evaluate_workloads` turns that into a degraded
            record instead).
        deadline: An already-running deadline to honor instead (wins over
            ``timeout_s``).
        morsel_workers: Fan-out width for the ``"parallel"`` engine
            (``None`` means one per CPU); ignored by the other engines.
    """
    db = database if database is not None else build_database(workload.specs, seed)
    actual = true_join_size(
        workload.query,
        db,
        engine=engine,
        timeout_s=timeout_s,
        deadline=deadline,
        morsel_workers=morsel_workers,
    )
    return _estimate_records(
        workload, algorithms, db, order, check_invariants, actual
    )


@dataclass(frozen=True)
class _Payload:
    """One pool task: everything a worker needs to evaluate workload i."""

    index: int
    workload: GeneratedWorkload
    algorithms: Tuple[AlgorithmSpec, ...]
    seed: int
    check_invariants: bool
    engine: str
    timeout_s: Optional[float] = None
    attempt: int = 0
    fault_plan: Optional[FaultPlan] = None
    morsel_workers: Optional[int] = None

    def fingerprint(self) -> str:
        """Content fingerprint for checkpoint keying (attempt-independent;
        ``morsel_workers`` is also excluded — worker count never changes a
        result, so a resumed sweep may reuse checkpoints across widths)."""
        parts = [
            str(self.index),
            str(self.seed),
            self.engine,
            str(self.check_invariants),
            canonical_query_text(self.workload.query),
            repr(self.workload.specs),
        ]
        parts.extend(repr(spec) for spec in self.algorithms)
        return fingerprint_of(parts)

    def description(self) -> str:
        """Short human-readable name for error messages."""
        return " >< ".join(self.workload.tables)


def _apply_faults(payload: _Payload) -> Optional[Database]:
    """Fire this attempt's injected faults; maybe pre-build the database.

    ``slow`` sleeps (burning any deadline budget), ``crash`` raises
    :class:`InjectedWorkerCrash`, and ``corrupt-cache`` builds the
    payload's database, plants its ground-truth cache entry, and tampers
    with it — so the digest-verification path provably runs.  Returns the
    pre-built database when one was needed, else ``None``.
    """
    if payload.fault_plan is None:
        return None
    database: Optional[Database] = None
    for fault in payload.fault_plan.faults_for(payload.index, payload.attempt):
        if fault.kind == "slow":
            time.sleep(fault.delay_s)
        elif fault.kind == "crash":
            raise InjectedWorkerCrash(
                f"injected crash for payload {payload.index} "
                f"attempt {payload.attempt}"
            )
        elif fault.kind == "corrupt-cache":
            if database is None:
                database = build_database(payload.workload.specs, payload.seed)
            DEFAULT_TRUTH_CACHE.put(database, payload.workload.query, 0)
            DEFAULT_TRUTH_CACHE.corrupt(database, payload.workload.query)
    return database


def _evaluate_one(payload: _Payload) -> Tuple[int, str, object]:
    """Pool worker: evaluate one payload, classifying failures as data.

    Returns ``(index, status, data)`` where status is one of

    * ``"ok"`` — data is the record list;
    * ``"crash"`` — an injected worker crash (retryable);
    * ``"deadline"`` — the ground truth exceeded its budget (retryable,
      degradable): data carries message and elapsed seconds;
    * ``"error"`` — a deterministic library error (not retryable);
    * ``"exception"`` — an unexpected error (retryable: it may be
      environmental).

    Failures travel as *data*, never as raised exceptions, so one bad
    payload cannot poison ``imap_unordered`` for the rest of the batch.
    """
    started = time.perf_counter()
    try:
        database = _apply_faults(payload)
        deadline = (
            Deadline(payload.timeout_s) if payload.timeout_s is not None else None
        )
        records = evaluate_workload(
            payload.workload,
            payload.algorithms,
            seed=payload.seed,
            database=database,
            check_invariants=payload.check_invariants,
            engine=payload.engine,
            deadline=deadline,
            morsel_workers=payload.morsel_workers,
        )
        return (payload.index, "ok", records)
    except InjectedWorkerCrash as exc:
        return (payload.index, "crash", str(exc))
    except DeadlineExceededError as exc:
        data = {"message": str(exc), "elapsed_s": time.perf_counter() - started}
        return (payload.index, "deadline", data)
    except ReproError as exc:
        return (payload.index, "error", str(exc))
    except Exception as exc:  # pool workers must never raise: see docstring
        return (payload.index, "exception", f"{type(exc).__name__}: {exc}")


def _degraded_records(
    payload: _Payload, failure: FailureReport
) -> List[AccuracyRecord]:
    """Estimator-only records for a payload whose ground truth timed out."""
    database = build_database(payload.workload.specs, payload.seed)
    return _estimate_records(
        payload.workload,
        payload.algorithms,
        database,
        None,
        payload.check_invariants,
        None,
        failure=failure,
    )


def _record_to_dict(record: AccuracyRecord) -> Dict[str, object]:
    """JSON-friendly record view for checkpoint lines."""
    data: Dict[str, object] = {
        "algorithm": record.algorithm,
        "estimate": record.estimate,
        "actual": record.actual,
        "degraded": record.degraded,
    }
    if record.failure is not None:
        data["failure"] = record.failure.to_dict()
    return data


def _record_from_dict(data: Dict[str, object]) -> AccuracyRecord:
    """Rebuild a record from a checkpoint line (floats round-trip exactly)."""
    actual = data.get("actual")
    failure_data = data.get("failure")
    return AccuracyRecord(
        algorithm=str(data["algorithm"]),
        estimate=float(data["estimate"]),  # type: ignore[arg-type]
        actual=None if actual is None else int(actual),  # type: ignore[call-overload]
        degraded=bool(data.get("degraded", False)),
        failure=(
            FailureReport.from_dict(failure_data)  # type: ignore[arg-type]
            if isinstance(failure_data, dict)
            else None
        ),
    )


#: Outcome statuses that warrant another attempt.
_RETRYABLE_STATUSES = frozenset(("crash", "deadline", "exception"))


def _resolve_failure(
    payload: _Payload, status: str, data: object, policy: RetryPolicy
) -> List[AccuracyRecord]:
    """Terminal handling for a payload that exhausted its attempts.

    Deadline exhaustion degrades gracefully; everything else raises a
    :class:`WorkloadError` naming the payload.
    """
    attempts = payload.attempt + 1
    if status == "deadline":
        elapsed = 0.0
        message = ""
        if isinstance(data, dict):
            elapsed = float(data.get("elapsed_s", 0.0))
            message = str(data.get("message", ""))
        failure = FailureReport(
            kind="deadline", attempts=attempts, elapsed_s=elapsed, message=message
        )
        return _degraded_records(payload, failure)
    raise WorkloadError(
        f"{status} after {attempts} attempt(s) "
        f"(policy allows {policy.max_attempts}): {data}",
        index=payload.index,
        description=payload.description(),
    )


def _evaluate_serially(
    payloads: Sequence[_Payload], policy: RetryPolicy, base_seed: int
) -> Dict[int, List[AccuracyRecord]]:
    """In-process evaluation with the same retry/degradation semantics."""
    results: Dict[int, List[AccuracyRecord]] = {}
    for payload in payloads:
        current = payload
        while True:
            index, status, data = _evaluate_one(current)
            if status == "ok":
                results[index] = data  # type: ignore[assignment]
                break
            if (
                status in _RETRYABLE_STATUSES
                and current.attempt + 1 < policy.max_attempts
            ):
                time.sleep(
                    policy.delay_s(current.attempt, seed=base_seed + index)
                )
                current = replace(current, attempt=current.attempt + 1)
                continue
            if status == "error":
                raise WorkloadError(
                    str(data),
                    index=current.index,
                    description=current.description(),
                )
            results[index] = _resolve_failure(current, status, data, policy)
            break
    return results


def _evaluate_pooled(
    payloads: Sequence[_Payload],
    policy: RetryPolicy,
    base_seed: int,
    workers: int,
) -> Dict[int, List[AccuracyRecord]]:
    """Pool evaluation: ``imap_unordered``, per-payload retries, re-spawn.

    Worker failures come back as classified statuses and are retried on
    the next round; a pool that dies outright (a genuinely killed worker
    process) is replaced by a fresh pool, with the unfinished payloads
    charged one attempt.
    """
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    results: Dict[int, List[AccuracyRecord]] = {}
    pending = list(payloads)
    while pending:
        outcomes: List[Tuple[int, str, object]] = []
        pool_error: Optional[BaseException] = None
        pool = context.Pool(processes=min(workers, len(pending)))
        try:
            for outcome in pool.imap_unordered(_evaluate_one, pending):
                outcomes.append(outcome)
        except Exception as exc:  # the pool itself died; re-spawn below
            pool_error = exc
        finally:
            # terminate() alone (what ``with Pool(...)`` does) leaves the
            # old workers unreaped; join() collects them before any
            # re-spawn so a crash-retry loop cannot pile up zombies.
            pool.terminate()
            pool.join()
        retries: List[_Payload] = []
        by_index = {payload.index: payload for payload in pending}
        for index, status, data in outcomes:
            payload = by_index.pop(index)
            if status == "ok":
                results[index] = data  # type: ignore[assignment]
            elif (
                status in _RETRYABLE_STATUSES
                and payload.attempt + 1 < policy.max_attempts
            ):
                retries.append(replace(payload, attempt=payload.attempt + 1))
            elif status == "error":
                raise WorkloadError(
                    str(data),
                    index=payload.index,
                    description=payload.description(),
                )
            else:
                results[index] = _resolve_failure(payload, status, data, policy)
        # Payloads the dead pool never reported: charge one attempt each.
        for payload in by_index.values():
            if payload.attempt + 1 < policy.max_attempts:
                retries.append(replace(payload, attempt=payload.attempt + 1))
            else:
                raise WorkloadError(
                    f"worker pool failed after {payload.attempt + 1} "
                    f"attempt(s): {pool_error}",
                    index=payload.index,
                    description=payload.description(),
                )
        if retries:
            # One deterministic backoff per round: the slowest payload's.
            delay = max(
                policy.delay_s(p.attempt - 1, seed=base_seed + p.index)
                for p in retries
            )
            time.sleep(delay)
        pending = retries
    return results


def evaluate_workloads(  # els: hot=yes
    workloads: Sequence[GeneratedWorkload],
    algorithms: Iterable[AlgorithmSpec] = PAPER_ALGORITHMS,
    seed: int = 0,
    workers: int = 1,
    check_invariants: bool = False,
    engine: str = "columnar",
    timeout_s: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint_path: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    morsel_workers: Optional[int] = None,
) -> List[List[AccuracyRecord]]:
    """Evaluate many workloads, optionally across a process pool.

    Workload ``i`` always generates its database from seed ``seed + i``
    and the result list preserves input order, so the output is a pure
    function of ``(workloads, algorithms, seed)`` — worker count only
    changes wall-clock time, never a number.  Each worker process holds
    its own ground-truth cache; caching still helps within a worker (e.g.
    repeated queries inside one workload list) but is not shared across
    processes.

    The sweep survives faults: transient per-payload failures are retried
    under ``retry`` (with seeded-deterministic backoff), a payload whose
    ground truth exceeds ``timeout_s`` after all attempts degrades to
    estimator-only records (``degraded=True``) instead of aborting, and
    deterministic failures surface as :class:`WorkloadError` naming the
    payload index and workload.

    Args:
        workloads: The workloads to evaluate, in order.
        algorithms: Estimation setups compared for each workload.
        seed: Base data-generation seed.
        workers: Process count; ``<= 1`` evaluates serially in-process.
        check_invariants: As in :func:`evaluate_workload`.
        engine: Ground-truth execution engine.
        timeout_s: Per-payload wall-clock budget for ground truth.
        retry: Attempt/backoff schedule; defaults to
            :data:`~repro.resilience.retry.DEFAULT_RETRY_POLICY`.
        checkpoint_path: JSONL file recording completed payloads; payloads
            whose fingerprint is already present are skipped on restart.
        fault_plan: Injected fault schedule for chaos testing; when
            ``None``, the ``REPRO_FAULT_PLAN`` environment variable is
            consulted.
        morsel_workers: Fan-out width for the ``"parallel"`` ground-truth
            engine (``None`` means one per CPU); ignored by the other
            engines and excluded from checkpoint fingerprints.
    """
    validate_engine(engine)
    specs = tuple(algorithms)
    policy = retry if retry is not None else DEFAULT_RETRY_POLICY
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    payloads = [
        _Payload(
            index=index,
            workload=workload,
            algorithms=specs,
            seed=seed + index,
            check_invariants=check_invariants,
            engine=engine,
            timeout_s=timeout_s,
            fault_plan=plan,
            morsel_workers=morsel_workers,
        )
        for index, workload in enumerate(workloads)
    ]

    results: Dict[int, List[AccuracyRecord]] = {}
    pending: List[_Payload] = payloads
    if checkpoint_path is not None:
        # Each payload fingerprint digests the full workload spec; compute
        # them once up front rather than once per resume lookup plus once
        # per checkpoint append.
        fingerprints = {
            payload.index: payload.fingerprint() for payload in payloads
        }
        completed = load_checkpoint(checkpoint_path)
        pending = []
        for payload in payloads:
            entry = completed.get(fingerprints[payload.index])
            if entry is None:
                pending.append(payload)
            else:
                results[payload.index] = [
                    _record_from_dict(r)  # type: ignore[arg-type]
                    for r in entry["records"]  # type: ignore[index]
                ]

    if workers <= 1 or len(pending) <= 1:
        fresh = _evaluate_serially(pending, policy, seed)
    else:
        fresh = _evaluate_pooled(pending, policy, seed, workers)
    if checkpoint_path is not None:
        for payload in pending:
            records = fresh[payload.index]
            append_checkpoint(
                checkpoint_path,
                fingerprints[payload.index],
                payload.index,
                [_record_to_dict(r) for r in records],
            )
    results.update(fresh)
    return [results[index] for index in range(len(payloads))]
