"""Error propagation with the number of joins (after Ioannidis &
Christodoulakis [4], which the paper cites for single-equivalence-class
queries).

Chain queries put every join column into one equivalence class — exactly
the setting where Rule M multiplies redundant selectivities and its error
explodes multiplicatively with each added join, while Rule LS tracks the
closed form.  This harness quantifies that: for random chains of increasing
length it records, per algorithm and per prefix length ``k``, the error of
the estimated k-table result size against the executed truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.estimator import JoinSizeEstimator
from ..workloads.generator import build_database
from ..workloads.queries import chain_workload
from .harness import PAPER_ALGORITHMS, AlgorithmSpec, prefix_query
from .metrics import ErrorSummary, log10_ratio, q_error, summarize_errors
from .truth import true_join_size

__all__ = ["PropagationPoint", "run_error_propagation"]


@dataclass(frozen=True)
class PropagationPoint:
    """Aggregated error for one (algorithm, number of joins) cell."""

    algorithm: str
    num_joins: int
    q_errors: ErrorSummary
    mean_log10_ratio: float


def run_error_propagation(
    max_tables: int = 6,
    trials: int = 10,
    seed: int = 0,
    algorithms: Iterable[AlgorithmSpec] = PAPER_ALGORITHMS,
    min_rows: int = 100,
    max_rows: int = 1000,
    local_predicate_probability: float = 0.3,
) -> List[PropagationPoint]:
    """Measure estimation error as chains grow from 2 to ``max_tables``.

    Each trial draws a fresh random chain (sizes, cardinalities, local
    predicates); every prefix of the chain is executed for its true size
    and estimated by every algorithm.  Errors are aggregated per
    (algorithm, prefix length).

    Returns points ordered by algorithm then join count, ready to print as
    the X-ERR benchmark table.
    """
    algorithm_list = list(algorithms)
    rng = random.Random(seed)
    cells: Dict[Tuple[str, int], List[float]] = {}
    logs: Dict[Tuple[str, int], List[float]] = {}

    for trial in range(trials):
        workload = chain_workload(
            max_tables,
            rng,
            min_rows=min_rows,
            max_rows=max_rows,
            local_predicate_probability=local_predicate_probability,
        )
        database = build_database(workload.specs, seed=seed * 1000 + trial)
        order = list(workload.query.tables)
        estimators = {
            spec.name: JoinSizeEstimator(
                workload.query, database.catalog, spec.config, spec.apply_closure
            )
            for spec in algorithm_list
        }
        for k in range(2, max_tables + 1):
            prefix = order[:k]
            actual = true_join_size(prefix_query(workload.query, prefix), database)
            for spec in algorithm_list:
                estimate = estimators[spec.name].estimate(prefix)
                key = (spec.name, k - 1)  # k tables = k-1 joins
                cells.setdefault(key, []).append(q_error(estimate, actual))
                logs.setdefault(key, []).append(log10_ratio(estimate, actual))

    points: List[PropagationPoint] = []
    for spec in algorithm_list:
        for k in range(1, max_tables):
            key = (spec.name, k)
            if key not in cells:
                continue
            points.append(
                PropagationPoint(
                    algorithm=spec.name,
                    num_joins=k,
                    q_errors=summarize_errors(cells[key]),
                    mean_log10_ratio=sum(logs[key]) / len(logs[key]),
                )
            )
    return points
