"""Physical operators: scans, filters, projections, and three join methods.

The operator set mirrors the repertoire the paper's experiment enabled:
Nested Loops and Sort Merge joins (a hash join is included as a modern
extension, off by default in the optimizer).  Operators follow a simple
materializing iterator model — each ``rows()`` call produces the full
output — which is all the benchmark harness needs and keeps row-at-a-time
Python overhead low.

Every operator updates an :class:`~repro.execution.metrics.OperatorStats`:
rows in/out, key or predicate comparisons, and simulated page I/O (scans
charge their table pages; sort-merge charges sort passes; nested loops
charges repeated inner scans when the inner does not fit in the buffer).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..sql.predicates import ColumnRef, ComparisonPredicate
from .layout import Layout, compile_conjunction, split_join_condition
from .metrics import ExecutionMetrics, OperatorStats

__all__ = [
    "Operator",
    "TableScanOp",
    "FilterOp",
    "ProjectOp",
    "NestedLoopJoinOp",
    "SortMergeJoinOp",
    "HashJoinOp",
]

Row = Tuple


def _pages(rows: int, row_width: int, page_size: int) -> float:
    """Pages occupied by ``rows`` of the given width (0 rows -> 0 pages)."""
    if rows <= 0:
        return 0.0
    return math.ceil(rows * max(1, row_width) / max(1, page_size))


class Operator:
    """Base class: a layout plus a materializing ``rows()`` method."""

    def __init__(self, layout: Layout, stats: OperatorStats) -> None:
        self._layout = layout
        self._stats = stats

    @property
    def layout(self) -> Layout:
        return self._layout

    @property
    def stats(self) -> OperatorStats:
        return self._stats

    def rows(self) -> Sequence[Row]:
        raise NotImplementedError


class TableScanOp(Operator):
    """Sequential scan of a stored table under a relation name.

    The relation name may differ from the base table (alias scans); output
    columns are qualified with the relation name so predicates compiled
    against the query resolve correctly.
    """

    def __init__(
        self,
        relation: str,
        column_names: Sequence[str],
        source_rows: Iterable[Row],
        metrics: ExecutionMetrics,
        pages: float = 0.0,
    ) -> None:
        layout = Layout([ColumnRef(relation, c) for c in column_names])
        super().__init__(layout, metrics.register(f"scan({relation})"))
        self._source_rows = source_rows
        self._pages = pages
        self._deadline = metrics.deadline
        self._materialized: Optional[Tuple[Row, ...]] = None

    def rows(self) -> Sequence[Row]:
        # Materialize once: multi-call plans (e.g. a scan feeding a
        # nested-loop inner that is re-read) must not re-copy the source or
        # double-count the scan's rows and simulated page I/O.  The result
        # is frozen to a tuple so no downstream operator can corrupt the
        # shared materialization.
        if self._materialized is not None:
            return self._materialized
        result = tuple(self._source_rows)
        if self._deadline is not None:
            self._deadline.check(self._stats.label)
            self._deadline.tick(len(result), self._stats.label)
        self._stats.rows_in += len(result)
        self._stats.rows_out += len(result)
        self._stats.pages_read += self._pages
        self._materialized = result
        return result


class FilterOp(Operator):
    """Apply a conjunction of (local) predicates to child rows."""

    def __init__(
        self,
        child: Operator,
        predicates: Sequence[ComparisonPredicate],
        metrics: ExecutionMetrics,
    ) -> None:
        super().__init__(child.layout, metrics.register("filter"))
        self._child = child
        self._predicates = tuple(predicates)
        self._check = compile_conjunction(self._predicates, child.layout)
        self._deadline = metrics.deadline

    def rows(self) -> List[Row]:
        source = self._child.rows()
        if self._deadline is not None:
            self._deadline.check(self._stats.label)
            self._deadline.tick(len(source), self._stats.label)
        self._stats.rows_in += len(source)
        self._stats.comparisons += len(source) * max(1, len(self._predicates))
        result = [row for row in source if self._check(row)]
        self._stats.rows_out += len(result)
        return result


class ProjectOp(Operator):
    """Keep only the named columns, in the given order."""

    def __init__(
        self,
        child: Operator,
        columns: Sequence[ColumnRef],
        metrics: ExecutionMetrics,
    ) -> None:
        super().__init__(Layout(columns), metrics.register("project"))
        self._child = child
        self._positions = [child.layout.position(c) for c in columns]

    def rows(self) -> List[Row]:
        source = self._child.rows()
        self._stats.rows_in += len(source)
        positions = self._positions
        result = [tuple(row[p] for p in positions) for row in source]
        self._stats.rows_out += len(result)
        return result


class _JoinOp(Operator):
    """Shared setup for the three join methods."""

    def __init__(
        self,
        label: str,
        left: Operator,
        right: Operator,
        predicates: Sequence[ComparisonPredicate],
        metrics: ExecutionMetrics,
    ) -> None:
        layout = left.layout.concat(right.layout)
        super().__init__(layout, metrics.register(label))
        self._left = left
        self._right = right
        self._deadline = metrics.deadline
        self._predicates = tuple(predicates)
        condition = split_join_condition(
            self._predicates, left.layout, right.layout
        )
        self._keys = condition.keys
        self._residual = condition.residual
        self._has_residual = condition.has_residual

    def _key_functions(self) -> Tuple[Callable[[Row], object], Callable[[Row], object]]:
        """Left/right key extractors, specialized for single-column keys.

        The common equi-join has exactly one key pair; extracting the bare
        value instead of a 1-tuple skips a tuple allocation per row on the
        hash-build, probe, and sort paths.
        """
        keys = self._keys
        if len(keys) == 1:
            a, b = keys[0]
            return (lambda row: row[a]), (lambda row: row[b])
        left_key = lambda row: tuple(row[a] for a, _ in keys)
        right_key = lambda row: tuple(row[b] for _, b in keys)
        return left_key, right_key


class NestedLoopJoinOp(_JoinOp):
    """Naive tuple-at-a-time nested loops with a materialized inner.

    Simulated I/O: when the inner's pages exceed the buffer, each block of
    the outer re-reads the whole inner — the classic block-nested-loops
    charge that makes a big inner behind a small outer expensive, exactly
    the effect the paper's experiment relies on.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicates: Sequence[ComparisonPredicate],
        metrics: ExecutionMetrics,
        outer_row_width: int = 8,
        inner_row_width: int = 8,
        page_size: int = 4096,
        buffer_pages: int = 64,
    ) -> None:
        super().__init__("nested-loops", left, right, predicates, metrics)
        self._outer_row_width = outer_row_width
        self._inner_row_width = inner_row_width
        self._page_size = page_size
        self._buffer_pages = buffer_pages

    def rows(self) -> List[Row]:
        outer = self._left.rows()
        inner = self._right.rows()
        self._stats.rows_in += len(outer) + len(inner)
        keys = self._keys
        residual = self._residual
        deadline = self._deadline
        if deadline is not None:
            deadline.check(self._stats.label)
        result: List[Row] = []
        comparisons = 0
        # Extract the outer key once per outer row instead of re-extracting
        # it per inner row; tuple equality compares elementwise, so the
        # match semantics are those of the old per-pair key comparison, and
        # a key-less join (pure residual/cross) matches every pair.
        left_key, right_key = self._key_functions() if keys else (None, None)
        for left_row in outer:
            if deadline is not None:
                # One unit per inner-row comparison this outer row costs.
                deadline.tick(max(1, len(inner)), self._stats.label)
            outer_key = left_key(left_row) if left_key is not None else None
            for right_row in inner:
                comparisons += 1
                if (
                    right_key is None or right_key(right_row) == outer_key
                ) and residual(left_row, right_row):
                    result.append(left_row + right_row)
        self._stats.comparisons += comparisons
        self._stats.rows_out += len(result)
        # Block-nested-loops I/O: the inner is re-read once per buffer-full
        # of the outer beyond the first pass that overlaps the outer's read.
        inner_pages = _pages(len(inner), self._inner_row_width, self._page_size)
        outer_pages = _pages(len(outer), self._outer_row_width, self._page_size)
        if inner_pages > self._buffer_pages and outer:
            passes = math.ceil(outer_pages / max(1, self._buffer_pages - 1))
            self._stats.pages_read += inner_pages * max(0, passes - 1)
        return result


class HashJoinOp(_JoinOp):
    """In-memory hash join: build on the right input, probe from the left.

    Requires at least one equi-key.  Included as the modern extension the
    paper's Starburst repertoire did not use; the optimizer only considers
    it when explicitly enabled.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicates: Sequence[ComparisonPredicate],
        metrics: ExecutionMetrics,
    ) -> None:
        super().__init__("hash-join", left, right, predicates, metrics)
        if not self._keys:
            raise ExecutionError("hash join requires at least one equality key")

    def rows(self) -> List[Row]:
        outer = self._left.rows()
        inner = self._right.rows()
        self._stats.rows_in += len(outer) + len(inner)
        left_key, right_key = self._key_functions()
        residual = self._residual
        deadline = self._deadline
        if deadline is not None:
            deadline.check(self._stats.label)
            deadline.tick(len(inner), self._stats.label)
        table: dict = {}
        for right_row in inner:
            table.setdefault(right_key(right_row), []).append(right_row)
        result: List[Row] = []
        comparisons = 0
        for left_row in outer:
            if deadline is not None:
                deadline.tick(1, self._stats.label)
            key = left_key(left_row)
            comparisons += 1
            for right_row in table.get(key, ()):
                comparisons += 1
                if residual(left_row, right_row):
                    result.append(left_row + right_row)
        self._stats.comparisons += comparisons
        self._stats.rows_out += len(result)
        return result


class SortMergeJoinOp(_JoinOp):
    """Sort both inputs on the equi-keys, then merge equal-key groups.

    Requires at least one equi-key.  Simulated I/O charges a two-pass
    external sort on each input (write + read of every page) the way the
    cost model does, so measured and estimated costs share a currency.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicates: Sequence[ComparisonPredicate],
        metrics: ExecutionMetrics,
        left_row_width: int = 8,
        right_row_width: int = 8,
        page_size: int = 4096,
    ) -> None:
        super().__init__("sort-merge", left, right, predicates, metrics)
        if not self._keys:
            raise ExecutionError("sort-merge join requires at least one equality key")
        self._left_row_width = left_row_width
        self._right_row_width = right_row_width
        self._page_size = page_size

    def rows(self) -> List[Row]:
        outer = self._left.rows()
        inner = self._right.rows()
        self._stats.rows_in += len(outer) + len(inner)
        residual = self._residual
        deadline = self._deadline
        if deadline is not None:
            deadline.check(self._stats.label)
            deadline.tick(len(outer) + len(inner), self._stats.label)
        left_key, right_key = self._key_functions()
        outer_sorted = sorted(outer, key=left_key)
        inner_sorted = sorted(inner, key=right_key)
        # Simulated external sort: 2 passes (write runs + read merged).
        left_pages = _pages(len(outer), self._left_row_width, self._page_size)
        right_pages = _pages(len(inner), self._right_row_width, self._page_size)
        self._stats.pages_read += 2.0 * (left_pages + right_pages)

        result: List[Row] = []
        comparisons = 0
        i = j = 0
        n, m = len(outer_sorted), len(inner_sorted)
        while i < n and j < m:
            if deadline is not None:
                deadline.tick(1, self._stats.label)
            lk = left_key(outer_sorted[i])
            rk = right_key(inner_sorted[j])
            comparisons += 1
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                # Gather both equal-key groups and emit their cross product.
                i_end = i
                while i_end < n and left_key(outer_sorted[i_end]) == lk:
                    i_end += 1
                j_end = j
                while j_end < m and right_key(inner_sorted[j_end]) == rk:
                    j_end += 1
                for left_row in outer_sorted[i:i_end]:
                    for right_row in inner_sorted[j:j_end]:
                        comparisons += 1
                        if residual(left_row, right_row):
                            result.append(left_row + right_row)
                i, j = i_end, j_end
        self._stats.comparisons += comparisons
        self._stats.rows_out += len(result)
        return result
