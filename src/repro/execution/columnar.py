"""Columnar vectorized execution path.

The row engine (:mod:`repro.execution.operators`) materializes every
intermediate as a list of Python tuples and pays per-row interpreter
overhead in each operator: tuple allocation per hash key, tuple
concatenation per join output row, closure call per filtered row.  For
*ground truth* — where the answer is almost always a single COUNT(*) —
nearly all of that work is waste.

This module keeps data columnar end to end:

* A :class:`ColumnBlock` is a batch of rows stored as per-column value
  lists under a :class:`~repro.execution.layout.Layout`, with column
  positions resolved through the layout's compiled resolver
  (:meth:`Layout.compile_resolver`).  Blocks are *late-materializing*:
  joins and filters produce index vectors, and a column is gathered only
  when somebody downstream actually reads it.  ``COUNT(*)`` plans never
  build a single output tuple.
* Vectorized scan/filter/project operators run whole-column list
  comprehensions (C-speed loops) instead of per-row closure calls.
* :class:`ColumnarHashJoinOp` builds its hash table on the *smaller*
  input directly from the bare key column — no per-row tuple allocation
  for single-column keys — and emits matching index pairs.

Non-equi residual predicates, nested-loop joins, and sort-merge joins
fall back to the row operators through two invisible bridges
(:class:`RowBridgeOp`, :class:`BlockBridgeOp`) so the two engines share
one source of truth for the hard cases.

Every operator charges the *same* :class:`OperatorStats` counters the row
engine would: rows in/out, comparisons (the row engine's accounting
formulas, not the columnar engine's actual work), and simulated pages.
The differential test suite asserts both engines agree operator by
operator, so benchmark speedups are measured on provably identical work.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..sql.predicates import ColumnRef, ComparisonPredicate, Literal
from .layout import Layout, operator_function, split_join_condition
from .metrics import ExecutionMetrics, OperatorStats
from .operators import Operator

__all__ = [
    "BlockBridgeOp",
    "ColumnBlock",
    "ColumnarFilterOp",
    "ColumnarHashJoinOp",
    "ColumnarOperator",
    "ColumnarProjectOp",
    "ColumnarTableScanOp",
    "GatherBlock",
    "JoinBlock",
    "MaterializedBlock",
    "ProjectBlock",
    "RowBridgeOp",
    "compile_block_predicate",
]

Row = Tuple
Column = Sequence


# ---------------------------------------------------------------------------
# Column blocks: late-materializing columnar batches.
# ---------------------------------------------------------------------------


class ColumnBlock:
    """A batch of rows in columnar form.

    Subclasses implement :meth:`_gather` to produce one column's values;
    the base class caches gathered columns and the tuple materialization,
    so each column is computed at most once per block no matter how many
    operators read it.
    """

    def __init__(self, layout: Layout, num_rows: int) -> None:
        self._layout = layout
        self._num_rows = num_rows
        self._column_cache: Dict[int, Column] = {}
        self._tuples: Optional[Tuple[Row, ...]] = None

    @property
    def layout(self) -> Layout:
        return self._layout

    @property
    def num_rows(self) -> int:  # els: quantity=count
        return self._num_rows

    def column(self, position: int) -> Column:
        """The values of one column, gathered lazily and cached."""
        cached = self._column_cache.get(position)
        if cached is None:
            cached = self._gather(position)
            self._column_cache[position] = cached
        return cached

    def _gather(self, position: int) -> Column:
        raise NotImplementedError

    def tuples(self) -> Tuple[Row, ...]:
        """Materialize the block as row tuples (cached, frozen).

        The materialization is returned as a tuple so callers cannot
        corrupt the cached copy shared by later calls.
        """
        if self._tuples is None:
            columns = [self.column(p) for p in range(len(self._layout))]
            if columns:
                self._tuples = tuple(zip(*columns))
            else:  # pragma: no cover - layouts are never empty in practice
                self._tuples = tuple(() for _ in range(self._num_rows))
        return self._tuples


class MaterializedBlock(ColumnBlock):
    """A block whose columns are already present as value lists."""

    def __init__(self, layout: Layout, columns: Sequence[Column]) -> None:
        if len(columns) != len(layout):
            raise ExecutionError(
                f"{len(columns)} columns do not fit layout of {len(layout)}"
            )
        num_rows = len(columns[0]) if columns else 0
        super().__init__(layout, num_rows)
        for position, values in enumerate(columns):
            self._column_cache[position] = values

    def _gather(self, position: int) -> Column:  # pragma: no cover - all cached
        raise ExecutionError(f"column {position} missing from materialized block")


class GatherBlock(ColumnBlock):
    """A row-subset view of a source block, selected by index vector."""

    def __init__(self, source: ColumnBlock, indices: List[int]) -> None:
        super().__init__(source.layout, len(indices))
        self._source = source
        self._indices = indices

    def _gather(self, position: int) -> Column:
        values = self._source.column(position)
        return [values[i] for i in self._indices]


class ProjectBlock(ColumnBlock):
    """A column-subset (and reorder) view of a source block."""

    def __init__(
        self, source: ColumnBlock, positions: Sequence[int], layout: Layout
    ) -> None:
        super().__init__(layout, source.num_rows)
        self._source = source
        self._positions = tuple(positions)

    def _gather(self, position: int) -> Column:
        return self._source.column(self._positions[position])


class JoinBlock(ColumnBlock):
    """A join output: matched index vectors into the two input blocks.

    Columns are gathered on demand from the side that owns them, so a
    join whose output only feeds the next join's key column gathers
    exactly that one column.
    """

    def __init__(
        self,
        left: ColumnBlock,
        left_indices: List[int],
        right: ColumnBlock,
        right_indices: List[int],
        layout: Layout,
    ) -> None:
        super().__init__(layout, len(left_indices))
        self._left = left
        self._left_indices = left_indices
        self._right = right
        self._right_indices = right_indices
        self._split = len(left.layout)

    def _gather(self, position: int) -> Column:
        if position < self._split:
            values = self._left.column(position)
            return [values[i] for i in self._left_indices]
        values = self._right.column(position - self._split)
        return [values[i] for i in self._right_indices]


# ---------------------------------------------------------------------------
# Vectorized predicate compilation.
# ---------------------------------------------------------------------------


def compile_block_predicate(
    predicate: ComparisonPredicate, layout: Layout
) -> Callable[[ColumnBlock, Optional[List[int]]], List[int]]:
    """Compile one predicate into a vectorized selection function.

    The returned function takes a block and an optional candidate index
    vector (``None`` means all rows) and returns the indices of rows that
    satisfy the predicate.  Column positions are resolved once at compile
    time through the layout's compiled resolver.
    """
    func = operator_function(predicate.op)
    resolve = layout.compile_resolver()
    left_pos = resolve(predicate.left)
    if isinstance(predicate.right, Literal):
        constant = predicate.right.value

        def check_constant(
            block: ColumnBlock, candidates: Optional[List[int]]
        ) -> List[int]:
            values = block.column(left_pos)
            if candidates is None:
                return [i for i, v in enumerate(values) if func(v, constant)]
            return [i for i in candidates if func(values[i], constant)]

        return check_constant
    right_pos = resolve(predicate.right)

    def check_columns(
        block: ColumnBlock, candidates: Optional[List[int]]
    ) -> List[int]:
        left_values = block.column(left_pos)
        right_values = block.column(right_pos)
        if candidates is None:
            return [
                i
                for i, (a, b) in enumerate(zip(left_values, right_values))
                if func(a, b)
            ]
        return [i for i in candidates if func(left_values[i], right_values[i])]

    return check_columns


# ---------------------------------------------------------------------------
# Columnar operators.
# ---------------------------------------------------------------------------


class ColumnarOperator:
    """Base class: a layout, stats, and a cached ``block()`` result.

    ``block()`` executes at most once per operator instance — exactly the
    charge-once semantics the row engine's cached :class:`TableScanOp`
    has — so stats counters are never double-charged by multi-call plans.
    ``rows()`` materializes tuples for interoperability with row-side
    consumers (aggregates, result assembly).
    """

    def __init__(self, layout: Layout, stats: OperatorStats) -> None:
        self._layout = layout
        self._stats = stats
        self._block: Optional[ColumnBlock] = None

    @property
    def layout(self) -> Layout:
        return self._layout

    @property
    def stats(self) -> OperatorStats:
        return self._stats

    def block(self) -> ColumnBlock:
        if self._block is None:
            self._block = self._execute()
        return self._block

    def rows(self) -> Sequence[Row]:
        return self.block().tuples()

    def _execute(self) -> ColumnBlock:
        raise NotImplementedError


class ColumnarTableScanOp(ColumnarOperator):
    """Columnar scan over a table's column value lists.

    The storage layer hands over its cached transpose, so the scan is a
    zero-copy wrap; stats and pages are charged once, mirroring the row
    scan's materialization cache.
    """

    def __init__(
        self,
        relation: str,
        column_names: Sequence[str],
        columns: Sequence[Column],
        metrics: ExecutionMetrics,
        pages: float = 0.0,
    ) -> None:
        layout = Layout([ColumnRef(relation, c) for c in column_names])
        super().__init__(layout, metrics.register(f"scan({relation})"))
        self._columns = tuple(columns)
        self._pages = pages
        self._deadline = metrics.deadline

    def _execute(self) -> ColumnBlock:
        block = MaterializedBlock(self._layout, self._columns)
        if self._deadline is not None:
            self._deadline.check(self._stats.label)
            self._deadline.tick(block.num_rows, self._stats.label)
        self._stats.rows_in += block.num_rows
        self._stats.rows_out += block.num_rows
        self._stats.pages_read += self._pages
        return block


class ColumnarFilterOp(ColumnarOperator):
    """Vectorized conjunction filter producing an index-vector view.

    The first predicate scans whole columns; each further predicate
    narrows the surviving candidate indices.  Charged comparisons follow
    the row engine's formula (``rows_in * max(1, n_predicates)``), not the
    short-circuited work actually done.
    """

    def __init__(
        self,
        child: ColumnarOperator,
        predicates: Sequence[ComparisonPredicate],
        metrics: ExecutionMetrics,
    ) -> None:
        super().__init__(child.layout, metrics.register("filter"))
        self._child = child
        self._predicates = tuple(predicates)
        self._checks = [
            compile_block_predicate(p, child.layout) for p in self._predicates
        ]
        self._deadline = metrics.deadline

    def _execute(self) -> ColumnBlock:
        source = self._child.block()
        if self._deadline is not None:
            self._deadline.check(self._stats.label)
            self._deadline.tick(source.num_rows, self._stats.label)
        self._stats.rows_in += source.num_rows
        self._stats.comparisons += source.num_rows * max(1, len(self._predicates))
        selected: Optional[List[int]] = None
        for check in self._checks:
            selected = check(source, selected)
        if selected is None:  # no predicates: identity
            self._stats.rows_out += source.num_rows
            return source
        self._stats.rows_out += len(selected)
        return GatherBlock(source, selected)


class ColumnarProjectOp(ColumnarOperator):
    """Keep only the named columns, in the given order (a zero-copy view)."""

    def __init__(
        self,
        child: ColumnarOperator,
        columns: Sequence[ColumnRef],
        metrics: ExecutionMetrics,
    ) -> None:
        super().__init__(Layout(columns), metrics.register("project"))
        self._child = child
        resolve = child.layout.compile_resolver()
        self._positions = [resolve(c) for c in columns]

    def _execute(self) -> ColumnBlock:
        source = self._child.block()
        self._stats.rows_in += source.num_rows
        self._stats.rows_out += source.num_rows
        return ProjectBlock(source, self._positions, self._layout)


class ColumnarHashJoinOp(ColumnarOperator):
    """Vectorized equi hash join over bare key columns.

    Builds its hash table on the smaller input (value -> row indices; no
    per-row tuple allocation for single-column keys) and probes with the
    larger, emitting matched index vectors into a late-materializing
    :class:`JoinBlock`.  Charged comparisons reproduce the row engine's
    probe-from-left accounting — one probe per left row plus one per
    candidate — independent of the build direction actually chosen, which
    is sound because without a residual every candidate is an output row.

    Raises:
        ExecutionError: if there is no equality key or a non-key residual
            predicate remains (callers must route those to the row engine).
    """

    def __init__(
        self,
        left: ColumnarOperator,
        right: ColumnarOperator,
        predicates: Sequence[ComparisonPredicate],
        metrics: ExecutionMetrics,
    ) -> None:
        layout = left.layout.concat(right.layout)
        super().__init__(layout, metrics.register("hash-join"))
        self._left = left
        self._right = right
        self._predicates = tuple(predicates)
        condition = split_join_condition(
            self._predicates, left.layout, right.layout
        )
        if not condition.keys:
            raise ExecutionError("hash join requires at least one equality key")
        if condition.has_residual:
            raise ExecutionError(
                "columnar hash join is pure equi-join; residual predicates "
                "must run on the row engine"
            )
        self._keys = condition.keys
        self._deadline = metrics.deadline

    def _key_columns(
        self, left_block: ColumnBlock, right_block: ColumnBlock
    ) -> Tuple[Column, Column]:
        if len(self._keys) == 1:
            a, b = self._keys[0]
            return left_block.column(a), right_block.column(b)
        left_parts = [left_block.column(a) for a, _ in self._keys]
        right_parts = [right_block.column(b) for _, b in self._keys]
        return list(zip(*left_parts)), list(zip(*right_parts))

    def _probe(
        self, build_keys: Column, probe_keys: Column
    ) -> Tuple[List[int], List[int]]:
        """Build on ``build_keys``, probe with ``probe_keys``.

        Returns matched ``(probe_indices, build_indices)`` pairs in probe
        order.  The probe loop stays branch-free per row on the fault-free
        path; under a deadline, a chunked variant ticks the budget every
        :data:`~repro.resilience.deadline.DEFAULT_TICK_INTERVAL`-ish rows
        so unbounded joins stay cancelable.
        """
        table: Dict[object, List[int]] = {}
        setdefault = table.setdefault
        for j, value in enumerate(build_keys):
            setdefault(value, []).append(j)
        deadline = self._deadline
        if deadline is not None:
            deadline.check(self._stats.label)
            deadline.tick(len(build_keys), self._stats.label)
        probe_indices: List[int] = []
        build_indices: List[int] = []
        get = table.get
        if deadline is None:
            for i, value in enumerate(probe_keys):
                matches = get(value)
                if matches:
                    probe_indices += [i] * len(matches)
                    build_indices += matches
        else:
            label = self._stats.label
            for i, value in enumerate(probe_keys):
                deadline.tick(1, label)
                matches = get(value)
                if matches:
                    probe_indices += [i] * len(matches)
                    build_indices += matches
        return probe_indices, build_indices

    def _execute(self) -> ColumnBlock:
        left_block = self._left.block()
        right_block = self._right.block()
        n_left = left_block.num_rows
        n_right = right_block.num_rows
        self._stats.rows_in += n_left + n_right
        left_keys, right_keys = self._key_columns(left_block, right_block)
        if n_right <= n_left:
            # Build on the right (smaller), probe from the left.
            left_indices, right_indices = self._probe(right_keys, left_keys)
        else:
            # Build on the left (smaller), probe from the right.
            right_indices, left_indices = self._probe(left_keys, right_keys)
        matched = len(left_indices)
        self._stats.comparisons += n_left + matched
        self._stats.rows_out += matched
        return JoinBlock(
            left_block, left_indices, right_block, right_indices, self._layout
        )


# ---------------------------------------------------------------------------
# Bridges between the two engines (invisible in metrics).
# ---------------------------------------------------------------------------


class RowBridgeOp(Operator):
    """Presents a columnar operator as a row operator.

    The bridge's stats are *not* registered with the metrics object: it
    moves no rows of its own, so both engines report identical operator
    lists.  Used to feed row-engine joins (nested loops, sort-merge,
    residual hash joins) and aggregates from columnar children.
    """

    def __init__(self, child: ColumnarOperator) -> None:
        super().__init__(child.layout, OperatorStats("bridge(rows)"))
        self._child = child

    def rows(self) -> Sequence[Row]:
        return self._child.rows()


class BlockBridgeOp(ColumnarOperator):
    """Presents a row operator as a columnar operator.

    Transposes the row output into a materialized block (cached, like
    every columnar operator).  Its stats are not registered either — the
    wrapped row operator already accounts for the rows it produced.
    """

    def __init__(self, child: Operator) -> None:
        super().__init__(child.layout, OperatorStats("bridge(block)"))
        self._child = child

    def _execute(self) -> ColumnBlock:
        rows = self._child.rows()
        if rows:
            columns = [list(values) for values in zip(*rows)]
        else:
            columns = [[] for _ in range(len(self._layout))]
        return MaterializedBlock(self._layout, columns)
