"""Execution engine: operators, plan executor, and run-time metrics.

Two engines share one executor surface: the classic row-at-a-time
operators (:mod:`.operators`) and the columnar vectorized path
(:mod:`.columnar`), selected via ``Executor(engine="row"|"columnar")``.
"""

from .aggregate import AggregateFunction, AggregateSpec, HashAggregateOp
from .columnar import (
    BlockBridgeOp,
    ColumnBlock,
    ColumnarFilterOp,
    ColumnarHashJoinOp,
    ColumnarOperator,
    ColumnarProjectOp,
    ColumnarTableScanOp,
    GatherBlock,
    JoinBlock,
    MaterializedBlock,
    ProjectBlock,
    RowBridgeOp,
    compile_block_predicate,
)
from .executor import ENGINES, ExecutionResult, Executor
from .layout import (
    JoinCondition,
    Layout,
    compile_conjunction,
    compile_join_condition,
    compile_predicate,
    operator_function,
    split_join_condition,
)
from .metrics import ExecutionMetrics, OperatorStats
from .operators import (
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    Operator,
    ProjectOp,
    SortMergeJoinOp,
    TableScanOp,
)

__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "BlockBridgeOp",
    "ColumnBlock",
    "ColumnarFilterOp",
    "ColumnarHashJoinOp",
    "ColumnarOperator",
    "ColumnarProjectOp",
    "ColumnarTableScanOp",
    "ENGINES",
    "ExecutionMetrics",
    "ExecutionResult",
    "Executor",
    "FilterOp",
    "GatherBlock",
    "HashAggregateOp",
    "HashJoinOp",
    "JoinBlock",
    "JoinCondition",
    "Layout",
    "MaterializedBlock",
    "NestedLoopJoinOp",
    "Operator",
    "OperatorStats",
    "ProjectBlock",
    "ProjectOp",
    "RowBridgeOp",
    "SortMergeJoinOp",
    "TableScanOp",
    "compile_block_predicate",
    "compile_conjunction",
    "compile_join_condition",
    "compile_predicate",
    "operator_function",
    "split_join_condition",
]
