"""Execution engine: operators, plan executor, and run-time metrics."""

from .aggregate import AggregateFunction, AggregateSpec, HashAggregateOp
from .executor import ExecutionResult, Executor
from .layout import Layout, compile_conjunction, compile_join_condition, compile_predicate
from .metrics import ExecutionMetrics, OperatorStats
from .operators import (
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    Operator,
    ProjectOp,
    SortMergeJoinOp,
    TableScanOp,
)

__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "ExecutionMetrics",
    "ExecutionResult",
    "Executor",
    "FilterOp",
    "HashAggregateOp",
    "HashJoinOp",
    "Layout",
    "NestedLoopJoinOp",
    "Operator",
    "OperatorStats",
    "ProjectOp",
    "SortMergeJoinOp",
    "TableScanOp",
    "compile_conjunction",
    "compile_join_condition",
    "compile_predicate",
]
