"""Execution engine: operators, plan executor, and run-time metrics.

Three engines share one executor surface: the classic row-at-a-time
operators (:mod:`.operators`), the columnar vectorized path
(:mod:`.columnar`), and the morsel-driven parallel tier
(:mod:`.parallel` over :mod:`.shm`), selected via
``Executor(engine="row"|"columnar"|"parallel")``.
"""

from .aggregate import AggregateFunction, AggregateSpec, HashAggregateOp
from .columnar import (
    BlockBridgeOp,
    ColumnBlock,
    ColumnarFilterOp,
    ColumnarHashJoinOp,
    ColumnarOperator,
    ColumnarProjectOp,
    ColumnarTableScanOp,
    GatherBlock,
    JoinBlock,
    MaterializedBlock,
    ProjectBlock,
    RowBridgeOp,
    compile_block_predicate,
)
from .executor import ENGINES, ExecutionResult, Executor, validate_engine
from .layout import (
    JoinCondition,
    Layout,
    compile_conjunction,
    compile_join_condition,
    compile_predicate,
    operator_function,
    split_join_condition,
)
from .metrics import ExecutionMetrics, OperatorStats
from .operators import (
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    Operator,
    ProjectOp,
    SortMergeJoinOp,
    TableScanOp,
)
from .parallel import (
    DEFAULT_MORSEL_ROWS,
    DEFAULT_RADIX_BITS,
    FusedScanFilterOp,
    ParallelHashJoinOp,
    radix_partition,
)
from .shm import ColumnShipment, encode_int64, read_shipment

__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "BlockBridgeOp",
    "ColumnBlock",
    "ColumnShipment",
    "ColumnarFilterOp",
    "ColumnarHashJoinOp",
    "ColumnarOperator",
    "ColumnarProjectOp",
    "ColumnarTableScanOp",
    "DEFAULT_MORSEL_ROWS",
    "DEFAULT_RADIX_BITS",
    "ENGINES",
    "ExecutionMetrics",
    "ExecutionResult",
    "Executor",
    "FilterOp",
    "FusedScanFilterOp",
    "GatherBlock",
    "HashAggregateOp",
    "HashJoinOp",
    "JoinBlock",
    "JoinCondition",
    "Layout",
    "MaterializedBlock",
    "NestedLoopJoinOp",
    "Operator",
    "OperatorStats",
    "ParallelHashJoinOp",
    "ProjectBlock",
    "ProjectOp",
    "RowBridgeOp",
    "SortMergeJoinOp",
    "TableScanOp",
    "compile_block_predicate",
    "compile_conjunction",
    "compile_join_condition",
    "compile_predicate",
    "encode_int64",
    "operator_function",
    "radix_partition",
    "read_shipment",
    "split_join_condition",
    "validate_engine",
]
