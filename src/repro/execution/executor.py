"""Plan execution against the in-memory storage engine.

The executor turns a physical plan from the optimizer into an operator tree
and runs it, returning the *true* result (rows or COUNT) together with
:class:`~repro.execution.metrics.ExecutionMetrics`.  It never looks at the
catalog or any estimate, so measured result sizes and times are honest
ground truth for the estimators — this separation is what lets the
benchmark tables print "estimated vs actual" columns.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ExecutionError, InvalidEngineError
from ..optimizer.plans import JoinMethod, JoinPlan, PlanNode, ScanPlan
from ..resilience.deadline import Deadline
from ..sql.predicates import ColumnRef
from ..sql.query import Projection
from ..storage.database import Database
from .columnar import (
    BlockBridgeOp,
    ColumnarFilterOp,
    ColumnarHashJoinOp,
    ColumnarOperator,
    ColumnarProjectOp,
    ColumnarTableScanOp,
    RowBridgeOp,
)
from .layout import split_join_condition
from .metrics import ExecutionMetrics
from .operators import (
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    Operator,
    ProjectOp,
    SortMergeJoinOp,
    TableScanOp,
)
from .parallel import DEFAULT_MORSEL_ROWS, FusedScanFilterOp, ParallelHashJoinOp

__all__ = ["ENGINES", "ExecutionResult", "Executor", "validate_engine"]

Row = Tuple

#: The execution engines: classic row-at-a-time, columnar vectorized, and
#: morsel-parallel columnar (:mod:`repro.execution.parallel`).
ENGINES = ("row", "columnar", "parallel")


def validate_engine(engine: str) -> str:
    """Return ``engine`` if it names a known execution engine.

    Raises:
        InvalidEngineError: structured rejection carrying the valid
            choices, raised at configuration time — not deep inside
            operator construction.
    """
    if engine not in ENGINES:
        raise InvalidEngineError(engine, ENGINES)
    return engine


@dataclass
class ExecutionResult:
    """Output of one plan execution."""

    rows: List[Row]
    columns: Tuple[ColumnRef, ...]
    count: int
    metrics: ExecutionMetrics

    @property
    def wall_seconds(self) -> float:
        return self.metrics.wall_seconds


class Executor:
    """Executes physical plans against a :class:`Database`.

    Args:
        database: Stored tables (must contain every base table any plan
            references).
        page_size: Page size used for the *simulated* I/O counters; has no
            effect on results.
        buffer_pages: Buffer pool size for the nested-loops I/O simulation.
        engine: ``"row"`` for the classic tuple-at-a-time operators,
            ``"columnar"`` for the vectorized engine
            (:mod:`repro.execution.columnar`), ``"parallel"`` for the
            morsel-driven tier (:mod:`repro.execution.parallel`).  All
            three produce identical row multisets, counts, and operator
            statistics; the columnar engine is several times faster than
            row on COUNT(*) ground truths, and the parallel engine adds
            index/fused/fan-out probe strategies on top of columnar.
        deadline: Optional cooperative cancellation budget
            (:class:`~repro.resilience.deadline.Deadline`).  Operators
            check it as rows flow; an expired budget aborts the run with
            :class:`~repro.errors.DeadlineExceededError`.
        morsel_workers: Process fan-out width for the parallel engine
            (``None`` means one worker per CPU).  Ignored by the row and
            columnar engines.
        morsel_rows: Rows per morsel for the parallel engine's scheduling,
            deadline ticks, and fan-out tasks.
    """

    def __init__(
        self,
        database: Database,
        page_size: int = 4096,
        buffer_pages: int = 64,
        engine: str = "row",
        deadline: Optional[Deadline] = None,
        morsel_workers: Optional[int] = None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
    ) -> None:
        self._engine = validate_engine(engine)
        if morsel_workers is None:
            morsel_workers = os.cpu_count() or 1
        if morsel_workers < 1:
            raise ExecutionError(
                f"morsel_workers must be at least 1, got {morsel_workers}"
            )
        self._database = database
        self._page_size = page_size
        self._buffer_pages = buffer_pages
        self._deadline = deadline
        self._morsel_workers = morsel_workers
        self._morsel_rows = morsel_rows

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def morsel_workers(self) -> int:
        return self._morsel_workers

    def execute(
        self, plan: PlanNode, projection: Optional[Projection] = None
    ) -> ExecutionResult:
        """Run a plan, applying the projection at the top.

        Supports all three projection shapes: column lists (project),
        ``COUNT(*)`` (count only), and aggregate lists with optional GROUP
        BY (hash aggregation).  For aggregate projections, ``count`` is
        the number of *input* rows that reached the aggregate — the join's
        cardinality, which is what estimation experiments compare against.
        """
        metrics = ExecutionMetrics(deadline=self._deadline)
        started = time.perf_counter()
        if self._engine == "columnar":
            return self._execute_columnar(plan, projection, metrics, started)
        if self._engine == "parallel":
            return self._execute_parallel(plan, projection, metrics, started)
        root = self._build(plan, metrics)
        if projection is not None and projection.aggregates:
            root = self._build_aggregate(root, projection, metrics)
            rows = root.rows()
            metrics.wall_seconds = time.perf_counter() - started
            count = root.stats.rows_in
            return ExecutionResult(
                rows=rows, columns=root.layout.columns, count=count, metrics=metrics
            )
        if projection is not None and projection.columns:
            root = ProjectOp(root, projection.columns, metrics)
        # Operators may hand back their frozen materialization; the result
        # contract is a list the caller owns.
        rows = list(root.rows())
        metrics.wall_seconds = time.perf_counter() - started
        count = len(rows)
        if projection is not None and projection.count_star:
            rows = []
        return ExecutionResult(
            rows=rows, columns=root.layout.columns, count=count, metrics=metrics
        )

    def _build_aggregate(
        self, root: Operator, projection: Projection, metrics: ExecutionMetrics
    ) -> Operator:
        from .aggregate import AggregateFunction, AggregateSpec, HashAggregateOp

        specs = [
            AggregateSpec(AggregateFunction(a.function), a.column)
            for a in projection.aggregates
        ]
        return HashAggregateOp(root, projection.group_by, specs, metrics)

    def count(self, plan: PlanNode) -> ExecutionResult:
        """Run a plan as ``SELECT COUNT(*)``."""
        return self.execute(plan, Projection(count_star=True))

    # -- columnar engine -------------------------------------------------

    def _execute_columnar(
        self,
        plan: PlanNode,
        projection: Optional[Projection],
        metrics: ExecutionMetrics,
        started: float,
        build: Optional[Callable[[PlanNode, ExecutionMetrics], ColumnarOperator]] = None,
    ) -> ExecutionResult:
        if build is None:
            build = self._build_columnar
        root = build(plan, metrics)
        if projection is not None and projection.aggregates:
            # Aggregation runs on the row operator (one implementation of
            # aggregate semantics); the bridge is invisible in metrics.
            agg = self._build_aggregate(RowBridgeOp(root), projection, metrics)
            rows = agg.rows()
            metrics.wall_seconds = time.perf_counter() - started
            count = agg.stats.rows_in
            return ExecutionResult(
                rows=rows, columns=agg.layout.columns, count=count, metrics=metrics
            )
        if projection is not None and projection.columns:
            root = ColumnarProjectOp(root, projection.columns, metrics)
        block = root.block()
        if projection is not None and projection.count_star:
            # The COUNT(*) fast path: the count is the root block's row
            # count — no output tuple is ever materialized.
            metrics.wall_seconds = time.perf_counter() - started
            return ExecutionResult(
                rows=[],
                columns=root.layout.columns,
                count=block.num_rows,
                metrics=metrics,
            )
        # tuples() is the block's frozen materialization; the result
        # contract is a list the caller owns.
        rows = list(block.tuples())
        metrics.wall_seconds = time.perf_counter() - started
        return ExecutionResult(
            rows=rows, columns=root.layout.columns, count=len(rows), metrics=metrics
        )

    def _build_columnar(
        self, plan: PlanNode, metrics: ExecutionMetrics
    ) -> ColumnarOperator:
        if isinstance(plan, ScanPlan):
            return self._build_columnar_scan(plan, metrics)
        if isinstance(plan, JoinPlan):
            return self._build_columnar_join(plan, metrics)
        raise ExecutionError(f"unknown plan node {plan!r}")

    def _build_columnar_scan(
        self, plan: ScanPlan, metrics: ExecutionMetrics
    ) -> ColumnarOperator:
        table = self._database.table(plan.base_table)
        pages = _page_count(
            table.row_count, table.schema.row_width_bytes, self._page_size
        )
        scan: ColumnarOperator = ColumnarTableScanOp(
            relation=plan.relation,
            column_names=table.schema.column_names,
            columns=table.columns(),
            metrics=metrics,
            pages=pages,
        )
        if plan.local_predicates:
            scan = ColumnarFilterOp(scan, plan.local_predicates, metrics)
        return scan

    def _build_columnar_join(
        self, plan: JoinPlan, metrics: ExecutionMetrics
    ) -> ColumnarOperator:
        left = self._build_columnar(plan.left, metrics)
        right = self._build_columnar(plan.right, metrics)
        if plan.method is JoinMethod.HASH:
            condition = split_join_condition(
                plan.predicates, left.layout, right.layout
            )
            if condition.keys and not condition.has_residual:
                return ColumnarHashJoinOp(left, right, plan.predicates, metrics)
        # Fallback: nested loops, sort-merge, and hash joins with non-equi
        # residuals run on the row operators between invisible bridges.
        row_join = self._join_operator(
            plan, RowBridgeOp(left), RowBridgeOp(right), metrics
        )
        return BlockBridgeOp(row_join)

    # -- parallel engine -------------------------------------------------

    def _execute_parallel(
        self,
        plan: PlanNode,
        projection: Optional[Projection],
        metrics: ExecutionMetrics,
        started: float,
    ) -> ExecutionResult:
        if (
            isinstance(plan, ScanPlan)
            and projection is not None
            and projection.columns
            and not projection.aggregates
        ):
            # Single-table plans fuse the whole scan -> filter -> project
            # chain into one morsel-streaming operator.
            root = self._build_parallel_scan(
                plan, metrics, project_columns=projection.columns
            )
            rows = list(root.block().tuples())
            metrics.wall_seconds = time.perf_counter() - started
            return ExecutionResult(
                rows=rows,
                columns=root.layout.columns,
                count=len(rows),
                metrics=metrics,
            )
        return self._execute_columnar(
            plan, projection, metrics, started, build=self._build_parallel
        )

    def _build_parallel(
        self, plan: PlanNode, metrics: ExecutionMetrics
    ) -> ColumnarOperator:
        if isinstance(plan, ScanPlan):
            return self._build_parallel_scan(plan, metrics)
        if isinstance(plan, JoinPlan):
            return self._build_parallel_join(plan, metrics)
        raise ExecutionError(f"unknown plan node {plan!r}")

    def _build_parallel_scan(
        self,
        plan: ScanPlan,
        metrics: ExecutionMetrics,
        project_columns: Optional[Sequence[ColumnRef]] = None,
    ) -> ColumnarOperator:
        table = self._database.table(plan.base_table)
        pages = _page_count(
            table.row_count, table.schema.row_width_bytes, self._page_size
        )
        return FusedScanFilterOp(
            relation=plan.relation,
            table=table,
            metrics=metrics,
            pages=pages,
            predicates=plan.local_predicates,
            project_columns=project_columns,
            morsel_rows=self._morsel_rows,
        )

    def _build_parallel_join(
        self, plan: JoinPlan, metrics: ExecutionMetrics
    ) -> ColumnarOperator:
        left = self._build_parallel(plan.left, metrics)
        right = self._build_parallel(plan.right, metrics)
        if plan.method is JoinMethod.HASH:
            condition = split_join_condition(
                plan.predicates, left.layout, right.layout
            )
            if condition.keys and not condition.has_residual:
                return ParallelHashJoinOp(
                    left,
                    right,
                    plan.predicates,
                    metrics,
                    morsel_workers=self._morsel_workers,
                    morsel_rows=self._morsel_rows,
                )
        # Same fallback as the columnar engine: the row operators are the
        # single source of truth for non-equi and non-hash joins.
        row_join = self._join_operator(
            plan, RowBridgeOp(left), RowBridgeOp(right), metrics
        )
        return BlockBridgeOp(row_join)

    # -- internals -------------------------------------------------------

    def _build(self, plan: PlanNode, metrics: ExecutionMetrics) -> Operator:
        if isinstance(plan, ScanPlan):
            return self._build_scan(plan, metrics)
        if isinstance(plan, JoinPlan):
            return self._build_join(plan, metrics)
        raise ExecutionError(f"unknown plan node {plan!r}")

    def _build_scan(self, plan: ScanPlan, metrics: ExecutionMetrics) -> Operator:
        table = self._database.table(plan.base_table)
        pages = _page_count(
            table.row_count, table.schema.row_width_bytes, self._page_size
        )
        scan: Operator = TableScanOp(
            relation=plan.relation,
            column_names=table.schema.column_names,
            source_rows=table.rows(),
            metrics=metrics,
            pages=pages,
        )
        if plan.local_predicates:
            scan = FilterOp(scan, plan.local_predicates, metrics)
        return scan

    def _build_join(self, plan: JoinPlan, metrics: ExecutionMetrics) -> Operator:
        left = self._build(plan.left, metrics)
        right = self._build(plan.right, metrics)
        return self._join_operator(plan, left, right, metrics)

    def _join_operator(
        self,
        plan: JoinPlan,
        left: Operator,
        right: Operator,
        metrics: ExecutionMetrics,
    ) -> Operator:
        if plan.method is JoinMethod.NESTED_LOOPS:
            return NestedLoopJoinOp(
                left,
                right,
                plan.predicates,
                metrics,
                outer_row_width=plan.left.row_width,
                inner_row_width=plan.right.row_width,
                page_size=self._page_size,
                buffer_pages=self._buffer_pages,
            )
        if plan.method is JoinMethod.SORT_MERGE:
            return SortMergeJoinOp(
                left,
                right,
                plan.predicates,
                metrics,
                left_row_width=plan.left.row_width,
                right_row_width=plan.right.row_width,
                page_size=self._page_size,
            )
        if plan.method is JoinMethod.HASH:
            return HashJoinOp(left, right, plan.predicates, metrics)
        raise ExecutionError(f"unknown join method {plan.method!r}")


def _page_count(rows: int, row_width: int, page_size: int) -> float:
    if rows <= 0:
        return 0.0
    per_page = max(1, page_size // max(1, row_width))
    return -(-rows // per_page)  # ceiling division
