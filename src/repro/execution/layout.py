"""Row layouts and compiled predicate evaluation for the executor.

A :class:`Layout` names the columns of an operator's output rows (as fully
qualified :class:`~repro.sql.predicates.ColumnRef`) and maps them to tuple
positions.  Predicates are compiled once per operator into closures over
those positions, so the per-row evaluation cost is a couple of tuple
indexing operations rather than repeated dictionary lookups.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import ExecutionError
from ..sql.predicates import ColumnRef, ComparisonPredicate, Literal, Op

__all__ = [
    "JoinCondition",
    "Layout",
    "compile_predicate",
    "compile_conjunction",
    "compile_join_condition",
    "operator_function",
    "split_join_condition",
]

Row = Tuple


class Layout:
    """An ordered list of fully qualified columns with O(1) position lookup."""

    def __init__(self, columns: Sequence[ColumnRef]) -> None:
        self._columns = tuple(columns)
        self._index: Dict[ColumnRef, int] = {}
        for position, column in enumerate(self._columns):
            if column in self._index:
                raise ExecutionError(f"duplicate column {column} in layout")
            self._index[column] = position

    @property
    def columns(self) -> Tuple[ColumnRef, ...]:
        return self._columns

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, column: ColumnRef) -> bool:
        return column in self._index

    def position(self, column: ColumnRef) -> int:
        if column not in self._index:
            raise ExecutionError(f"column {column} is not in layout {self._columns}")
        return self._index[column]

    def concat(self, other: "Layout") -> "Layout":
        """The layout of a join output: left columns then right columns."""
        return Layout(self._columns + other.columns)

    def compile_resolver(self) -> Callable[[ColumnRef], int]:
        """A compiled column-index resolver: ``ColumnRef -> position``.

        Binds the position table into a closure once, so hot code (the
        columnar engine resolves every predicate and join-key column
        through this) pays a single dict lookup per resolution with no
        attribute traffic and a uniform error path.
        """
        index = dict(self._index)
        columns = self._columns

        def resolve(column: ColumnRef) -> int:
            try:
                return index[column]
            except KeyError:
                raise ExecutionError(
                    f"column {column} is not in layout {columns}"
                ) from None

        return resolve

    def __repr__(self) -> str:
        return f"Layout({', '.join(str(c) for c in self._columns)})"


_OPERATOR_FUNCS = {
    Op.EQ: lambda a, b: a == b,
    Op.NE: lambda a, b: a != b,
    Op.LT: lambda a, b: a < b,
    Op.LE: lambda a, b: a <= b,
    Op.GT: lambda a, b: a > b,
    Op.GE: lambda a, b: a >= b,
}


def operator_function(op: Op) -> Callable[[object, object], bool]:
    """The two-argument comparison function for a predicate operator."""
    return _OPERATOR_FUNCS[op]


def compile_predicate(
    predicate: ComparisonPredicate, layout: Layout
) -> Callable[[Row], bool]:
    """Compile a predicate into a closure over one row layout.

    Both operands must be resolvable in the layout (single-relation rows or
    already-joined rows).
    """
    func = _OPERATOR_FUNCS[predicate.op]
    left_pos = layout.position(predicate.left)
    if isinstance(predicate.right, Literal):
        constant = predicate.right.value
        return lambda row: func(row[left_pos], constant)
    right_pos = layout.position(predicate.right)
    return lambda row: func(row[left_pos], row[right_pos])


def compile_conjunction(
    predicates: Sequence[ComparisonPredicate], layout: Layout
) -> Callable[[Row], bool]:
    """Compile a conjunction of predicates into a single closure."""
    compiled = [compile_predicate(p, layout) for p in predicates]
    if not compiled:
        return lambda row: True
    if len(compiled) == 1:
        return compiled[0]

    def evaluate(row: Row) -> bool:
        return all(check(row) for check in compiled)

    return evaluate


class JoinCondition:
    """A compiled join condition: equi-key positions plus residual check.

    Attributes:
        keys: (left-position, right-position) pairs of cross-input equality
            predicates — the hash/merge keys.
        residual: Evaluates every non-key predicate given the left and
            right rows separately (always-true when ``has_residual`` is
            False).
        has_residual: Whether any non-key predicate exists.  The columnar
            engine uses this to decide between the vectorized hash join
            (pure equi-join) and the row-engine fallback.
    """

    __slots__ = ("keys", "residual", "has_residual")

    def __init__(
        self,
        keys: List[Tuple[int, int]],
        residual: Callable[[Row, Row], bool],
        has_residual: bool,
    ) -> None:
        self.keys = keys
        self.residual = residual
        self.has_residual = has_residual


def compile_join_condition(
    predicates: Sequence[ComparisonPredicate],
    left: Layout,
    right: Layout,
) -> Tuple[
    List[Tuple[int, int]],
    Callable[[Row, Row], bool],
]:
    """Split join predicates into equi-key positions and a residual check.

    Returns:
        A pair ``(keys, residual)``: ``keys`` is a list of (left-position,
        right-position) pairs for equality predicates with one side in each
        input — the hash/merge keys; ``residual`` evaluates every remaining
        predicate given the left row and right row separately (so the
        operators can check it before materializing the concatenated row).

    Raises:
        ExecutionError: if a predicate references columns outside the two
            inputs.
    """
    condition = split_join_condition(predicates, left, right)
    return condition.keys, condition.residual


def split_join_condition(  # els: hot=no
    predicates: Sequence[ComparisonPredicate],
    left: Layout,
    right: Layout,
) -> JoinCondition:
    """Like :func:`compile_join_condition`, exposing residual presence.

    Pinned cold (``hot=no``): this runs once per operator construction to
    *build* the per-predicate row closures; only the closures themselves
    run per row, so the lambda allocations here are intentional.

    Raises:
        ExecutionError: if a predicate references columns outside the two
            inputs.
    """
    keys: List[Tuple[int, int]] = []
    residual_parts: List[Callable[[Row, Row], bool]] = []
    for predicate in predicates:
        right_operand = predicate.right
        if isinstance(right_operand, Literal):
            func = _OPERATOR_FUNCS[predicate.op]
            constant = right_operand.value
            if predicate.left in left:
                pos = left.position(predicate.left)
                residual_parts.append(
                    lambda lr, rr, pos=pos, f=func, c=constant: f(lr[pos], c)
                )
            else:
                pos = right.position(predicate.left)
                residual_parts.append(
                    lambda lr, rr, pos=pos, f=func, c=constant: f(rr[pos], c)
                )
            continue
        left_col, right_col = predicate.left, right_operand
        if left_col in left and right_col in right:
            l_pos, r_pos = left.position(left_col), right.position(right_col)
            swapped = False
        elif left_col in right and right_col in left:
            l_pos, r_pos = left.position(right_col), right.position(left_col)
            swapped = True
        elif left_col in left and right_col in left:
            func = _OPERATOR_FUNCS[predicate.op]
            a, b = left.position(left_col), left.position(right_col)
            residual_parts.append(lambda lr, rr, a=a, b=b, f=func: f(lr[a], lr[b]))
            continue
        elif left_col in right and right_col in right:
            func = _OPERATOR_FUNCS[predicate.op]
            a, b = right.position(left_col), right.position(right_col)
            residual_parts.append(lambda lr, rr, a=a, b=b, f=func: f(rr[a], rr[b]))
            continue
        else:
            raise ExecutionError(
                f"join predicate {predicate} references columns outside its inputs"
            )
        if predicate.op is Op.EQ:
            keys.append((l_pos, r_pos))
        else:
            op = predicate.op.flipped if swapped else predicate.op
            func = _OPERATOR_FUNCS[op]
            residual_parts.append(
                lambda lr, rr, a=l_pos, b=r_pos, f=func: f(lr[a], rr[b])
            )

    if residual_parts:
        def residual(left_row: Row, right_row: Row) -> bool:
            return all(part(left_row, right_row) for part in residual_parts)
    else:
        def residual(left_row: Row, right_row: Row) -> bool:
            return True

    return JoinCondition(keys, residual, bool(residual_parts))
