"""Shared-memory column transport for the morsel-parallel engine.

Fanning probe morsels across a process pool is only a win if the column
payloads do not travel through the pickle pipe: pickling a 100k-value
column per task would cost more than the probe itself.  This module ships
columns through :mod:`multiprocessing.shared_memory` instead:

* the parent packs each column as a raw ``int64`` section of one shared
  segment (:func:`encode_int64` — packing doubles as the exactness check:
  a column holding floats or strings is simply not shippable and the
  engine falls back to in-process execution);
* only a tiny :data:`Descriptor` — the segment name plus per-section
  ``(key, offset, count)`` triples — crosses the task pipe;
* workers attach, copy the sections they need into local arrays, and
  detach immediately (:func:`read_shipment`), so no worker ever holds a
  buffer export open across task boundaries.

Lifecycle contract (ELS505): the creating side owns the segment and must
call :meth:`ColumnShipment.destroy` — close *and* unlink — on every path,
normally via ``try``/``finally`` around the fan-out.  The attaching side
(:func:`read_shipment`) closes its handle in a ``finally`` before
returning; it never unlinks, because the parent owns the name.
"""

from __future__ import annotations

from array import array
from multiprocessing import shared_memory
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ExecutionError

__all__ = [
    "ITEM_SIZE",
    "ColumnShipment",
    "Descriptor",
    "encode_int64",
    "read_shipment",
]

#: Bytes per shipped value: every section travels as packed little-endian
#: native ``int64`` (``array('q')``).
ITEM_SIZE = 8

#: What crosses the task pipe instead of column data: the shared-memory
#: segment name plus ``(section key, byte offset, value count)`` triples.
Descriptor = Tuple[str, Tuple[Tuple[str, int, int], ...]]


def encode_int64(values: Sequence) -> Optional[array]:
    """Pack a value sequence as an ``int64`` array, or ``None`` if it can't.

    The array constructor is the exactness check: floats, strings, and
    out-of-range integers all fail to pack, which the parallel join takes
    as "this column cannot travel via shared memory" and keeps the probe
    in-process.  Booleans coerce to 0/1, which is join-safe because
    ``True == 1`` under both hash and equality in every engine.
    """
    try:
        return array("q", values)
    except (TypeError, OverflowError, ValueError):
        return None


class ColumnShipment:
    """Named int64 sections written into one shared-memory segment.

    Created (and owned) by the parent process; workers only ever see the
    picklable :attr:`descriptor`.  The parent must call :meth:`destroy`
    on every path once the fan-out is finished.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        sections: Tuple[Tuple[str, int, int], ...],
    ) -> None:
        self._segment = segment
        self._sections = sections
        self._destroyed = False

    @classmethod
    def create(cls, sections: Dict[str, array]) -> "ColumnShipment":
        """Write the given ``key -> int64 array`` sections into a new segment.

        Raises:
            ExecutionError: if a section is not an ``int64`` array.
        """
        for key, packed in sections.items():
            if not isinstance(packed, array) or packed.typecode != "q":
                raise ExecutionError(
                    f"shipment section {key!r} must be an int64 array"
                )
        total = sum(len(packed) * ITEM_SIZE for packed in sections.values())
        segment = shared_memory.SharedMemory(create=True, size=max(1, total))
        try:
            table = []
            offset = 0
            for key, packed in sections.items():
                data = packed.tobytes()
                segment.buf[offset : offset + len(data)] = data
                table.append((key, offset, len(packed)))
                offset += len(data)
        except BaseException:
            segment.close()
            segment.unlink()
            raise
        return cls(segment, tuple(table))

    @property
    def descriptor(self) -> Descriptor:
        """The picklable handle workers use to attach and read sections."""
        return (self._segment.name, self._sections)

    @property
    def size_bytes(self) -> int:
        """Payload bytes resident in the shared segment."""
        return sum(count * ITEM_SIZE for _, _, count in self._sections)

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent; owner-side teardown)."""
        if self._destroyed:
            return
        self._destroyed = True
        self._segment.close()
        self._segment.unlink()


def read_shipment(descriptor: Descriptor) -> Dict[str, array]:
    """Attach to a shipment, copy every section out, and detach.

    Returns local ``int64`` arrays keyed by section name.  The attach
    handle is closed in a ``finally`` before returning, so callers never
    receive live views into the segment (and the parent can unlink it at
    any time afterwards).

    The attach re-registers the name with the resource tracker (stdlib
    behaviour on POSIX).  Under the ``fork`` start method workers share
    the parent's tracker, whose cache is a set, so the duplicate
    registration is a no-op and the parent's ``unlink`` retires the name
    exactly once; attempting to "fix" the duplicate with an attach-side
    ``unregister`` would instead remove the *parent's* registration.
    """
    name, sections = descriptor
    segment = shared_memory.SharedMemory(name=name)
    try:
        out: Dict[str, array] = {}
        for key, offset, count in sections:
            packed = array("q")
            packed.frombytes(bytes(segment.buf[offset : offset + count * ITEM_SIZE]))
            out[key] = packed
    finally:
        segment.close()
    return out
