"""Morsel-driven parallel execution tier.

The columnar engine (:mod:`repro.execution.columnar`) is single-threaded:
one Python loop probes the whole join input.  This module adds the
``"parallel"`` engine on top of the same block model, organised around
*morsels* — fixed-size row ranges that are the unit of scheduling,
deadline accounting, and fault recovery:

* :class:`FusedScanFilterOp` fuses scan → filter (→ project, for
  single-table plans) into one operator that streams morsels through the
  compiled block predicates, with a cooperative
  :class:`~repro.resilience.deadline.Deadline` tick per morsel and no
  intermediate materialization between the fused stages.
* :class:`ParallelHashJoinOp` is a partitioned hash join.  It keeps the
  columnar engine's build-on-smaller policy and stats accounting, then
  picks the cheapest of three probe strategies:

  1. **Index probe** — when the probe side is a bare table scan and the
     build side is much smaller than the probe, walk the storage layer's
     cached :meth:`~repro.storage.table.Table.value_index` once per
     *distinct build key* instead of once per probe row.
  2. **Fan-out probe** — for huge probes on multi-core machines, radix
     partition the build keys (:func:`radix_partition`), ship both key
     columns through one shared-memory segment
     (:mod:`repro.execution.shm`), and fan probe morsels across a
     ``ProcessPoolExecutor``.  Workers build per-partition hash tables
     lazily and return matched index pairs; the parent reassembles them
     in morsel order, so results are byte-identical to the serial path.
     A worker crash breaks the pool, not the query: the parent re-spawns
     the pool and retries up to :data:`MAX_FANOUT_ATTEMPTS` times before
     surfacing :class:`~repro.errors.WorkloadError`.
  3. **Serial morsel kernel** — everything else: an adaptive two-pass
     loop that prefilters each morsel with a C-level membership pass and
     falls back to the classic per-row loop when the first morsel shows
     the prefilter cannot pay for itself.

Every strategy emits matches as (ascending probe index, build matches in
build-insertion order) — exactly the order the columnar probe loop
produces — and charges the columnar engine's stats formulas, so the
differential suite can assert all three engines agree operator by
operator.

Determinism: the fan-out fault hook (:data:`MORSEL_FAULT_ENV`) is driven
by an explicit ``ordinal:attempt`` spec, never by randomness, so chaos
tests replay exactly.
"""

from __future__ import annotations

import multiprocessing
import os
from array import array
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from functools import lru_cache
from itertools import compress, count
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExecutionError, WorkloadError
from ..sql.predicates import ColumnRef, ComparisonPredicate
from ..storage.table import Table
from .columnar import (
    Column,
    ColumnBlock,
    ColumnarHashJoinOp,
    ColumnarOperator,
    GatherBlock,
    JoinBlock,
    MaterializedBlock,
    ProjectBlock,
    compile_block_predicate,
)
from .layout import Layout
from .metrics import ExecutionMetrics
from .shm import ColumnShipment, Descriptor, encode_int64, read_shipment

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "DEFAULT_RADIX_BITS",
    "FANOUT_MIN_PROBE_ROWS",
    "FusedScanFilterOp",
    "INDEX_FANIN",
    "INDEX_MIN_PROBE_ROWS",
    "MAX_FANOUT_ATTEMPTS",
    "MORSEL_FAULT_ENV",
    "ParallelHashJoinOp",
    "radix_partition",
]

#: Rows per morsel: the unit of scheduling, deadline ticks, and fan-out tasks.
DEFAULT_MORSEL_ROWS = 16384

#: Radix bits for partitioned build tables; 4 bits -> 16 partitions.
DEFAULT_RADIX_BITS = 4

#: Probe sizes below this never fan out: pool spawn plus shared-memory
#: round-trips cost more than probing this few rows in-process.
FANOUT_MIN_PROBE_ROWS = 1 << 17

#: Probe sizes below this never use the index path (index walk overhead
#: beats the plain loop only once the probe side dwarfs the build side).
INDEX_MIN_PROBE_ROWS = 4096

#: Index probe requires ``distinct build keys * INDEX_FANIN <= probe rows``:
#: the probe side must be at least this many times wider than the build
#: side's key domain for per-distinct-key lookups to win.
INDEX_FANIN = 16

#: Pool re-spawn attempts after worker crashes before giving up.
MAX_FANOUT_ATTEMPTS = 3

#: Deterministic fault hook: ``"ordinal:attempt[,ordinal:attempt...]"``
#: crashes the worker running that morsel ordinal on that attempt.
MORSEL_FAULT_ENV = "REPRO_MORSEL_FAULT"

#: Prefilter is abandoned when the first morsel's hit rate exceeds this:
#: on high-match probes the membership pre-pass is pure overhead.
PREFILTER_MAX_HIT_RATE = 0.5


def radix_partition(keys: Sequence[int], bits: int) -> Tuple[array, ...]:
    """Partition row indices by the low ``bits`` of their key values.

    Returns ``2**bits`` index arrays; row ``i`` lands in partition
    ``keys[i] & (2**bits - 1)``.  Partitioning on value bits (not
    ``hash()``) keeps the assignment identical across worker processes
    regardless of ``PYTHONHASHSEED``; Python's ``&`` on negative ints is
    arithmetic modulo ``2**bits``, so negative keys partition fine.

    Raises:
        ExecutionError: if ``bits`` is negative.
    """
    if bits < 0:
        raise ExecutionError(f"radix bits must be non-negative, got {bits}")
    mask = (1 << bits) - 1
    buckets = tuple(array("q") for _ in range(1 << bits))
    for index, value in enumerate(keys):
        buckets[value & mask].append(index)
    return buckets


# ---------------------------------------------------------------------------
# Fused scan -> filter -> project.
# ---------------------------------------------------------------------------


class FusedScanFilterOp(ColumnarOperator):
    """One operator running a scan, its conjunction filter, and (for
    single-table plans) the final projection, morsel at a time.

    The fused stages share one pass: each morsel's candidate indices flow
    straight through the compiled block predicates with a deadline tick
    per morsel, and only the surviving index vector is kept — no
    intermediate block is materialized between scan and filter.  Stats
    parity with the unfused engines is preserved by registering one
    :class:`~repro.execution.metrics.OperatorStats` per *logical*
    operator (``scan(R)``, ``filter``, ``project``) and charging each the
    exact formula its standalone counterpart uses.

    The operator also backs the parallel join's index-probe path: when it
    wraps a bare table scan (no predicates, no projection), it can hand
    out the storage layer's cached value index (:meth:`probe_index`).
    """

    def __init__(
        self,
        relation: str,
        table: Table,
        metrics: ExecutionMetrics,
        pages: float = 0.0,
        predicates: Sequence[ComparisonPredicate] = (),
        project_columns: Optional[Sequence[ColumnRef]] = None,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
    ) -> None:
        self._column_names = table.schema.column_names
        scan_layout = Layout([ColumnRef(relation, c) for c in self._column_names])
        scan_stats = metrics.register(f"scan({relation})")
        super().__init__(scan_layout, scan_stats)
        self._table = table
        self._pages = pages
        self._predicates = tuple(predicates)
        self._checks = [
            compile_block_predicate(p, scan_layout) for p in self._predicates
        ]
        self._filter_stats = (
            metrics.register("filter") if self._predicates else None
        )
        self._project_positions: Optional[List[int]] = None
        self._project_layout: Optional[Layout] = None
        self._project_stats = None
        if project_columns is not None:
            resolve = scan_layout.compile_resolver()
            self._project_positions = [resolve(c) for c in project_columns]
            self._project_layout = Layout(project_columns)
            self._project_stats = metrics.register("project")
        self._morsel_rows = max(1, morsel_rows)
        self._deadline = metrics.deadline

    def probe_index(self, position: int) -> Optional[Mapping[object, Tuple[int, ...]]]:
        """The table's value index for one column, or ``None``.

        Only a *bare* scan may hand out the index: with predicates or a
        projection fused in, table row numbers no longer equal block row
        numbers and an index probe would resurrect filtered rows.
        """
        if self._predicates or self._project_positions is not None:
            return None
        return self._table.value_index(self._column_names[position])

    def _execute(self) -> ColumnBlock:
        source = MaterializedBlock(self._layout, self._table.columns())
        n = source.num_rows
        deadline = self._deadline
        if deadline is not None:
            deadline.check(self._stats.label)
        self._stats.rows_in += n
        self._stats.rows_out += n
        self._stats.pages_read += self._pages
        block: ColumnBlock = source
        if self._filter_stats is not None:
            self._filter_stats.rows_in += n
            self._filter_stats.comparisons += n * max(1, len(self._predicates))
            selected: List[int] = []
            extend = selected.extend
            morsel = self._morsel_rows
            label = self._filter_stats.label
            for start in range(0, n, morsel):
                end = min(start + morsel, n)
                if deadline is not None:
                    deadline.tick(end - start, label)
                candidates: List[int] = list(range(start, end))
                for check in self._checks:
                    candidates = check(source, candidates)
                extend(candidates)
            self._filter_stats.rows_out += len(selected)
            block = GatherBlock(source, selected)
        elif deadline is not None:
            deadline.tick(n, self._stats.label)
        if self._project_positions is not None:
            self._project_stats.rows_in += block.num_rows
            self._project_stats.rows_out += block.num_rows
            block = ProjectBlock(block, self._project_positions, self._project_layout)
        return block


# ---------------------------------------------------------------------------
# Worker-side fan-out machinery (module level: must be picklable by the
# pool and importable after fork/spawn).
# ---------------------------------------------------------------------------


def _maybe_injected_crash(ordinal: int, attempt: int) -> None:
    """Deterministic chaos hook: die hard if this morsel is marked.

    ``REPRO_MORSEL_FAULT="2:1,5:2"`` kills the worker running morsel 2 on
    attempt 1 and morsel 5 on attempt 2 with ``os._exit`` — an abrupt
    death the pool sees as a lost process, exactly like an OOM kill.
    """
    spec = os.environ.get(MORSEL_FAULT_ENV, "")
    if not spec:
        return
    for item in spec.split(","):
        head, _, tail = item.strip().partition(":")
        try:
            if int(head) == ordinal and int(tail) == attempt:
                os._exit(3)
        except ValueError:
            continue


@lru_cache(maxsize=1)
def _shipment_state(descriptor: Descriptor, radix_bits: int) -> Dict[str, object]:
    """Attach to (or reuse) the shipment and its radix partitioning.

    The one-slot ``lru_cache`` is deliberately worker-local: each worker
    attaches the shipment once and reuses it for every morsel it runs,
    while a new shipment (new segment name in the descriptor) evicts the
    old copy so long-lived workers never accumulate dead shipments.  The
    parent never reads this state — results travel via return values.
    """
    sections = read_shipment(descriptor)
    build = sections["build"]
    return {
        "build": build,
        "probe": sections["probe"],
        "partition_rows": radix_partition(build, radix_bits),
        "partition_tables": {},
    }


def _partition_table(state: Dict[str, object], partition: int) -> Dict[int, List[int]]:
    """Build (lazily, once per worker) one partition's hash table."""
    tables: Dict[int, Dict[int, List[int]]] = state["partition_tables"]
    table = tables.get(partition)
    if table is None:
        build: array = state["build"]
        table = {}
        setdefault = table.setdefault
        for j in state["partition_rows"][partition]:
            setdefault(build[j], []).append(j)
        tables[partition] = table
    return table


def _probe_morsel(
    task: Tuple[Descriptor, int, int, int, int, int],
) -> Tuple[int, bytes, bytes]:
    """Probe one morsel inside a pool worker.

    Returns ``(ordinal, probe_indices, build_indices)`` with the index
    vectors packed as int64 bytes — compact on the result pipe and
    order-preserving, so the parent's ordinal-sorted concatenation is
    byte-identical to a serial probe.
    """
    descriptor, start, end, ordinal, radix_bits, attempt = task
    _maybe_injected_crash(ordinal, attempt)
    state = _shipment_state(descriptor, radix_bits)
    probe: array = state["probe"]
    mask = (1 << radix_bits) - 1
    probe_out = array("q")
    build_out = array("q")
    for i in range(start, end):
        value = probe[i]
        matches = _partition_table(state, value & mask).get(value)
        if matches:
            probe_out.extend([i] * len(matches))
            build_out.extend(matches)
    return ordinal, probe_out.tobytes(), build_out.tobytes()


def _pool_context():
    """The pool's start method: ``fork`` where available (cheap, inherits
    the fault-hook environment), the platform default elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ---------------------------------------------------------------------------
# The partitioned parallel hash join.
# ---------------------------------------------------------------------------


class ParallelHashJoinOp(ColumnarHashJoinOp):
    """Partitioned morsel-parallel equi hash join.

    Inherits the columnar join's validation (equi keys only, residuals
    rejected), build-on-smaller policy, stats formulas, and late-
    materializing :class:`~repro.execution.columnar.JoinBlock` output;
    only the probe strategy differs (see the module docstring for the
    three paths).  All paths produce the identical match ordering, so the
    engine can switch strategies per join without changing results.
    """

    def __init__(
        self,
        left: ColumnarOperator,
        right: ColumnarOperator,
        predicates: Sequence[ComparisonPredicate],
        metrics: ExecutionMetrics,
        morsel_workers: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        radix_bits: int = DEFAULT_RADIX_BITS,
    ) -> None:
        super().__init__(left, right, predicates, metrics)
        if morsel_workers < 1:
            raise ExecutionError(
                f"morsel_workers must be at least 1, got {morsel_workers}"
            )
        self._morsel_workers = morsel_workers
        self._morsel_rows = max(1, morsel_rows)
        self._radix_bits = radix_bits
        self._last_pool_error: Optional[BaseException] = None

    def _execute(self) -> ColumnBlock:
        left_block = self._left.block()
        right_block = self._right.block()
        n_left = left_block.num_rows
        n_right = right_block.num_rows
        self._stats.rows_in += n_left + n_right
        left_keys, right_keys = self._key_columns(left_block, right_block)
        if n_right <= n_left:
            # Build on the right (smaller), probe from the left.
            left_indices, right_indices = self._dispatch_probe(
                right_keys, left_keys, self._left
            )
        else:
            # Build on the left (smaller), probe from the right.
            right_indices, left_indices = self._dispatch_probe(
                left_keys, right_keys, self._right
            )
        matched = len(left_indices)
        self._stats.comparisons += n_left + matched
        self._stats.rows_out += matched
        return JoinBlock(
            left_block, left_indices, right_block, right_indices, self._layout
        )

    # -- probe strategy selection ---------------------------------------

    def _dispatch_probe(
        self,
        build_keys: Column,
        probe_keys: Column,
        probe_child: ColumnarOperator,
    ) -> Tuple[List[int], List[int]]:
        """Build the hash table, then probe via the cheapest strategy."""
        label = self._stats.label
        deadline = self._deadline
        table: Dict[object, List[int]] = {}
        setdefault = table.setdefault
        for j, value in enumerate(build_keys):
            setdefault(value, []).append(j)
        if deadline is not None:
            deadline.check(label)
            deadline.tick(len(build_keys), label)
        n_probe = len(probe_keys)
        if (
            len(self._keys) == 1
            and n_probe >= INDEX_MIN_PROBE_ROWS
            and len(table) * INDEX_FANIN <= n_probe
        ):
            index = self._probe_side_index(probe_child)
            if index is not None:
                return self._index_probe(table, index)
        if self._fanout_eligible(n_probe):
            build_packed = encode_int64(build_keys)
            probe_packed = (
                encode_int64(probe_keys) if build_packed is not None else None
            )
            if build_packed is not None and probe_packed is not None:
                return self._fanout_probe(build_packed, probe_packed, n_probe)
        return self._serial_probe(table, probe_keys)

    def _probe_side_index(
        self, probe_child: ColumnarOperator
    ) -> Optional[Mapping[object, Tuple[int, ...]]]:
        """The probe side's value index, when it is a bare table scan."""
        supplier = getattr(probe_child, "probe_index", None)
        if supplier is None:
            return None
        if probe_child is self._left:
            position = self._keys[0][0]
        else:
            position = self._keys[0][1]
        return supplier(position)

    def _fanout_eligible(self, n_probe: int) -> bool:
        if self._morsel_workers <= 1 or n_probe < FANOUT_MIN_PROBE_ROWS:
            return False
        # Daemonic processes (e.g. the evaluation harness's own pool
        # workers) cannot spawn children; stay in-process there.
        return not multiprocessing.current_process().daemon

    # -- probe strategies ------------------------------------------------

    def _index_probe(
        self,
        build_table: Dict[object, List[int]],
        index: Mapping[object, Tuple[int, ...]],
    ) -> Tuple[List[int], List[int]]:
        """Probe by walking distinct build keys through the table index.

        O(distinct build keys) index lookups replace O(probe rows) hash
        probes.  Pair lists are re-sorted by probe index before
        expansion; each probe row maps to exactly one key, so first
        elements are unique and the sort never compares the match lists.
        """
        deadline = self._deadline
        label = self._stats.label
        get = index.get
        pairs: List[Tuple[int, List[int]]] = []
        append = pairs.append
        for value, matches in build_table.items():
            if deadline is not None:
                deadline.tick(1, label)
            hits = get(value)
            if hits:
                for i in hits:
                    append((i, matches))
        pairs.sort()
        probe_indices: List[int] = []
        build_indices: List[int] = []
        for i, matches in pairs:
            probe_indices += [i] * len(matches)
            build_indices += matches
        return probe_indices, build_indices

    def _serial_probe(
        self, table: Dict[object, List[int]], probe_keys: Column
    ) -> Tuple[List[int], List[int]]:
        """Adaptive in-process morsel kernel.

        Each morsel is first prefiltered with a C-level membership pass
        (``map(table.__contains__, segment)``), so the Python loop only
        touches matching rows — a big win on selective probes.  If the
        first morsel's hit rate shows most rows match, the prefilter is
        pure overhead and the remaining morsels use the classic per-row
        loop instead.
        """
        deadline = self._deadline
        label = self._stats.label
        get = table.get
        contains = table.__contains__
        probe_indices: List[int] = []
        build_indices: List[int] = []
        n = len(probe_keys)
        morsel = self._morsel_rows
        prefilter = True
        for start in range(0, n, morsel):
            end = min(start + morsel, n)
            if deadline is not None:
                deadline.check(label)
                deadline.tick(end - start, label)
            segment = probe_keys[start:end]
            if prefilter:
                hits = list(compress(count(start), map(contains, segment)))
                for i in hits:
                    matches = get(probe_keys[i])
                    probe_indices += [i] * len(matches)
                    build_indices += matches
                if start == 0 and len(hits) > (end - start) * PREFILTER_MAX_HIT_RATE:
                    prefilter = False
            else:
                for offset, value in enumerate(segment):
                    matches = get(value)
                    if matches:
                        i = start + offset
                        probe_indices += [i] * len(matches)
                        build_indices += matches
        return probe_indices, build_indices

    def _fanout_probe(
        self, build_packed: array, probe_packed: array, n_probe: int
    ) -> Tuple[List[int], List[int]]:
        """Fan probe morsels across a process pool over shared memory.

        The shipment is created once and destroyed in the outer
        ``finally`` (close + unlink on every path); each attempt gets a
        fresh pool that is shut down in its own ``finally``.  A
        ``BrokenProcessPool`` (worker death) retries the whole probe on a
        new pool; persistent crashes surface as
        :class:`~repro.errors.WorkloadError` after
        :data:`MAX_FANOUT_ATTEMPTS` attempts — never a hang.
        """
        label = self._stats.label
        deadline = self._deadline
        morsel = self._morsel_rows
        tasks = [
            (start, min(start + morsel, n_probe), ordinal)
            for ordinal, start in enumerate(range(0, n_probe, morsel))
        ]
        shipment = ColumnShipment.create(
            {"build": build_packed, "probe": probe_packed}
        )
        last_error: Optional[BaseException] = None
        try:
            for attempt in range(1, MAX_FANOUT_ATTEMPTS + 1):
                if deadline is not None:
                    deadline.check(label)
                results = self._run_pool_attempt(shipment, tasks, attempt)
                if results is None:
                    last_error = self._last_pool_error
                    continue
                probe_indices: List[int] = []
                build_indices: List[int] = []
                for ordinal in range(len(tasks)):
                    probe_bytes, build_bytes = results[ordinal]
                    chunk = array("q")
                    chunk.frombytes(probe_bytes)
                    probe_indices.extend(chunk)
                    chunk = array("q")
                    chunk.frombytes(build_bytes)
                    build_indices.extend(chunk)
                return probe_indices, build_indices
        finally:
            shipment.destroy()
        raise WorkloadError(
            f"parallel probe worker crashed in all {MAX_FANOUT_ATTEMPTS} "
            f"pool attempts: {last_error}"
        )

    def _run_pool_attempt(
        self,
        shipment: ColumnShipment,
        tasks: List[Tuple[int, int, int]],
        attempt: int,
    ) -> Optional[Dict[int, Tuple[bytes, bytes]]]:
        """One pool attempt: all morsels, or ``None`` if the pool broke."""
        label = self._stats.label
        deadline = self._deadline
        descriptor = shipment.descriptor
        self._last_pool_error = None
        pool = ProcessPoolExecutor(
            max_workers=self._morsel_workers, mp_context=_pool_context()
        )
        try:
            futures = {
                pool.submit(
                    _probe_morsel,
                    (descriptor, start, end, ordinal, self._radix_bits, attempt),
                ): (ordinal, end - start)
                for start, end, ordinal in tasks
            }
            results: Dict[int, Tuple[bytes, bytes]] = {}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in done:
                    ordinal, rows = futures[future]
                    returned_ordinal, probe_bytes, build_bytes = future.result()
                    results[returned_ordinal] = (probe_bytes, build_bytes)
                    if deadline is not None:
                        deadline.tick(rows, label)
                if deadline is not None:
                    deadline.check(label)
            return results
        except BrokenProcessPool as exc:
            self._last_pool_error = exc
            return None
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
