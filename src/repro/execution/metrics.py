"""Execution metrics: per-operator row counts and simulated page I/O.

The paper's experiment reports elapsed time of each chosen QEP.  Our
executor reports three things per run so benchmark tables can show both the
absolute and the machine-independent picture:

* wall-clock seconds (measured),
* rows flowing out of every operator (exact),
* simulated page I/O — scans charge their table's page count, sort-merge
  joins additionally charge sort passes, mirroring the cost model's
  currency so estimated and actual costs are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..resilience.deadline import Deadline

__all__ = ["OperatorStats", "ExecutionMetrics"]


@dataclass
class OperatorStats:
    """Counters for one operator instance in a plan."""

    label: str
    rows_out: int = 0
    rows_in: int = 0
    comparisons: int = 0
    pages_read: float = 0.0

    def snapshot(self) -> "OperatorStats":
        return OperatorStats(
            self.label, self.rows_out, self.rows_in, self.comparisons, self.pages_read
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly view (used by the ``bench`` report writer)."""
        return {
            "label": self.label,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "comparisons": self.comparisons,
            "pages_read": self.pages_read,
        }


@dataclass
class ExecutionMetrics:
    """Aggregated counters for one plan execution.

    ``deadline`` is the run's optional cooperative cancellation budget
    (:class:`~repro.resilience.deadline.Deadline`).  Operators read it at
    construction and tick it as rows flow, so a single budget bounds the
    whole plan rather than each operator separately.
    """

    operators: List[OperatorStats] = field(default_factory=list)
    wall_seconds: float = 0.0
    deadline: Optional[Deadline] = None

    def register(self, label: str) -> OperatorStats:
        stats = OperatorStats(label)
        self.operators.append(stats)
        return stats

    @property
    def total_rows_out(self) -> int:
        return int(sum(op.rows_out for op in self.operators))

    @property
    def total_comparisons(self) -> int:
        return sum(op.comparisons for op in self.operators)

    @property
    def total_pages_read(self) -> float:
        return sum(op.pages_read for op in self.operators)

    def by_label(self) -> Dict[str, OperatorStats]:
        """Operators keyed by label; duplicate labels get ``#n`` suffixes."""
        result: Dict[str, OperatorStats] = {}
        for op in self.operators:
            label = op.label
            n = 2
            while label in result:
                label = f"{op.label}#{n}"
                n += 1
            result[label] = op
        return result

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly view (used by the ``bench`` report writer)."""
        return {
            "wall_seconds": self.wall_seconds,
            "total_rows_out": self.total_rows_out,
            "total_comparisons": self.total_comparisons,
            "total_pages_read": self.total_pages_read,
            "operators": [op.to_dict() for op in self.operators],
        }

    def summary(self) -> str:
        lines = [
            f"wall: {self.wall_seconds:.4f}s  pages: {self.total_pages_read:.0f}  "
            f"comparisons: {self.total_comparisons}"
        ]
        for op in self.operators:
            lines.append(
                f"  {op.label}: out={op.rows_out} in={op.rows_in} "
                f"cmp={op.comparisons} pages={op.pages_read:.0f}"
            )
        return "\n".join(lines)
