"""Hash aggregation: COUNT / SUM / MIN / MAX / AVG with optional GROUP BY.

The paper's experiment query is ``SELECT COUNT(*) …``; this operator
generalizes the executor's answer surface to the aggregates a warehouse
query actually computes, so the examples can report per-group results
rather than only the overall count.  Grouping is hash-based (one pass, one
accumulator per group), matching the rest of the engine's in-memory style.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..sql.predicates import ColumnRef
from .layout import Layout
from .metrics import ExecutionMetrics
from .operators import Operator

__all__ = ["AggregateFunction", "AggregateSpec", "HashAggregateOp"]

Row = Tuple


class AggregateFunction(enum.Enum):
    COUNT = "count"  # COUNT(*) — no input column
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: the function and its input column.

    ``COUNT`` takes no column (COUNT(*) semantics); every other function
    requires one.
    """

    function: AggregateFunction
    column: Optional[ColumnRef] = None
    alias: str = ""

    def __post_init__(self) -> None:
        if self.function is AggregateFunction.COUNT:
            if self.column is not None:
                raise ExecutionError("COUNT(*) takes no column; project first")
        elif self.column is None:
            raise ExecutionError(f"{self.function.value.upper()} requires a column")
        if not self.alias:
            name = self.column.column if self.column is not None else "star"
            object.__setattr__(self, "alias", f"{self.function.value}_{name}")


class _Accumulator:
    """Streaming accumulator for one group."""

    __slots__ = ("count", "sums", "mins", "maxs")

    def __init__(self, n_columns: int) -> None:
        self.count = 0
        self.sums: List[float] = [0.0] * n_columns
        self.mins: List[Optional[float]] = [None] * n_columns
        self.maxs: List[Optional[float]] = [None] * n_columns

    def update(self, values: Sequence) -> None:
        self.count += 1
        for i, value in enumerate(values):
            self.sums[i] += value
            if self.mins[i] is None or value < self.mins[i]:
                self.mins[i] = value
            if self.maxs[i] is None or value > self.maxs[i]:
                self.maxs[i] = value


class HashAggregateOp(Operator):
    """Group rows by key columns and evaluate the aggregate specs.

    Output layout: the group-by columns (in the given order) followed by
    one column per aggregate, qualified under the synthetic relation
    ``agg`` with the spec's alias as the column name.  With no group-by
    columns the operator emits exactly one row (SQL scalar-aggregate
    semantics: COUNT of an empty input is 0, other aggregates are None).
    """

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[ColumnRef],
        aggregates: Sequence[AggregateSpec],
        metrics: ExecutionMetrics,
    ) -> None:
        if not aggregates:
            raise ExecutionError("hash aggregate needs at least one aggregate")
        output_columns = list(group_by) + [
            ColumnRef("agg", spec.alias) for spec in aggregates
        ]
        super().__init__(Layout(output_columns), metrics.register("aggregate"))
        self._child = child
        self._group_positions = [child.layout.position(c) for c in group_by]
        self._aggregates = tuple(aggregates)
        self._value_positions = [
            child.layout.position(spec.column)
            for spec in aggregates
            if spec.column is not None
        ]
        # Map each aggregate to its slot in the accumulator's value arrays.
        slot = 0
        slots: List[Optional[int]] = []
        for spec in aggregates:
            if spec.column is None:
                slots.append(None)
            else:
                slots.append(slot)
                slot += 1
        self._slots = slots

    def rows(self) -> List[Row]:
        source = self._child.rows()
        self._stats.rows_in += len(source)
        groups: Dict[Tuple, _Accumulator] = {}
        n_values = len(self._value_positions)
        for row in source:
            key = tuple(row[p] for p in self._group_positions)
            accumulator = groups.get(key)
            if accumulator is None:
                accumulator = _Accumulator(n_values)
                groups[key] = accumulator
            accumulator.update([row[p] for p in self._value_positions])
            self._stats.comparisons += 1
        if not groups and not self._group_positions:
            groups[()] = _Accumulator(n_values)

        result: List[Row] = []
        for key in sorted(groups, key=repr):
            accumulator = groups[key]
            values: List = list(key)
            for spec, slot in zip(self._aggregates, self._slots):
                values.append(self._finalize(spec, slot, accumulator))
            result.append(tuple(values))
        self._stats.rows_out += len(result)
        return result

    @staticmethod
    def _finalize(spec: AggregateSpec, slot: Optional[int], acc: _Accumulator):
        if spec.function is AggregateFunction.COUNT:
            return acc.count
        assert slot is not None
        if acc.count == 0:
            return None
        if spec.function is AggregateFunction.SUM:
            return acc.sums[slot]
        if spec.function is AggregateFunction.MIN:
            return acc.mins[slot]
        if spec.function is AggregateFunction.MAX:
            return acc.maxs[slot]
        return acc.sums[slot] / acc.count  # AVG
