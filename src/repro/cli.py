"""Command-line interface: estimate, optimize, closure, and demo.

The CLI exposes the library's core loop without writing Python:

* ``repro-els estimate`` — incremental size estimates for a query against
  a statistics JSON file, under any algorithm;
* ``repro-els optimize`` — the chosen plan (EXPLAIN-style) and its
  per-join estimates;
* ``repro-els closure`` — the query after predicate transitive closure,
  with each implied predicate and the rule that derived it;
* ``repro-els demo`` — the paper's Section 8 experiment end to end;
* ``repro-els bench`` — estimator and ground-truth timings (row vs
  columnar, plus the morsel-parallel engine with ``--engine parallel
  --morsel-workers N``) written to ``BENCH_execution.json``;
* ``repro-els lint`` — the repo's own static-analysis rules (``ELS1xx``)
  over Python sources;
* ``repro-els check`` — semantic invariant diagnostics (``ELS2xx``) for a
  query against a statistics file, before any estimation runs.

Exit codes: 0 on success/clean, 1 on an error or diagnostics found, 2 on
usage errors (bad flags, bad lint paths), 3 on *partial* failure — a
``bench`` sweep that completed but degraded some payloads (ground truth
exceeded ``--timeout`` after retries; the report still lands on disk).

Statistics files use the shape of
:func:`repro.storage.loader.load_stats_json`::

    {"R1": {"rows": 100, "columns": {"x": 10}},
     "R2": {"rows": 1000, "columns": {"y": 100}}}

Examples::

    repro-els estimate --stats stats.json \\
        --query "SELECT * FROM R1, R2 WHERE R1.x = R2.y" --algorithm els
    repro-els demo --scale 0.2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.report import AsciiTable
from .core.closure import close_query
from .core.config import ELS, SM, SRS, SSS, EstimatorConfig
from .core.estimator import JoinSizeEstimator
from .errors import LintError, ReproError
from .execution.executor import Executor
from .lint.cli import run_check, run_lint
from .optimizer.optimizer import Optimizer
from .sql.parser import parse_query
from .storage.loader import load_stats_json

__all__ = ["main", "build_parser"]

ALGORITHMS = {"els": ELS, "sm": SM, "srs": SRS, "sss": SSS}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-els",
        description=(
            "Join result size estimation per Swami & Schiefer (EDBT 1994): "
            "Algorithm ELS and its baselines."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    estimate = commands.add_parser(
        "estimate", help="incremental size estimates for a join order"
    )
    _add_query_args(estimate)
    estimate.add_argument(
        "--order",
        help="comma-separated join order (default: FROM-clause order)",
    )

    optimize = commands.add_parser("optimize", help="choose and explain a plan")
    _add_query_args(optimize)
    optimize.add_argument(
        "--enumerator",
        choices=("dp", "dp-bushy", "greedy", "random", "annealing"),
        default="dp",
        help="join-order enumerator (default dp)",
    )
    optimize.add_argument(
        "--seed", type=int, default=0, help="seed for the randomized enumerators"
    )

    closure = commands.add_parser(
        "closure", help="show the query after predicate transitive closure"
    )
    closure.add_argument("--stats", required=True, help="statistics JSON file")
    closure.add_argument("--query", required=True, help="SQL text")

    demo = commands.add_parser("demo", help="run the paper's Section 8 experiment")
    demo.add_argument(
        "--scale", type=float, default=0.2, help="table-size scale (1.0 = paper)"
    )
    demo.add_argument(
        "--engine",
        choices=("row", "columnar", "parallel"),
        default="columnar",
        help="execution engine for the ground-truth runs (default columnar)",
    )

    bench = commands.add_parser(
        "bench",
        help="time estimator build/estimate and row vs columnar "
        "(vs morsel-parallel) ground truth",
    )
    bench.add_argument(
        "--scale", type=float, default=1.0, help="table-size scale (1.0 = paper)"
    )
    bench.add_argument(
        "--repeats", type=int, default=5, help="timing samples per measurement"
    )
    bench.add_argument("--seed", type=int, default=42, help="data-generation seed")
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the parallel-harness sweep section",
    )
    bench.add_argument(
        "--output",
        default="BENCH_execution.json",
        help="report path (default BENCH_execution.json)",
    )
    bench.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the evaluate_workloads parallel-sweep section",
    )
    bench.add_argument(
        "--engine",
        choices=("columnar", "parallel"),
        default="columnar",
        help="newest engine to bench; 'parallel' also times the "
        "morsel-parallel engine against columnar (default columnar)",
    )
    bench.add_argument(
        "--morsel-workers",
        type=int,
        default=None,
        metavar="N",
        help="morsel worker count for --engine parallel "
        "(default: one per CPU)",
    )
    bench.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the gated speedup — columnar over row, or "
        "parallel over columnar with --engine parallel — is below this",
    )
    bench.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-payload ground-truth budget for the sweep; payloads that "
        "exceed it after retries degrade instead of aborting (exit 3)",
    )
    bench.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="attempts per sweep payload (default: the harness retry policy)",
    )
    bench.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="JSONL sweep checkpoint; completed payloads are skipped on restart",
    )

    lint = commands.add_parser(
        "lint",
        help="run the ELS static-analysis rules "
        "(ELS1xx/ELS3xx/ELS4xx/ELS5xx/ELS6xx) over sources",
    )
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument(
        "--dataflow",
        action="store_true",
        default=False,
        help="also run the interprocedural ELS3xx quantity-dimension pass",
    )
    lint.add_argument(
        "--no-dataflow",
        action="store_false",
        dest="dataflow",
        help="disable the ELS3xx pass (the default)",
    )
    lint.add_argument(
        "--effects",
        action="store_true",
        default=False,
        help="also run the interprocedural ELS4xx effect/determinism pass",
    )
    lint.add_argument(
        "--no-effects",
        action="store_false",
        dest="effects",
        help="disable the ELS4xx pass (the default)",
    )
    lint.add_argument(
        "--concurrency",
        action="store_true",
        default=False,
        help="also run the interprocedural ELS5xx concurrency-safety pass",
    )
    lint.add_argument(
        "--no-concurrency",
        action="store_false",
        dest="concurrency",
        help="disable the ELS5xx pass (the default)",
    )
    lint.add_argument(
        "--perf",
        action="store_true",
        default=False,
        help="also run the interprocedural ELS6xx hot-path performance pass",
    )
    lint.add_argument(
        "--no-perf",
        action="store_false",
        dest="perf",
        help="disable the ELS6xx pass (the default)",
    )
    lint.add_argument(
        "--contracts",
        action="store_true",
        default=False,
        help=(
            "also run the interprocedural ELS7xx contract-and-architecture "
            "pass"
        ),
    )
    lint.add_argument(
        "--no-contracts",
        action="store_false",
        dest="contracts",
        help="disable the ELS7xx pass (the default)",
    )
    lint.add_argument(
        "--no-cache",
        action="store_false",
        dest="cache",
        default=True,
        help="bypass the incremental lint cache and re-analyze everything",
    )
    lint.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the incremental lint cache (default .repro-lint-cache)",
    )
    lint.add_argument(
        "--statistics",
        action="store_true",
        default=False,
        help="print per-rule hit counts and cache counters to stderr",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files with N parallel worker processes (0 = one per CPU)",
    )
    _add_diagnostic_args(lint)

    check = commands.add_parser(
        "check", help="semantic invariant diagnostics (ELS2xx) for a query"
    )
    check.add_argument("--stats", required=True, help="statistics JSON file")
    check.add_argument("--query", required=True, help="SQL text")
    check.add_argument(
        "--no-ptc",
        action="store_true",
        help="analyze the query as written instead of after transitive closure "
        "(flags missing derivable predicates as ELS201)",
    )
    _add_diagnostic_args(check)
    return parser


def _add_diagnostic_args(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("--select", help="comma-separated code prefixes to keep")
    subparser.add_argument("--ignore", help="comma-separated code prefixes to drop")
    subparser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format",
    )


def _add_query_args(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("--stats", required=True, help="statistics JSON file")
    subparser.add_argument("--query", required=True, help="SQL text")
    subparser.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="els",
        help="estimation algorithm (default els)",
    )
    subparser.add_argument(
        "--no-ptc",
        action="store_true",
        help="disable predicate transitive closure",
    )
    subparser.add_argument(
        "--frequency-stats",
        action="store_true",
        help="use MCV/histogram join selectivities when the catalog has them",
    )


def _load(args) -> tuple:
    catalog = load_stats_json(args.stats)
    query = parse_query(args.query, schemas=catalog.schemas_by_column())
    return catalog, query


def _config(args) -> EstimatorConfig:
    config: EstimatorConfig = ALGORITHMS[args.algorithm]
    if getattr(args, "frequency_stats", False):
        config = config.but(use_frequency_stats=True)
    return config


def _command_estimate(args) -> int:
    catalog, query = _load(args)
    estimator = JoinSizeEstimator(query, catalog, _config(args), not args.no_ptc)
    order = args.order.split(",") if args.order else list(query.tables)
    result = estimator.estimate_order(order)
    table = AsciiTable(["Step", "Table", "Estimated rows"])
    for index, step in enumerate(result.steps):
        table.add_row(index, step.table, step.rows)
    print(table.render())
    print(f"final estimate: {result.rows:g}")
    return 0


def _command_optimize(args) -> int:
    catalog, query = _load(args)
    optimizer = Optimizer(catalog, enumerator=args.enumerator, seed=args.seed)
    result = optimizer.optimize(query, _config(args), apply_closure=not args.no_ptc)
    print(result.explain())
    print()
    print(f"join order: {' >< '.join(result.join_order)}")
    sizes = ", ".join(f"{x:g}" for x in result.intermediate_sizes)
    print(f"estimated sizes: ({sizes})")
    print(f"estimated cost: {result.estimated_cost:g}")
    return 0


def _command_closure(args) -> int:
    catalog = load_stats_json(args.stats)
    query = parse_query(args.query, schemas=catalog.schemas_by_column())
    closed, result = close_query(query)
    print(f"given:  {query}")
    print(f"closed: {closed}")
    if result.implied:
        print("implied predicates:")
        for implied in result.implied:
            print(f"  {implied}")
    else:
        print("no implied predicates")
    return 0


def _command_demo(args) -> int:
    from .workloads.paper import load_smbg_database, smbg_query

    database = load_smbg_database(scale=args.scale, seed=42)
    query = smbg_query(threshold=max(2, int(100 * args.scale)))
    optimizer = Optimizer(database.catalog)
    executor = Executor(database, engine=args.engine)
    table = AsciiTable(
        ["Algorithm", "Join order", "Estimates", "True", "Time (s)"],
        title=f"Section 8 experiment at scale {args.scale}",
    )
    for name, config, closure in [
        ("SM (no PTC)", SM, False),
        ("SM + PTC", SM, True),
        ("SSS + PTC", SSS, True),
        ("ELS", ELS, True),
    ]:
        result = optimizer.optimize(query, config, apply_closure=closure)
        run = executor.count(result.plan)
        estimates = "(" + ", ".join(f"{x:.3g}" for x in result.intermediate_sizes) + ")"
        table.add_row(
            name,
            " >< ".join(result.join_order),
            estimates,
            run.count,
            f"{run.wall_seconds:.3f}",
        )
    print(table.render())
    return 0


def _command_bench(args) -> int:
    from .analysis.bench import (
        render_bench_report,
        run_execution_bench,
        write_bench_json,
    )

    report = run_execution_bench(
        scale=args.scale,
        repeats=args.repeats,
        seed=args.seed,
        workers=args.workers,
        sweep=not args.no_sweep,
        timeout_s=args.timeout,
        retries=args.retries,
        checkpoint_path=args.checkpoint,
        engine=args.engine,
        morsel_workers=args.morsel_workers,
    )
    write_bench_json(report, args.output)
    print(render_bench_report(report))
    print(f"report written to {args.output}")
    # With --engine parallel the gate moves to the newest engine pair:
    # parallel over columnar, instead of columnar over row.
    if args.engine == "parallel":
        speedup = report["overall"]["parallel_speedup"]
        gate_label = "parallel-over-columnar"
    else:
        speedup = report["overall"]["speedup"]
        gate_label = "columnar"
    if args.min_speedup > 0 and speedup < args.min_speedup:
        print(
            f"FAIL: {gate_label} speedup {speedup:.2f}x is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    sweep_section = report.get("parallel_sweep") or {}
    degraded_count = sweep_section.get("degraded_count", 0)
    if degraded_count:
        print(
            f"PARTIAL: {degraded_count} workload(s) degraded (ground truth "
            f"exceeded the timeout after retries); report written anyway",
            file=sys.stderr,
        )
        return 3
    return 0


def _command_lint(args) -> int:
    return run_lint(
        args.paths,
        args.select,
        args.ignore,
        args.format,
        dataflow=args.dataflow,
        effects=args.effects,
        concurrency=args.concurrency,
        jobs=args.jobs,
        statistics=args.statistics,
        perf=args.perf,
        contracts=args.contracts,
        use_cache=args.cache,
        cache_dir=args.cache_dir,
    )


def _command_check(args) -> int:
    return run_check(
        args.stats,
        args.query,
        apply_closure=not args.no_ptc,
        select=args.select,
        ignore=args.ignore,
        output_format=args.format,
    )


_COMMANDS = {
    "estimate": _command_estimate,
    "optimize": _command_optimize,
    "closure": _command_closure,
    "demo": _command_demo,
    "bench": _command_bench,
    "lint": _command_lint,
    "check": _command_check,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    0 = success / no diagnostics, 1 = failure or diagnostics found,
    2 = usage error (argparse also exits 2 on malformed flags),
    3 = partial failure (a bench sweep completed with degraded payloads).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except LintError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
