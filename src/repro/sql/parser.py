"""Recursive-descent parser for the conjunctive SQL subset.

Grammar (case-insensitive keywords)::

    query       := SELECT select_list FROM table_list [WHERE conjunction]
    select_list := COUNT '(' '*' ')' | '*' | column (',' column)*
    table_list  := table_ref (',' table_ref)*
    table_ref   := IDENT [[AS] IDENT]
    conjunction := comparison (AND comparison)*
    comparison  := operand op operand
    operand     := column | literal
    column      := IDENT ['.' IDENT]
    op          := '=' | '<>' | '<' | '<=' | '>' | '>='

Unqualified column names are resolved against the schemas supplied by the
caller (e.g. the paper's ``WHERE s = m AND m = b`` query, whose columns are
single letters owned by exactly one table each).  If no schema mapping is
given, every column must be table-qualified.

Predicates with the literal on the left (``100 > R.x``) are normalized to
column-on-the-left form.  Constant-only comparisons are rejected: they carry
no estimation content in this framework.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ParseError, ResolutionError
from .lexer import Token, TokenType, tokenize
from .predicates import ColumnRef, ComparisonPredicate, Literal, Op
from .query import Projection, Query, resolve_unqualified

__all__ = ["parse_query", "parse_predicate"]

_OP_BY_TEXT = {op.value: op for op in Op}


def parse_query(
    text: str, schemas: Optional[Mapping[str, Sequence[str]]] = None
) -> Query:
    """Parse SQL text into a normalized :class:`Query`.

    Args:
        text: The SQL string (a single conjunctive SELECT statement).
        schemas: Optional mapping of base-table name -> column names, used
            to resolve unqualified column references.

    Raises:
        ParseError: on malformed syntax.
        ResolutionError: when a column cannot be resolved to a table.
    """
    return _Parser(text, schemas).parse()


def parse_predicate(
    text: str,
    tables: Sequence[str],
    schemas: Optional[Mapping[str, Sequence[str]]] = None,
) -> ComparisonPredicate:
    """Parse a single comparison predicate such as ``R.x = S.y``.

    Convenience entry point for tests and interactive exploration; the
    ``tables`` argument provides the resolution scope for unqualified names.

    Raises:
        ParseError: on a syntax error or when ``text`` holds anything
            other than exactly one predicate.
    """
    parser = _Parser(f"SELECT * FROM {', '.join(tables)} WHERE {text}", schemas)
    query = parser.parse()
    if len(query.predicates) != 1:
        raise ParseError(f"expected exactly one predicate in {text!r}")
    return query.predicates[0]


class _Parser:
    def __init__(
        self, text: str, schemas: Optional[Mapping[str, Sequence[str]]]
    ) -> None:
        self._text = text
        self._schemas = dict(schemas or {})
        self._tokens = tokenize(text)
        self._pos = 0
        # FROM-clause state, filled in while parsing.
        self._tables: List[str] = []
        self._aliases: dict = {}

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, token_type: TokenType, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.type is not token_type or (text is not None and token.text != text):
            wanted = text or token_type.value
            raise ParseError(f"expected {wanted}, found {token}", token.position)
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        return self._expect(TokenType.KEYWORD, word)

    # -- grammar ---------------------------------------------------------

    def parse(self) -> Query:
        self._expect_keyword("SELECT")
        select_items = self._parse_select_list_tokens()
        self._expect_keyword("FROM")
        self._parse_table_list()
        predicates: List[ComparisonPredicate] = []
        if self._peek().is_keyword("WHERE"):
            self._advance()
            predicates = self._parse_conjunction()
        group_parts: List[Tuple[Optional[str], str]] = []
        if self._peek().is_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            group_parts.append(self._parse_column_parts())
            while self._peek().type is TokenType.COMMA:
                self._advance()
                group_parts.append(self._parse_column_parts())
        self._expect(TokenType.EOF)
        projection = self._build_projection(select_items, group_parts)
        return Query.build(self._tables, predicates, projection, self._aliases)

    _AGGREGATE_KEYWORDS = ("COUNT", "SUM", "MIN", "MAX", "AVG")

    def _parse_select_list_tokens(self):
        """Parse the select list, deferring column resolution until tables
        are known.  Returns ``"star"`` or a list of items, each either
        ``("column", parts)`` or ``("agg", function, parts-or-None)``."""
        token = self._peek()
        if token.type is TokenType.STAR:
            self._advance()
            return "star"
        items = [self._parse_select_item()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self):
        token = self._peek()
        for keyword in self._AGGREGATE_KEYWORDS:
            if token.is_keyword(keyword):
                self._advance()
                self._expect(TokenType.LPAREN)
                if keyword == "COUNT":
                    self._expect(TokenType.STAR)
                    parts = None
                else:
                    parts = self._parse_column_parts()
                self._expect(TokenType.RPAREN)
                return ("agg", keyword.lower(), parts)
        return ("column", self._parse_column_parts())

    def _parse_table_list(self) -> None:
        self._parse_table_ref()
        while self._peek().type is TokenType.COMMA:
            self._advance()
            self._parse_table_ref()

    def _parse_table_ref(self) -> None:
        base = self._expect(TokenType.IDENT).text
        name = base
        if self._peek().is_keyword("AS"):
            self._advance()
            name = self._expect(TokenType.IDENT).text
        elif self._peek().type is TokenType.IDENT:
            name = self._advance().text
        if name in self._aliases:
            raise ParseError(f"duplicate relation name {name!r} in FROM clause")
        self._tables.append(name)
        self._aliases[name] = base

    def _parse_conjunction(self) -> List[ComparisonPredicate]:
        predicates = list(self._parse_comparison())
        while self._peek().is_keyword("AND"):
            self._advance()
            predicates.extend(self._parse_comparison())
        return predicates

    def _parse_comparison(self) -> List[ComparisonPredicate]:
        """One comparison term; BETWEEN desugars into two predicates."""
        allow_paren = self._peek().type is TokenType.LPAREN
        if allow_paren:
            self._advance()
        left = self._parse_operand()
        if self._peek().is_keyword("BETWEEN"):
            predicates = self._parse_between(left)
        else:
            op_token = self._expect(TokenType.OPERATOR)
            op = _OP_BY_TEXT[op_token.text]
            right = self._parse_operand()
            if isinstance(left, Literal) and isinstance(right, Literal):
                raise ParseError(
                    "constant-only comparison is not supported", op_token.position
                )
            if isinstance(left, Literal):
                # Normalize '100 > R.x' to 'R.x < 100'.
                left, op, right = right, op.flipped, left  # type: ignore[assignment]
            assert isinstance(left, ColumnRef)
            predicates = [ComparisonPredicate(left, op, right)]
        if allow_paren:
            self._expect(TokenType.RPAREN)
        return predicates

    def _parse_between(self, left: Union[ColumnRef, Literal]) -> List[ComparisonPredicate]:
        """``col BETWEEN a AND b`` desugars to ``col >= a AND col <= b``.

        Pure conjunctive sugar, so the estimation machinery (including the
        [16] tightest-bounds combination) sees ordinary range predicates.
        """
        between = self._advance()
        if not isinstance(left, ColumnRef):
            raise ParseError("BETWEEN requires a column on the left", between.position)
        low = self._parse_operand()
        self._expect_keyword("AND")
        high = self._parse_operand()
        if not isinstance(low, Literal) or not isinstance(high, Literal):
            raise ParseError(
                "BETWEEN bounds must be literals", between.position
            )
        return [
            ComparisonPredicate(left, Op.GE, low),
            ComparisonPredicate(left, Op.LE, high),
        ]

    def _parse_operand(self) -> Union[ColumnRef, Literal]:
        token = self._peek()
        if token.type is TokenType.NUMBER or token.type is TokenType.STRING:
            self._advance()
            assert token.value is not None
            return Literal(token.value)
        table, column = self._parse_column_parts()
        return self._resolve(table, column, token.position)

    def _parse_column_parts(self) -> Tuple[Optional[str], str]:
        first = self._expect(TokenType.IDENT).text
        if self._peek().type is TokenType.DOT:
            self._advance()
            second = self._expect(TokenType.IDENT).text
            return first, second
        return None, first

    def _resolve(self, table: Optional[str], column: str, position: int) -> ColumnRef:
        if table is not None:
            if table not in self._aliases:
                raise ParseError(
                    f"table {table!r} in column reference is not in the FROM clause",
                    position,
                )
            return ColumnRef(table, column)
        if not self._schemas:
            raise ResolutionError(
                f"unqualified column {column!r} requires schemas for resolution"
            )
        alias_schemas = {
            alias: self._schemas.get(base, ())
            for alias, base in self._aliases.items()
        }
        return resolve_unqualified(column, alias_schemas, self._tables)

    def _build_projection(self, select_list, group_parts) -> Projection:
        from .query import AggregateExpr

        group_by = tuple(
            self._resolve(table, column, 0) for table, column in group_parts
        )
        if select_list == "star":
            if group_by:
                raise ParseError("SELECT * cannot be combined with GROUP BY")
            return Projection()

        plain: List[ColumnRef] = []
        aggregates: List[AggregateExpr] = []
        for item in select_list:
            if item[0] == "column":
                table, column = item[1]
                plain.append(self._resolve(table, column, 0))
            else:
                _, function, parts = item
                column_ref = None
                if parts is not None:
                    table, column = parts
                    column_ref = self._resolve(table, column, 0)
                aggregates.append(AggregateExpr(function, column_ref))

        if not aggregates:
            if group_by:
                raise ParseError("GROUP BY requires an aggregate in the select list")
            return Projection(columns=tuple(plain))

        # Bare COUNT(*) without grouping keeps its dedicated flag — the
        # shape the whole estimation framework revolves around.
        if (
            len(aggregates) == 1
            and aggregates[0].function == "count"
            and not plain
            and not group_by
        ):
            return Projection(count_star=True)

        for column in plain:
            if column not in group_by:
                raise ParseError(
                    f"column {column} in the select list must appear in GROUP BY"
                )
        return Projection(aggregates=tuple(aggregates), group_by=group_by)
