"""SQL front-end: predicate model, query representation, lexer, and parser.

This package turns SQL text (or programmatic constructors) into the
normalized :class:`~repro.sql.query.Query` objects consumed by the
transitive-closure pass, the estimators, the optimizer, and the executor.
"""

from .lexer import Token, TokenType, tokenize
from .parser import parse_predicate, parse_query
from .predicates import (
    ColumnRef,
    ComparisonPredicate,
    Literal,
    Op,
    PredicateKind,
    column_equality,
    join_predicate,
    local_predicate,
)
from .query import AggregateExpr, Projection, Query, dedupe_predicates

__all__ = [
    "AggregateExpr",
    "ColumnRef",
    "ComparisonPredicate",
    "Literal",
    "Op",
    "PredicateKind",
    "Projection",
    "Query",
    "Token",
    "TokenType",
    "column_equality",
    "dedupe_predicates",
    "join_predicate",
    "local_predicate",
    "parse_predicate",
    "parse_query",
    "tokenize",
]
