"""Query representation for conjunctive select-project-join queries.

A :class:`Query` is the normalized object the rest of the library consumes:
a set of relation names, a conjunction of :class:`ComparisonPredicate`, and
a projection (either a COUNT(*) aggregate, as in the paper's Section 8
experiment, or a list of output columns).

Normalization performed here corresponds to step 1 of Algorithm ELS:
duplicate predicates are removed after canonicalization, so a query such as
``(R.x > 500) AND (R.x > 500)`` keeps a single copy of the predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ResolutionError
from .predicates import ColumnRef, ComparisonPredicate, PredicateKind

__all__ = [
    "AggregateExpr",
    "Projection",
    "Query",
    "dedupe_predicates",
    "resolve_unqualified",
]

#: Aggregate function names the SQL surface accepts.
AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class AggregateExpr:
    """An aggregate in a select list: ``COUNT(*)`` or ``fn(column)``."""

    function: str
    column: Optional[ColumnRef] = None

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate function {self.function!r}")
        if self.function == "count" and self.column is not None:
            raise ValueError("COUNT takes '*' in this SQL subset")
        if self.function != "count" and self.column is None:
            raise ValueError(f"{self.function.upper()} requires a column")

    def __str__(self) -> str:
        inner = "*" if self.column is None else str(self.column)
        return f"{self.function.upper()}({inner})"


@dataclass(frozen=True)
class Projection:
    """What the query outputs.

    Exactly one of three shapes:

    * ``*`` / a column list (``columns``, possibly empty for ``*``);
    * ``COUNT(*)`` (``count_star``, kept as its own flag because the whole
      estimation framework is about this query shape);
    * an aggregate list with optional GROUP BY (``aggregates`` +
      ``group_by``) — ``columns`` then holds the grouping columns.
    """

    count_star: bool = False
    columns: Tuple[ColumnRef, ...] = ()
    aggregates: Tuple[AggregateExpr, ...] = ()
    group_by: Tuple[ColumnRef, ...] = ()

    def __post_init__(self) -> None:
        if self.count_star and (self.columns or self.aggregates or self.group_by):
            raise ValueError("COUNT(*) cannot be combined with other output")
        if self.group_by and not self.aggregates:
            raise ValueError("GROUP BY requires at least one aggregate")
        if self.aggregates and self.columns:
            raise ValueError(
                "plain output columns alongside aggregates must be the "
                "GROUP BY columns; pass them via group_by"
            )

    @property
    def is_aggregate(self) -> bool:
        return self.count_star or bool(self.aggregates)

    def __str__(self) -> str:
        if self.count_star:
            return "COUNT(*)"
        if self.aggregates:
            parts = [str(c) for c in self.group_by]
            parts += [str(a) for a in self.aggregates]
            return ", ".join(parts)
        if not self.columns:
            return "*"
        return ", ".join(str(c) for c in self.columns)


def dedupe_predicates(
    predicates: Iterable[ComparisonPredicate],
) -> Tuple[ComparisonPredicate, ...]:
    """Canonicalize and remove duplicate predicates, preserving first-seen order.

    This implements the duplicate-removal part of Algorithm ELS step 1.
    """
    seen = set()
    unique: List[ComparisonPredicate] = []
    for predicate in predicates:
        canonical = predicate.canonical()
        if canonical not in seen:
            seen.add(canonical)
            unique.append(canonical)
    return tuple(unique)


@dataclass(frozen=True)
class Query:
    """A normalized conjunctive query.

    Attributes:
        tables: Relation names in FROM-clause order.  Each name is unique;
            aliased scans appear under their alias.
        predicates: Canonicalized, de-duplicated conjunction of comparisons.
        projection: COUNT(*) or a column list (defaults to ``*``).
        aliases: Maps each relation name in ``tables`` to the underlying
            base-table name (identity for unaliased scans).  The optimizer
            and executor use this to locate stored data and statistics.
    """

    tables: Tuple[str, ...]
    predicates: Tuple[ComparisonPredicate, ...]
    projection: Projection = field(default_factory=Projection)
    aliases: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.tables)) != len(self.tables):
            raise ValueError(f"duplicate relation names in FROM clause: {self.tables}")
        table_set = set(self.tables)
        for predicate in self.predicates:
            missing = predicate.tables - table_set
            if missing:
                raise ValueError(
                    f"predicate {predicate} references tables {sorted(missing)} "
                    "that are not in the FROM clause"
                )
        # Freeze the alias map and fill in identity entries.
        aliases = dict(self.aliases)
        for name in self.tables:
            aliases.setdefault(name, name)
        object.__setattr__(self, "aliases", _FrozenAliasMap(aliases))

    @classmethod
    def build(
        cls,
        tables: Sequence[str],
        predicates: Iterable[ComparisonPredicate],
        projection: Optional[Projection] = None,
        aliases: Optional[Mapping[str, str]] = None,
    ) -> "Query":
        """Construct a query, canonicalizing and de-duplicating predicates."""
        return cls(
            tables=tuple(tables),
            predicates=dedupe_predicates(predicates),
            projection=projection or Projection(),
            aliases=dict(aliases or {}),
        )

    def base_table(self, name: str) -> str:
        """The base-table name behind a (possibly aliased) relation name."""
        return self.aliases[name]

    @property
    def join_predicates(self) -> Tuple[ComparisonPredicate, ...]:
        return tuple(p for p in self.predicates if p.kind is PredicateKind.JOIN)

    @property
    def local_predicates(self) -> Tuple[ComparisonPredicate, ...]:
        return tuple(p for p in self.predicates if p.kind is not PredicateKind.JOIN)

    @property
    def constant_predicates(self) -> Tuple[ComparisonPredicate, ...]:
        return tuple(
            p for p in self.predicates if p.kind is PredicateKind.CONSTANT_LOCAL
        )

    @property
    def column_local_predicates(self) -> Tuple[ComparisonPredicate, ...]:
        return tuple(p for p in self.predicates if p.kind is PredicateKind.COLUMN_LOCAL)

    def predicates_on(self, table: str) -> Tuple[ComparisonPredicate, ...]:
        """All predicates referencing the given relation name."""
        return tuple(p for p in self.predicates if p.references(table))

    def with_predicates(self, predicates: Iterable[ComparisonPredicate]) -> "Query":
        """A copy of this query with a replacement predicate conjunction.

        Used by the transitive-closure rewrite to attach the implied
        predicates; the FROM clause and projection are unchanged.
        """
        return Query.build(self.tables, predicates, self.projection, dict(self.aliases))

    def __str__(self) -> str:
        where = " AND ".join(str(p) for p in self.predicates)
        sql = f"SELECT {self.projection} FROM {', '.join(self.tables)}"
        if where:
            sql += f" WHERE {where}"
        if self.projection.group_by:
            sql += " GROUP BY " + ", ".join(
                str(c) for c in self.projection.group_by
            )
        return sql


class _FrozenAliasMap(Mapping[str, str]):
    """An immutable mapping so that Query stays hashable-by-identity safe."""

    def __init__(self, data: Dict[str, str]) -> None:
        self._data = dict(data)

    def __getitem__(self, key: str) -> str:
        return self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"_FrozenAliasMap({self._data!r})"


def resolve_unqualified(
    column: str, schemas: Mapping[str, Sequence[str]], tables: Sequence[str]
) -> ColumnRef:
    """Resolve a bare column name against the schemas of the FROM tables.

    Args:
        column: The unqualified column name from the query text.
        schemas: Maps relation name -> sequence of its column names.
        tables: The FROM-clause relation names, used to bound the search.

    Returns:
        The unique :class:`ColumnRef` owning that column.

    Raises:
        ResolutionError: if the name matches no table or multiple tables.
    """
    owners = [t for t in tables if column in schemas.get(t, ())]
    if not owners:
        raise ResolutionError(
            f"column {column!r} not found in any FROM-clause table {list(tables)}"
        )
    if len(owners) > 1:
        raise ResolutionError(
            f"column {column!r} is ambiguous; it appears in tables {owners}"
        )
    return ColumnRef(owners[0], column)
