"""Predicate model for conjunctive select-project-join queries.

The paper (and this reproduction) deals exclusively with *conjunctive*
queries: the WHERE clause is a conjunction of simple comparison predicates.
Each predicate compares either

* a column with a column of a **different** table — a *join predicate*,
* a column with a column of the **same** table — a *local column-equality
  (or column-comparison) predicate*, or
* a column with a constant — a *local constant predicate*.

The distinction matters because Algorithm ELS treats the three classes very
differently: join predicates contribute join selectivities grouped by
equivalence class, same-table column equalities trigger the Section 6
special case, and constant predicates are folded into effective table and
column cardinalities (Section 5).

All objects in this module are immutable value types with structural
equality, so they can be stored in sets and used as dictionary keys — the
transitive-closure machinery relies on this for duplicate elimination
(Algorithm ELS, step 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

__all__ = [
    "Op",
    "ColumnRef",
    "Literal",
    "PredicateKind",
    "ComparisonPredicate",
    "join_predicate",
    "local_predicate",
    "column_equality",
]

Scalar = Union[int, float, str]


class Op(enum.Enum):
    """Comparison operators supported in conjunctive queries."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def flipped(self) -> "Op":
        """The operator obtained by swapping the two operands.

        ``a < b`` is equivalent to ``b > a``; equality operators are their
        own flip.  Used when predicates are put into canonical form.
        """
        return _FLIP[self]

    @property
    def is_equality(self) -> bool:
        return self is Op.EQ

    @property
    def is_range(self) -> bool:
        """True for the four inequality-range operators (<, <=, >, >=)."""
        return self in (Op.LT, Op.LE, Op.GT, Op.GE)

    @property
    def is_lower_bound(self) -> bool:
        """True when ``col op c`` bounds the column from below (>, >=)."""
        return self in (Op.GT, Op.GE)

    @property
    def is_upper_bound(self) -> bool:
        """True when ``col op c`` bounds the column from above (<, <=)."""
        return self in (Op.LT, Op.LE)

    def evaluate(self, left: Scalar, right: Scalar) -> bool:
        """Apply the comparison to two concrete values."""
        if self is Op.EQ:
            return left == right
        if self is Op.NE:
            return left != right
        if self is Op.LT:
            return left < right
        if self is Op.LE:
            return left <= right
        if self is Op.GT:
            return left > right
        return left >= right


_FLIP = {
    Op.EQ: Op.EQ,
    Op.NE: Op.NE,
    Op.LT: Op.GT,
    Op.LE: Op.GE,
    Op.GT: Op.LT,
    Op.GE: Op.LE,
}


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A fully qualified reference to a column of a named table.

    The ``table`` component is the query-level relation name (the alias if
    the query introduced one), so two scans of the same base table under
    different aliases are distinct columns for estimation purposes.
    """

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class Literal:
    """A constant appearing on one side of a comparison."""

    value: Scalar

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


class PredicateKind(enum.Enum):
    """Structural classification of a comparison predicate."""

    JOIN = "join"  # column of R compared with column of S, R != S
    COLUMN_LOCAL = "column-local"  # two columns of the same table
    CONSTANT_LOCAL = "constant-local"  # column compared with a literal


@dataclass(frozen=True)
class ComparisonPredicate:
    """A single comparison ``left op right`` in a conjunctive WHERE clause.

    ``left`` is always a :class:`ColumnRef`.  ``right`` is either another
    :class:`ColumnRef` (join or column-local predicate) or a
    :class:`Literal` (constant-local predicate).  Use :meth:`canonical` to
    obtain a normal form under which semantically identical predicates
    compare equal — e.g. ``R.x = S.y`` and ``S.y = R.x``.
    """

    left: ColumnRef
    op: Op
    right: Union[ColumnRef, Literal]

    @property
    def kind(self) -> PredicateKind:
        if isinstance(self.right, Literal):
            return PredicateKind.CONSTANT_LOCAL
        if self.left.table == self.right.table:
            return PredicateKind.COLUMN_LOCAL
        return PredicateKind.JOIN

    @property
    def is_join(self) -> bool:
        return self.kind is PredicateKind.JOIN

    @property
    def is_local(self) -> bool:
        return self.kind is not PredicateKind.JOIN

    @property
    def is_equijoin(self) -> bool:
        return self.is_join and self.op is Op.EQ

    @property
    def tables(self) -> frozenset:
        """The set of relation names this predicate touches (1 or 2)."""
        if isinstance(self.right, ColumnRef):
            return frozenset((self.left.table, self.right.table))
        return frozenset((self.left.table,))

    @property
    def columns(self) -> tuple:
        """All column references in the predicate (1 or 2 entries)."""
        if isinstance(self.right, ColumnRef):
            return (self.left, self.right)
        return (self.left,)

    @property
    def constant(self) -> Scalar:
        """The literal value of a constant-local predicate.

        Raises:
            ValueError: if the predicate compares two columns.
        """
        if not isinstance(self.right, Literal):
            raise ValueError(f"{self} has no constant operand")
        return self.right.value

    def canonical(self) -> "ComparisonPredicate":
        """Return an equivalent predicate in canonical operand order.

        Column-column predicates are ordered so the lexicographically
        smaller :class:`ColumnRef` is on the left (flipping the operator as
        needed); column-constant predicates always keep the column on the
        left.  Canonicalization makes structural equality coincide with
        semantic equality for simple comparisons, which is what step 1 of
        Algorithm ELS (duplicate-predicate removal) needs.
        """
        if isinstance(self.right, Literal):
            return self
        if self.right < self.left:
            return ComparisonPredicate(self.right, self.op.flipped, self.left)
        return self

    def references(self, table: str) -> bool:
        """True if the predicate mentions the given relation name."""
        return table in self.tables

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


def join_predicate(
    left_table: str, left_column: str, right_table: str, right_column: str, op: Op = Op.EQ
) -> ComparisonPredicate:
    """Convenience constructor for a join predicate between two tables."""
    if left_table == right_table:
        raise ValueError(
            "join_predicate requires two distinct tables; "
            f"got {left_table!r} on both sides (use column_equality instead)"
        )
    return ComparisonPredicate(
        ColumnRef(left_table, left_column), op, ColumnRef(right_table, right_column)
    ).canonical()


def local_predicate(table: str, column: str, op: Op, value: Scalar) -> ComparisonPredicate:
    """Convenience constructor for a constant-local predicate ``col op c``."""
    return ComparisonPredicate(ColumnRef(table, column), op, Literal(value))


def column_equality(table: str, left_column: str, right_column: str) -> ComparisonPredicate:
    """Convenience constructor for a same-table column equality predicate."""
    if left_column == right_column:
        raise ValueError("column_equality requires two distinct columns")
    return ComparisonPredicate(
        ColumnRef(table, left_column), Op.EQ, ColumnRef(table, right_column)
    ).canonical()
