"""Tokenizer for the SQL subset used throughout the reproduction.

The grammar is deliberately small — exactly what is needed to express the
paper's conjunctive select-project-join queries:

* keywords: SELECT, FROM, WHERE, AND, AS, COUNT (case-insensitive)
* identifiers, optionally qualified: ``name`` or ``table.column``
  (qualification is handled by the parser; the lexer emits DOT tokens)
* integer, float, and single-quoted string literals
* comparison operators: ``=  <>  !=  <  <=  >  >=``
* punctuation: ``( ) , * .``

Tokens carry their character offset so parse errors point at the source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Union

from ..errors import ParseError

__all__ = ["TokenType", "Token", "tokenize"]

KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "AND",
        "AS",
        "COUNT",
        "BETWEEN",
        "GROUP",
        "BY",
        "SUM",
        "MIN",
        "MAX",
        "AVG",
    }
)


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    DOT = "dot"
    STAR = "star"
    LPAREN = "lparen"
    RPAREN = "rparen"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int
    value: Union[int, float, str, None] = None

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def __str__(self) -> str:
        return f"{self.type.value}({self.text!r})"


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_SINGLE = {
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "*": TokenType.STAR,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text, returning a token list terminated by EOF.

    Raises:
        ParseError: on an unterminated string literal or unexpected byte.
    """
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise ParseError("unterminated string literal", i)
            raw = text[i + 1 : end]
            yield Token(TokenType.STRING, text[i : end + 1], i, raw)
            i = end + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A trailing dot followed by a non-digit belongs to
                    # qualified-name syntax, not to the number.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            raw = text[i:j]
            value: Union[int, float] = float(raw) if "." in raw else int(raw)
            yield Token(TokenType.NUMBER, raw, i, value)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                yield Token(TokenType.KEYWORD, word.upper(), i)
            else:
                yield Token(TokenType.IDENT, word, i)
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                canonical = "<>" if op == "!=" else op
                yield Token(TokenType.OPERATOR, canonical, i)
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE:
            yield Token(_SINGLE[ch], ch, i)
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    yield Token(TokenType.EOF, "", n)
