"""Layer-1 rules: repo-specific static checks over Python sources (ELS1xx).

Each rule guards an invariant the estimator's correctness argument leans on
(see ``docs/LINT.md`` for the full catalog with paper references):

* **ELS101** — urn-model survival arithmetic stays inside ``core/urn.py``
  so Section 5's ``n * (1 - (1 - 1/n)^k)`` has exactly one implementation.
* **ELS102** — functions computing selectivities must clamp or validate
  before returning raw arithmetic (selectivities live in [0, 1]).
* **ELS103** — no ``==``/``!=`` between floating estimate quantities
  (rows, selectivities, cardinalities); compare with tolerances.
* **ELS104** — no mutable default arguments.
* **ELS105** — public library modules declare a complete ``__all__``.
* **ELS106** — no bare ``except:`` clauses.

Rules are plain classes registered with :func:`repro.lint.engine.register`;
the engine instantiates and runs them file by file.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set

from .diagnostics import Diagnostic, Severity
from .engine import LintRule, ModuleUnderLint, register

__all__ = [
    "UrnArithmeticRule",
    "UnclampedSelectivityRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "MissingAllRule",
    "BareExceptRule",
]

#: Identifier substrings that mark a value as an estimate quantity.
_ESTIMATE_TOKENS = ("selectivity", "cardinalit", "distinct", "rows")

#: Builtin constructors whose call as a default argument is mutable state.
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray"}

#: Module stems exempt from the ``__all__`` requirement.
_ALL_EXEMPT_STEMS = {"__main__", "setup"}


def _is_one(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value in (1, 1.0)


def _is_urn_survival_base(node: ast.AST) -> bool:
    """Match the ``1 - 1/n`` (or ``1.0 - 1.0/n``) survival-probability base."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and _is_one(node.left)
        and isinstance(node.right, ast.BinOp)
        and isinstance(node.right.op, ast.Div)
        and _is_one(node.right.left)
    )


def _call_name(node: ast.Call) -> Optional[str]:
    """The terminal name of a call target (``math.log1p`` -> ``log1p``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_estimate_named(node: ast.AST) -> bool:
    """True for a name/attribute whose identifier denotes an estimate."""
    if isinstance(node, ast.Name):
        identifier = node.id
    elif isinstance(node, ast.Attribute):
        identifier = node.attr
    else:
        return False
    lowered = identifier.lower()
    return any(token in lowered for token in _ESTIMATE_TOKENS)


def _is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _walk_function_body(function: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, not those of nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class UrnArithmeticRule(LintRule):
    """ELS101: urn-model arithmetic is only allowed inside ``core/urn.py``.

    Flags the ``(1 - 1/n) ** k`` power pattern and any ``log1p`` call (the
    numerically stable form ``exp(k * log1p(-1/n))``) outside a module whose
    name mentions ``urn`` — the paper's Section 5 expectation must have one
    canonical implementation, everything else calls
    :func:`repro.core.urn.expected_distinct`.
    """

    code = "ELS101"
    name = "urn-arithmetic-outside-urn"
    severity = Severity.ERROR
    description = "urn-model survival arithmetic outside core/urn.py"
    hint = "call repro.core.urn.expected_distinct instead of re-deriving the formula"

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        if "urn" in module.stem:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
                if _is_urn_survival_base(node.left):
                    yield self.diagnostic(
                        module,
                        node,
                        "urn-model survival pattern (1 - 1/n) ** k outside core/urn.py",
                    )
            elif isinstance(node, ast.Call) and _call_name(node) == "log1p":
                yield self.diagnostic(
                    module,
                    node,
                    "log1p-based urn-model arithmetic outside core/urn.py",
                )


@register
class UnclampedSelectivityRule(LintRule):
    """ELS102: selectivity-producing functions must clamp or validate.

    A function whose name contains ``selectivity`` must not return a bare
    arithmetic expression unless the function also clamps (``min``/``max``
    or a ``*clamp*`` helper) or validates (``raise``) somewhere — Equations
    1 and 2 only hold for selectivities inside [0, 1].
    """

    code = "ELS102"
    name = "unclamped-selectivity-return"
    severity = Severity.ERROR
    description = "selectivity function returns unclamped arithmetic"
    hint = "clamp the result to [0, 1] (min/max or a _clamp helper) or validate inputs"
    library_only = True

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if "selectivity" not in node.name.lower():
                continue
            guarded = False
            arithmetic_returns: List[ast.Return] = []
            for inner in _walk_function_body(node):
                if isinstance(inner, ast.Raise):
                    guarded = True
                elif isinstance(inner, ast.Call):
                    name = _call_name(inner)
                    if name in ("min", "max") or (name and "clamp" in name.lower()):
                        guarded = True
                elif isinstance(inner, ast.Return) and isinstance(
                    inner.value, (ast.BinOp, ast.UnaryOp)
                ):
                    arithmetic_returns.append(inner)
            if guarded:
                continue
            for offending in arithmetic_returns:
                yield self.diagnostic(
                    module,
                    offending,
                    f"function {node.name!r} returns unclamped arithmetic; "
                    "selectivities must stay in [0, 1]",
                )


@register
class FloatEqualityRule(LintRule):
    """ELS103: no exact equality between floating estimate quantities.

    Flags ``==`` / ``!=`` where both operands are estimate-named (rows,
    selectivity, cardinality, distinct) or where an estimate-named operand
    is compared against a float literal.  Integer-literal sentinels
    (``rows == 0``) stay legal — exact zero is representable.
    """

    code = "ELS103"
    name = "float-equality-on-estimates"
    severity = Severity.ERROR
    description = "exact ==/!= between floating estimate quantities"
    hint = "use math.isclose or an explicit tolerance for estimate comparisons"
    library_only = True

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                left_named = _is_estimate_named(left)
                right_named = _is_estimate_named(right)
                if (left_named and right_named) or (
                    (left_named and _is_float_literal(right))
                    or (right_named and _is_float_literal(left))
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        "exact float equality between estimate quantities",
                    )


@register
class MutableDefaultRule(LintRule):
    """ELS104: no mutable default argument values.

    A ``[]``/``{}``/``set()`` default is shared across calls; estimator
    state leaking between queries through a default would silently corrupt
    every estimate after the first.
    """

    code = "ELS104"
    name = "mutable-default-argument"
    severity = Severity.ERROR
    description = "mutable default argument value"
    hint = "default to None and construct the container inside the function"

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.diagnostic(
                        module,
                        default,
                        f"mutable default argument in {name!r}",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CONSTRUCTORS
        return False


@register
class MissingAllRule(LintRule):
    """ELS105: public library modules declare a complete ``__all__``.

    A module defining public top-level functions or classes must have an
    ``__all__`` listing them — the import surface is pinned by tests and
    docs, so unexported public callables are either missing exports or
    should be underscore-private.  Executable scripts (modules with an
    ``if __name__ == "__main__"`` guard and no ``__all__``) are exempt:
    they are entry points, not import surfaces.
    """

    code = "ELS105"
    name = "missing-or-incomplete-all"
    severity = Severity.WARNING
    description = "public module without a complete __all__"
    hint = "add the name to __all__ or rename it with a leading underscore"
    library_only = True

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        if module.stem in _ALL_EXEMPT_STEMS:
            return
        public_defs = [
            node
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not node.name.startswith("_")
        ]
        declared, exported = self._exported_names(module.tree)
        if not declared:
            if self._is_script(module.tree):
                return
            if public_defs:
                yield self.diagnostic(
                    module,
                    module.tree.body[0] if module.tree.body else module.tree,
                    "module defines public names but declares no __all__",
                    hint="add __all__ listing the public API",
                )
            return
        if exported is None:
            return  # dynamically built __all__: completeness is unknowable
        for node in public_defs:
            if node.name not in exported:
                yield self.diagnostic(
                    module,
                    node,
                    f"public name {node.name!r} is missing from __all__",
                )

    @staticmethod
    def _is_script(tree: ast.Module) -> bool:
        """True for modules with a top-level ``__name__ == "__main__"`` guard."""
        for node in tree.body:
            if not isinstance(node, ast.If) or not isinstance(node.test, ast.Compare):
                continue
            test = node.test
            if (
                isinstance(test.left, ast.Name)
                and test.left.id == "__name__"
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and len(test.comparators) == 1
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value == "__main__"
            ):
                return True
        return False

    @staticmethod
    def _exported_names(tree: ast.Module) -> "tuple[bool, Optional[Set[str]]]":
        """Whether ``__all__`` is declared, and its static contents.

        Returns ``(False, None)`` when undeclared, ``(True, None)`` for a
        dynamically computed ``__all__`` (completeness unknowable), and
        ``(True, names)`` for a literal list/tuple of strings.
        """
        for node in tree.body:
            targets: Sequence[ast.AST] = ()
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = (node.target,), None
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(value, (ast.List, ast.Tuple)) and all(
                        isinstance(e, ast.Constant) and isinstance(e.value, str)
                        for e in value.elts
                    ):
                        return True, {e.value for e in value.elts}
                    return True, None
        return False, None


@register
class BareExceptRule(LintRule):
    """ELS106: no bare ``except:`` clauses.

    A bare except swallows ``KeyboardInterrupt`` and hides estimator bugs
    as silently wrong numbers; catch :class:`repro.errors.ReproError` or a
    concrete exception instead.
    """

    code = "ELS106"
    name = "bare-except"
    severity = Severity.ERROR
    description = "bare except: clause"
    hint = "catch a concrete exception type (ReproError for library failures)"

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.diagnostic(module, node, "bare except: clause")
