"""Layer-2 semantic diagnostics over the query IR and catalog (ELS2xx).

Where :mod:`repro.lint.rules_code` reads Python sources, this analyzer
reads the *query itself* — the :class:`~repro.sql.query.Query` predicate
conjunction, its equivalence classes, and the statistics catalog — and
reports violations of the invariants Algorithm ELS assumes (DESIGN.md
sections 4-7) **before** any estimation runs:

* **ELS201** — the predicate set is not a transitive-closure fixpoint: a
  derivable predicate is missing (so Rules SS/LS would see the wrong
  eligible sets).
* **ELS202** — the supplied equivalence classes are not a consistent
  partition of the equality-linked columns.
* **ELS203** — contradictory predicates (unsatisfiable conjunction) or
  duplicates that survived step-1 dedup.
* **ELS204** — a join column's catalog cardinality exceeds its table
  cardinality (``d_x <= ||R||`` is Section 2's basic consistency).
* **ELS205** — single-table j-equivalent columns whose implied local
  equality predicate was never folded in (the Section 6 special case
  would silently not fire).
* **ELS206** — a predicate references a table or column the catalog has
  no statistics for (estimation would fail mid-flight).
* **ELS207** — the join graph is disconnected: some join order must cross
  a Cartesian product (advisory).

:func:`analyze_query` returns plain :class:`~repro.lint.diagnostics.Diagnostic`
objects; :func:`check_estimator_input` raises
:class:`repro.errors.DiagnosticError` on error-severity findings and is the
hook :class:`~repro.core.estimator.JoinSizeEstimator` runs behind
``EstimatorConfig.check_invariants``.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import DiagnosticError
from ..sql.predicates import (
    ColumnRef,
    ComparisonPredicate,
    Op,
    PredicateKind,
)
from ..sql.query import Query, dedupe_predicates
from .diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..catalog.statistics import Catalog
    from ..core.equivalence import EquivalenceClasses

__all__ = ["SEMANTIC_CODES", "analyze_query", "check_estimator_input"]

#: Every ELS2xx code this layer can emit (drives CLI code validation).
SEMANTIC_CODES: Tuple[str, ...] = (
    "ELS201",
    "ELS202",
    "ELS203",
    "ELS204",
    "ELS205",
    "ELS206",
    "ELS207",
)


def _diag(
    code: str,
    message: str,
    severity: Severity,
    context: str,
    hint: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        code=code, message=message, severity=severity, context=context, hint=hint
    )


def analyze_query(
    query: Query,
    catalog: Optional[Catalog] = None,
    equivalence: Optional[EquivalenceClasses] = None,
    expect_closure: bool = True,
) -> List[Diagnostic]:
    """Run every semantic check against one query (and optional catalog).

    Args:
        query: The query to diagnose, as the estimator would receive it.
        catalog: Statistics catalog; catalog-dependent checks (ELS204,
            ELS206) are skipped when omitted.
        equivalence: Externally supplied equivalence classes (e.g. the
            estimator's own); consistency against the predicates is
            verified (ELS202).  When omitted, classes are derived from the
            predicates and ELS202 is vacuous by construction.
        expect_closure: Whether the predicate set is supposed to be a
            transitive-closure fixpoint.  Estimation without PTC (the
            paper's "SM (no PTC)" row) legitimately runs on non-closed
            queries, so closure-dependent checks (ELS201, ELS205) are
            gated on this flag.

    Returns:
        All findings, deterministically ordered.
    """
    # Lazy import: the lint tier may not depend on repro.core at module
    # level (layers.toml, enforced by ELS706).
    from ..core.equivalence import EquivalenceClasses

    diagnostics: List[Diagnostic] = []
    derived = EquivalenceClasses.from_predicates(query.predicates)
    classes = equivalence if equivalence is not None else derived

    if expect_closure:
        diagnostics.extend(_check_closure_fixpoint(query))
        diagnostics.extend(_check_unfolded_jequiv(query, classes))
    if equivalence is not None:
        diagnostics.extend(_check_partition(query, equivalence))
    diagnostics.extend(_check_duplicates(query))
    diagnostics.extend(_check_contradictions(query, classes))
    if catalog is not None:
        diagnostics.extend(_check_catalog(query, catalog))
    diagnostics.extend(_check_connectivity(query))
    return sorted(diagnostics, key=Diagnostic.sort_key)


def check_estimator_input(
    query: Query,
    catalog: Optional[Catalog] = None,
    equivalence: Optional[EquivalenceClasses] = None,
    expect_closure: bool = True,
) -> List[Diagnostic]:
    """Analyze and raise on error-severity findings (the estimator hook).

    Returns the full diagnostic list (warnings included) when no errors
    were found, so callers can still log advisories.

    Raises:
        DiagnosticError: when any finding has error severity.
    """
    diagnostics = analyze_query(query, catalog, equivalence, expect_closure)
    if any(d.severity is Severity.ERROR for d in diagnostics):
        raise DiagnosticError(diagnostics)
    return diagnostics


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------

def _check_closure_fixpoint(query: Query) -> List[Diagnostic]:
    """ELS201: every derivable predicate must already be present."""
    from ..core.closure import transitive_closure  # lazy: see layers.toml

    given = set(dedupe_predicates(query.predicates))
    closed = transitive_closure(query.predicates)
    findings: List[Diagnostic] = []
    for implied in closed.implied:
        if implied.predicate in given:
            continue
        findings.append(
            _diag(
                "ELS201",
                "predicate set is not a transitive-closure fixpoint: "
                f"{implied.predicate} is derivable (rule {implied.rule.value}) "
                "but missing",
                Severity.ERROR,
                context=str(implied.predicate),
                hint="apply repro.core.closure.close_query before estimating",
            )
        )
    return findings


def _check_partition(query: Query, equivalence: EquivalenceClasses) -> List[Diagnostic]:
    """ELS202: supplied classes must consistently partition the columns."""
    findings: List[Diagnostic] = []
    seen: Dict[ColumnRef, int] = {}
    for index, group in enumerate(equivalence.classes()):
        for column in group:
            if column in seen:
                findings.append(
                    _diag(
                        "ELS202",
                        f"column {column} appears in more than one equivalence "
                        "class; classes must be disjoint",
                        Severity.ERROR,
                        context=str(column),
                        hint="rebuild classes with EquivalenceClasses.from_predicates",
                    )
                )
            seen[column] = index
    for predicate in query.predicates:
        if predicate.op is not Op.EQ or not isinstance(predicate.right, ColumnRef):
            continue
        if not equivalence.same(predicate.left, predicate.right):
            findings.append(
                _diag(
                    "ELS202",
                    f"equality predicate {predicate} links two columns the "
                    "equivalence classes keep separate",
                    Severity.ERROR,
                    context=str(predicate),
                    hint="rebuild classes with EquivalenceClasses.from_predicates",
                )
            )
    return findings


def _check_duplicates(query: Query) -> List[Diagnostic]:
    """ELS203 (duplicate flavor): canonical duplicates in the conjunction."""
    findings: List[Diagnostic] = []
    counts = Counter(p.canonical() for p in query.predicates)
    for predicate, count in counts.items():
        if count > 1:
            findings.append(
                _diag(
                    "ELS203",
                    f"predicate {predicate} appears {count} times after "
                    "canonicalization; step-1 dedup did not run",
                    Severity.WARNING,
                    context=str(predicate),
                    hint="build queries via Query.build / dedupe_predicates",
                )
            )
    return findings


def _comparable(a: object, b: object) -> bool:
    numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    if numeric(a) and numeric(b):
        return True
    return isinstance(a, str) and isinstance(b, str)


def _check_contradictions(
    query: Query, equivalence: EquivalenceClasses
) -> List[Diagnostic]:
    """ELS203 (contradiction flavor): unsatisfiable constant conjunctions.

    Three shapes, checked per j-equivalence class so that propagated
    constants are compared with the predicates that imply them:

    * two equality literals with different constants,
    * an equality literal violating a range or ``<>`` bound,
    * a lower bound strictly above an upper bound.
    """
    findings: List[Diagnostic] = []
    by_class: Dict[ColumnRef, List[ComparisonPredicate]] = {}
    for predicate in query.predicates:
        if predicate.kind is not PredicateKind.CONSTANT_LOCAL:
            continue
        by_class.setdefault(equivalence.class_id(predicate.left), []).append(predicate)

    for class_id, predicates in sorted(by_class.items()):
        context = " AND ".join(str(p) for p in predicates)
        equalities = [p for p in predicates if p.op is Op.EQ]
        constants = {p.constant for p in equalities}
        if len(constants) > 1:
            findings.append(
                _diag(
                    "ELS203",
                    "contradictory equality constants "
                    f"{sorted(map(str, constants))} on j-equivalent columns",
                    Severity.ERROR,
                    context=context,
                    hint="the conjunction selects zero rows; drop or fix a predicate",
                )
            )
            continue
        if equalities:
            value = equalities[0].constant
            for other in predicates:
                if other.op is Op.EQ:
                    continue
                if _comparable(value, other.constant) and not other.op.evaluate(
                    value, other.constant
                ):
                    findings.append(
                        _diag(
                            "ELS203",
                            f"equality constant {value!r} violates bound {other}",
                            Severity.ERROR,
                            context=context,
                            hint="the conjunction selects zero rows",
                        )
                    )
            continue
        lows = [p for p in predicates if p.op.is_lower_bound]
        highs = [p for p in predicates if p.op.is_upper_bound]
        for low in lows:
            for high in highs:
                if not _comparable(low.constant, high.constant):
                    continue
                empty = low.constant > high.constant or (
                    low.constant == high.constant
                    and not (low.op is Op.GE and high.op is Op.LE)
                )
                if empty:
                    findings.append(
                        _diag(
                            "ELS203",
                            f"empty range: {low} contradicts {high}",
                            Severity.ERROR,
                            context=context,
                            hint="the conjunction selects zero rows",
                        )
                    )
    return findings


def _check_catalog(query: Query, catalog: Catalog) -> List[Diagnostic]:
    """ELS204 + ELS206: catalog consistency for every referenced column."""
    findings: List[Diagnostic] = []
    referenced: Dict[str, set] = {}
    for predicate in query.predicates:
        for column in predicate.columns:
            referenced.setdefault(column.table, set()).add(column.column)

    for table in query.tables:
        base = query.base_table(table)
        if base not in catalog:
            findings.append(
                _diag(
                    "ELS206",
                    f"no catalog statistics for table {base!r} "
                    f"(referenced as {table!r})",
                    Severity.ERROR,
                    context=table,
                    hint="register the table (Catalog.register / ANALYZE) first",
                )
            )
            continue
        stats = catalog.stats(base)
        for column in sorted(referenced.get(table, ())):
            if not stats.has_column(column):
                findings.append(
                    _diag(
                        "ELS206",
                        f"no statistics for column {table}.{column}",
                        Severity.ERROR,
                        context=f"{table}.{column}",
                        hint="collect column statistics before estimating",
                    )
                )
                continue
            distinct = stats.column(column).distinct
            if distinct > stats.row_count:
                findings.append(
                    _diag(
                        "ELS204",
                        f"column {table}.{column} has {distinct} distinct values "
                        f"but table {base!r} has only {stats.row_count} rows",
                        Severity.ERROR,
                        context=f"{table}.{column}",
                        hint="re-run statistics collection; d_x <= ||R|| must hold",
                    )
                )
    return findings


def _check_unfolded_jequiv(
    query: Query, equivalence: EquivalenceClasses
) -> List[Diagnostic]:
    """ELS205: same-table j-equivalent pairs need their local equality."""
    findings: List[Diagnostic] = []
    present = set(dedupe_predicates(query.predicates))
    for table in query.tables:
        for group in equivalence.single_table_groups(table):
            members = sorted(group)
            for i, left in enumerate(members):
                for right in members[i + 1 :]:
                    witness = ComparisonPredicate(left, Op.EQ, right).canonical()
                    if witness not in present:
                        findings.append(
                            _diag(
                                "ELS205",
                                f"j-equivalent columns {left} and {right} lack "
                                "the implied local equality predicate; the "
                                "Section 6 reduction would not fire",
                                Severity.WARNING,
                                context=str(witness),
                                hint="apply transitive closure (rule b derives it)",
                            )
                        )
    return findings


def _check_connectivity(query: Query) -> List[Diagnostic]:
    """ELS207: a disconnected join graph forces a Cartesian product."""
    tables = list(query.tables)
    if len(tables) < 2:
        return []
    parent: Dict[str, str] = {t: t for t in tables}

    def find(t: str) -> str:
        while parent[t] != t:
            parent[t] = parent[parent[t]]
            t = parent[t]
        return t

    for predicate in query.predicates:
        if predicate.is_join:
            involved = sorted(predicate.tables)
            for other in involved[1:]:
                parent[find(other)] = find(involved[0])
    components: Dict[str, List[str]] = {}
    for table in tables:
        components.setdefault(find(table), []).append(table)
    if len(components) < 2:
        return []
    groups = sorted(sorted(group) for group in components.values())
    rendered = " | ".join(",".join(group) for group in groups)
    return [
        _diag(
            "ELS207",
            f"join graph is disconnected ({len(groups)} components); every "
            "join order crosses a Cartesian product",
            Severity.WARNING,
            context=rendered,
            hint="add the linking join predicate or split the query",
        )
    ]
