"""Static analysis for the reproduction: code lint + query diagnostics.

Two cooperating layers share one :class:`~repro.lint.diagnostics.Diagnostic`
model and the text/JSON renderers:

* **Layer 1 — codebase lint** (:mod:`repro.lint.engine`,
  :mod:`repro.lint.rules_code`): a pure-stdlib ``ast`` rule framework with
  repo-specific rules ``ELS101``-``ELS106`` (urn arithmetic containment,
  selectivity clamping, float-equality bans, mutable defaults, ``__all__``
  completeness, bare excepts).  Exposed as ``repro-els lint`` and the
  ``repro-els-lint`` console script; the repo ships clean under its own
  rules.
* **Layer 2 — semantic query diagnostics** (:mod:`repro.lint.semantic`):
  checks ``ELS201``-``ELS207`` over the query IR and catalog — closure
  fixpoint, equivalence-partition consistency, contradictions, catalog
  sanity, Section 6 folding, join-graph connectivity.  Exposed as
  ``repro-els check`` and hooked into
  :class:`~repro.core.estimator.JoinSizeEstimator` behind
  ``EstimatorConfig.check_invariants``.

See ``docs/LINT.md`` for the complete code catalog with the paper
references behind every rule.
"""

from .diagnostics import (
    Diagnostic,
    Severity,
    code_matches,
    count_by_severity,
    filter_diagnostics,
    has_errors,
)
from .engine import (
    LintRule,
    ModuleUnderLint,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    register,
)
from .render import render_json, render_text
from .semantic import analyze_query, check_estimator_input

__all__ = [
    "Diagnostic",
    "Severity",
    "LintRule",
    "ModuleUnderLint",
    "all_rules",
    "analyze_query",
    "check_estimator_input",
    "code_matches",
    "count_by_severity",
    "filter_diagnostics",
    "has_errors",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
]
