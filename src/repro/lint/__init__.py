"""Static analysis for the reproduction: code lint + query diagnostics.

Seven cooperating layers share one :class:`~repro.lint.diagnostics.Diagnostic`
model and the text/JSON/SARIF renderers:

* **Layer 1 — codebase lint** (:mod:`repro.lint.engine`,
  :mod:`repro.lint.rules_code`): a pure-stdlib ``ast`` rule framework with
  repo-specific rules ``ELS101``-``ELS106`` (urn arithmetic containment,
  selectivity clamping, float-equality bans, mutable defaults, ``__all__``
  completeness, bare excepts).  Exposed as ``repro-els lint`` and the
  ``repro-els-lint`` console script; the repo ships clean under its own
  rules.
* **Layer 2 — semantic query diagnostics** (:mod:`repro.lint.semantic`):
  checks ``ELS201``-``ELS207`` over the query IR and catalog — closure
  fixpoint, equivalence-partition consistency, contradictions, catalog
  sanity, Section 6 folding, join-graph connectivity.  Exposed as
  ``repro-els check`` and hooked into
  :class:`~repro.core.estimator.JoinSizeEstimator` behind
  ``EstimatorConfig.check_invariants``.
* **Layer 3 — quantity dataflow** (:mod:`repro.lint.dataflow`): an
  interprocedural abstract interpretation (``ELS300``-``ELS306``) that
  tracks which of the paper's quantities — cardinalities ``||R||``,
  distinct counts ``d_x``, selectivities in ``[0, 1]`` — each expression
  carries and flags dimensionally invalid arithmetic.  Exposed behind
  ``repro-els lint --dataflow``.
* **Layer 4 — effects and determinism** (:mod:`repro.lint.effects`):
  bottom-up effect summaries (``ELS400``-``ELS407``) guarding the
  ground-truth caches and process-pool parallelism — cached-value
  mutation, ambient RNG on evaluation paths, unpicklable pool payloads,
  stale digests, set-iteration order, missing copy-on-return, and
  mutable cache keys.  Exposed behind ``repro-els lint --effects``.
* **Layer 5 — concurrency safety** (:mod:`repro.lint.concurrency`):
  lock-discipline, async-blocking, and resource-lifecycle analysis
  (``ELS500``-``ELS507``) over the same interprocedural index — unguarded
  mutation of ``# els: guarded_by=`` state, inconsistent lock-acquisition
  order, blocking calls inside ``async def``, locks held across blocking
  calls or ``await``, shared-memory and pool lifecycle leaks, and
  fork-unsafe import-state mutation in workers.  Exposed behind
  ``repro-els lint --concurrency``.
* **Layer 6 — hot-path performance** (:mod:`repro.lint.perf`): a
  bottom-up *hotness* fixpoint over the interprocedural call graph
  (roots: estimation/execution entry points, plus ``# els: hot=yes``
  pins; ``hot=no`` blocks propagation) gates hazard rules
  (``ELS600``-``ELS607``) that flag row-at-a-time iteration, quadratic
  membership tests and accumulation, repeated digest work, and
  allocation-heavy constructs inside loops — but only where the code is
  actually hot.  Exposed behind ``repro-els lint --perf``.
* **Layer 7 — contracts and architecture** (:mod:`repro.lint.contracts`):
  protocol-conformance checking for ``# els: registers=`` registries
  (``ELS701``/``ELS702``), a bottom-up raised-exception fixpoint that
  enforces the :class:`~repro.errors.ReproError` contract on the public
  API (``ELS703``-``ELS705``), and architecture enforcement — the
  ``layers.toml`` tier manifest against the real import graph plus
  import-cycle detection (``ELS706``) and public-API drift against the
  committed ``api-baseline.json`` (``ELS707``).  Exposed behind
  ``repro-els lint --contracts``.

Lint runs are **incremental** by default: a content-addressed cache
(:mod:`repro.lint.cache`, ``.repro-lint-cache/``) keyed by file bytes
and the rule-set fingerprint replays per-file findings and per-component
interprocedural results byte-identically, so warm runs re-analyze
nothing and a one-file edit re-analyzes only that file's dependency
component (``--no-cache`` bypasses it).

Inline ``# els: noqa`` / ``# els: noqa[ELS101]`` comments suppress
findings on their line (unused suppressions warn as ``ELS199``).  See
``docs/LINT.md`` for the complete code catalog with the paper references
behind every rule.
"""

from .cache import LintCache, content_digest, ruleset_fingerprint
from .concurrency import (
    CONCURRENCY_CODES,
    ConcurrencySummary,
    analyze_modules as analyze_concurrency_modules,
    analyze_source as analyze_concurrency_source,
)
from .contracts import (
    CONTRACT_CODES,
    analyze_modules as analyze_contract_modules,
    analyze_source as analyze_contract_source,
)
from .dataflow import (
    DATAFLOW_CODES,
    AbstractValue,
    Quantity,
    analyze_modules,
    analyze_source,
)
from .effects import (
    EFFECT_CODES,
    EffectSummary,
    analyze_modules as analyze_effect_modules,
    analyze_source as analyze_effect_source,
)
from .diagnostics import (
    Diagnostic,
    Severity,
    code_matches,
    count_by_severity,
    filter_diagnostics,
    has_errors,
)
from .engine import (
    LintRule,
    ModuleUnderLint,
    all_rules,
    iter_python_files,
    known_codes,
    lint_paths,
    lint_source,
    register,
)
from .perf import (
    PERF_CODES,
    HotIndex,
    analyze_modules as analyze_perf_modules,
    analyze_source as analyze_perf_source,
)
from .render import render_json, render_sarif, render_text
from .semantic import SEMANTIC_CODES, analyze_query, check_estimator_input

__all__ = [
    "CONCURRENCY_CODES",
    "CONTRACT_CODES",
    "DATAFLOW_CODES",
    "EFFECT_CODES",
    "PERF_CODES",
    "SEMANTIC_CODES",
    "AbstractValue",
    "ConcurrencySummary",
    "Diagnostic",
    "EffectSummary",
    "HotIndex",
    "LintCache",
    "Quantity",
    "Severity",
    "LintRule",
    "ModuleUnderLint",
    "all_rules",
    "analyze_concurrency_modules",
    "analyze_concurrency_source",
    "analyze_contract_modules",
    "analyze_contract_source",
    "analyze_effect_modules",
    "analyze_effect_source",
    "analyze_modules",
    "analyze_perf_modules",
    "analyze_perf_source",
    "analyze_query",
    "analyze_source",
    "check_estimator_input",
    "code_matches",
    "content_digest",
    "count_by_severity",
    "filter_diagnostics",
    "has_errors",
    "iter_python_files",
    "known_codes",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "ruleset_fingerprint",
]
