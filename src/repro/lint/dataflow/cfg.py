"""A small control-flow-graph builder over ``ast`` function bodies.

The dataflow solver (:mod:`repro.lint.dataflow.analysis`) needs join
points: a variable assigned a selectivity on one branch and a cardinality
on the other must read as TOP afterwards, and loop-carried state must
converge.  This module lowers one function body into basic blocks of
*elements* — plain statements plus synthetic branch-condition elements —
connected by successor edges.

Handled control flow: ``if``/``elif``/``else``, ``while``/``for`` (with
``else`` clauses, ``break``, ``continue``), ``try``/``except``/``finally``
(approximated: the try body may jump to every handler), ``with``,
``return``, and ``raise``.  ``match`` statements fall back to joining all
case bodies.  Nested function and class definitions are opaque single
elements — the analysis treats them as definitions, not control flow.

The graph is deliberately coarse — exceptions may fire mid-block, which a
sound exception-precise analysis would model; for the quantity domain the
only cost is that a handler sees slightly stale state, which can produce
TOP (silence), never a false violation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]

#: ``ast.Match`` exists from Python 3.10; isinstance against () is False.
_MATCH_TYPES = (ast.Match,) if hasattr(ast, "Match") else ()


@dataclass
class BasicBlock:
    """A straight-line run of elements with a shared set of successors."""

    block_id: int
    elements: List[ast.AST] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    def add_successor(self, block_id: int) -> None:
        if block_id not in self.successors:
            self.successors.append(block_id)


@dataclass
class ControlFlowGraph:
    """The per-function CFG: blocks, an entry block, and an exit block."""

    blocks: Dict[int, BasicBlock]
    entry: int
    exit: int

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors:
                preds[succ].append(block.block_id)
        return preds


class _Builder:
    """Lowers a statement list into blocks, tracking loop/exit targets."""

    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self.exit_block = self._new_block()
        # Stack of (continue_target, break_target) for nested loops.
        self._loops: List[Tuple[int, int]] = []

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks[block.block_id] = block
        return block

    def lower(self, body: Sequence[ast.stmt]) -> int:
        entry = self._new_block()
        end = self._lower_body(body, entry)
        if end is not None:
            end.add_successor(self.exit_block.block_id)
        return entry.block_id

    def _lower_body(
        self, body: Sequence[ast.stmt], current: BasicBlock
    ) -> Optional[BasicBlock]:
        """Lower statements into ``current``; returns the fall-through block
        (or ``None`` when every path left via return/raise/break/continue)."""
        for statement in body:
            if current is None:
                # Unreachable code after a terminator: give it its own
                # disconnected block so its expressions are still checked.
                current = self._new_block()
            if isinstance(statement, ast.If):
                current = self._lower_if(statement, current)
            elif isinstance(statement, (ast.While, ast.For, ast.AsyncFor)):
                current = self._lower_loop(statement, current)
            elif isinstance(statement, ast.Try):
                current = self._lower_try(statement, current)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                current.elements.extend(statement.items)
                current = self._lower_body(statement.body, current)
            elif _MATCH_TYPES and isinstance(statement, _MATCH_TYPES):
                current = self._lower_match(statement, current)
            elif isinstance(statement, (ast.Return, ast.Raise)):
                current.elements.append(statement)
                current.add_successor(self.exit_block.block_id)
                current = None
            elif isinstance(statement, ast.Break):
                if self._loops:
                    current.add_successor(self._loops[-1][1])
                current = None
            elif isinstance(statement, ast.Continue):
                if self._loops:
                    current.add_successor(self._loops[-1][0])
                current = None
            else:
                current.elements.append(statement)
        return current

    def _lower_if(self, statement: ast.If, current: BasicBlock) -> Optional[BasicBlock]:
        current.elements.append(statement.test)
        after = self._new_block()
        reachable = False
        for branch in (statement.body, statement.orelse or []):
            if not branch:
                current.add_successor(after.block_id)
                reachable = True
                continue
            branch_entry = self._new_block()
            current.add_successor(branch_entry.block_id)
            branch_end = self._lower_body(branch, branch_entry)
            if branch_end is not None:
                branch_end.add_successor(after.block_id)
                reachable = True
        return after if reachable else None

    def _lower_loop(self, statement: ast.stmt, current: BasicBlock) -> BasicBlock:
        header = self._new_block()
        current.add_successor(header.block_id)
        if isinstance(statement, ast.While):
            header.elements.append(statement.test)
        else:
            # ``for target in iter`` — the header both evaluates the
            # iterable and binds the target; represent with the stmt node
            # minus its body (the analysis special-cases For elements).
            header.elements.append(_ForHeader(statement))
        after = self._new_block()
        header.add_successor(after.block_id)
        body_entry = self._new_block()
        header.add_successor(body_entry.block_id)
        self._loops.append((header.block_id, after.block_id))
        body_end = self._lower_body(statement.body, body_entry)
        self._loops.pop()
        if body_end is not None:
            body_end.add_successor(header.block_id)
        orelse = getattr(statement, "orelse", None)
        if orelse:
            after = self._lower_body(orelse, after) or self._new_block()
        return after

    def _lower_try(self, statement: ast.Try, current: BasicBlock) -> Optional[BasicBlock]:
        after = self._new_block()
        body_end = self._lower_body(statement.body, current)
        handler_entries: List[BasicBlock] = []
        for handler in statement.handlers:
            entry = self._new_block()
            handler_entries.append(entry)
            # Any statement in the try body may raise: approximate with an
            # edge from the block that starts the try.
            current.add_successor(entry.block_id)
            handler_end = self._lower_body(handler.body, entry)
            if handler_end is not None:
                handler_end.add_successor(after.block_id)
        if body_end is not None:
            if statement.orelse:
                body_end = self._lower_body(statement.orelse, body_end)
            if body_end is not None:
                body_end.add_successor(after.block_id)
        if statement.finalbody:
            final_end = self._lower_body(statement.finalbody, after)
            if final_end is None:
                return None
            return final_end
        return after

    def _lower_match(self, statement: ast.Match, current: BasicBlock) -> BasicBlock:
        current.elements.append(statement.subject)
        after = self._new_block()
        current.add_successor(after.block_id)  # no case may match
        for case in statement.cases:
            entry = self._new_block()
            current.add_successor(entry.block_id)
            end = self._lower_body(case.body, entry)
            if end is not None:
                end.add_successor(after.block_id)
        return after


class _ForHeader:
    """Synthetic element: the ``target in iter`` binding of a for loop."""

    __slots__ = ("statement",)

    def __init__(self, statement: ast.stmt) -> None:
        self.statement = statement


def build_cfg(function: ast.AST) -> ControlFlowGraph:
    """Build the CFG of one ``FunctionDef``/``AsyncFunctionDef`` body."""
    builder = _Builder()
    entry = builder.lower(list(function.body))
    return ControlFlowGraph(
        blocks=builder.blocks, entry=entry, exit=builder.exit_block.block_id
    )
