"""Quantity seeding and ``# els:`` directive parsing.

Two cooperating conventions feed the dataflow analysis:

* **Naming** — the repository's identifiers already encode their
  dimension (``n_rows``, ``selected_rows``, ``d_x``, ``sel_eq``,
  ``left_distinct`` ...).  :func:`quantity_from_name` maps an identifier
  to a :class:`~repro.lint.dataflow.lattice.Quantity` by token, and the
  same mapping seeds parameters, attribute reads, and the summaries of
  functions the call graph cannot resolve.
* **Directives** — an explicit trailing comment overrides inference:

  .. code-block:: python

      def scale(raw):  # els: quantity=selectivity
          ...
      weight = lookup(x)  # els: quantity=cardinality
      risky_line()  # els: noqa
      other_line()  # els: noqa[ELS101,ELS303]

  ``quantity=...`` on a ``def`` line declares the function's *return*
  quantity; on any other line it declares the quantity of the assigned
  name(s).  ``noqa`` suppresses all (or the listed) diagnostics on its
  line; a suppression that matches nothing is itself reported (ELS199).
  ``effect=...`` on a ``def`` line overrides the effect summary inferred
  by :mod:`repro.lint.effects` (``pure``, ``mutates``, ``nondet``).
  ``guarded_by=<lock>`` on an attribute or module-global assignment
  declares that the stored state must only be mutated while holding the
  named lock (enforced as ELS501 by :mod:`repro.lint.concurrency`);
  ``blocking=yes|no`` on a ``def`` line pins the blocking-ness summary
  the same layer infers for ELS503/ELS504.
  ``hot=yes|no`` on a ``def`` line pins the hotness the ELS6xx
  performance layer (:mod:`repro.lint.perf`) infers: ``hot=yes`` makes
  the function a hot root, ``hot=no`` pins it cold and stops hotness
  propagating through it.
  ``registers=<Protocol>`` on a ``def`` line declares that the function
  is a registry decorator: classes decorated with it are registered
  against the named ``typing.Protocol`` and checked for structural
  conformance by the ELS7xx contract layer
  (:mod:`repro.lint.contracts`).

Directives are extracted with :mod:`tokenize`, so the marker inside a
string literal is never mistaken for a directive.  A comment that starts
with the ``els:`` marker but does not parse yields an ELS300 diagnostic
(ELS400 for the ``effect=`` family, ELS500 for the ``guarded_by=`` /
``blocking=`` family, ELS600 for the ``hot=`` family, ELS700 for the
``registers=`` family) — a silently ignored annotation would be worse
than none.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from .lattice import Quantity

__all__ = [
    "Directive",
    "MalformedDirective",
    "parse_directives",
    "quantity_from_name",
    "BLOCKING_ALIASES",
    "EFFECT_ALIASES",
    "HOT_ALIASES",
    "QUANTITY_ALIASES",
]

#: Accepted spellings on the right of ``quantity=``.
QUANTITY_ALIASES: Dict[str, Quantity] = {
    "cardinality": Quantity.CARDINALITY,
    "rows": Quantity.CARDINALITY,
    "selectivity": Quantity.SELECTIVITY,
    "distinct": Quantity.DISTINCT_COUNT,
    "distinct_count": Quantity.DISTINCT_COUNT,
    "ratio": Quantity.RATIO,
    "count": Quantity.COUNT,
    "any": Quantity.TOP,
    "top": Quantity.TOP,
}

#: Accepted spellings on the right of ``effect=`` -> canonical effect name.
EFFECT_ALIASES: Dict[str, str] = {
    "pure": "pure",
    "mutates": "mutates",
    "mutating": "mutates",
    "nondet": "nondet",
    "nondeterministic": "nondet",
}

#: Anchored at the start of the comment so prose that merely *mentions*
#: the marker (docs, examples) is never parsed as a directive.
_DIRECTIVE_RE = re.compile(r"^#\s*els:\s*(?P<body>.*)$")
_NOQA_RE = re.compile(r"^noqa(?:\[(?P<codes>[^\]]*)\])?$")
_QUANTITY_RE = re.compile(r"^quantity\s*=\s*(?P<name>[A-Za-z_]+)$")
_EFFECT_RE = re.compile(r"^effect\s*=\s*(?P<name>[A-Za-z_]+)$")
_GUARDED_RE = re.compile(r"^guarded_by\s*=\s*(?P<name>\S+)$")
_BLOCKING_RE = re.compile(r"^blocking\s*=\s*(?P<name>[A-Za-z_]+)$")
_HOT_RE = re.compile(r"^hot\s*=\s*(?P<name>[A-Za-z_]+)$")
_REGISTERS_RE = re.compile(r"^registers\s*=\s*(?P<name>\S+)$")
_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_CODE_RE = re.compile(r"^ELS\d{3}$")

#: Accepted spellings on the right of ``blocking=`` -> pinned value.
BLOCKING_ALIASES: Dict[str, bool] = {
    "yes": True,
    "true": True,
    "no": False,
    "false": False,
}

#: Accepted spellings on the right of ``hot=`` -> pinned value.
HOT_ALIASES: Dict[str, bool] = dict(BLOCKING_ALIASES)


@dataclass(frozen=True)
class Directive:
    """One parsed ``# els:`` comment.

    Attributes:
        line: 1-based source line the comment sits on.
        kind: ``"noqa"``, ``"quantity"``, ``"effect"``, ``"guarded_by"``,
            ``"blocking"``, ``"hot"``, or ``"registers"``.
        codes: For ``noqa``: the exact codes suppressed (``None`` means a
            blanket suppression of every code on the line).
        quantity: For ``quantity``: the declared dimension.
        effect: For ``effect``: the canonical declared effect
            (``"pure"``, ``"mutates"``, or ``"nondet"``).
        lock: For ``guarded_by``: the declared lock attribute/global name.
        blocking: For ``blocking``: the pinned blocking-ness.
        hot: For ``hot``: the pinned hotness.
        protocol: For ``registers``: the protocol class registrees of the
            decorated-with function must structurally satisfy.
    """

    line: int
    kind: str
    codes: Optional[FrozenSet[str]] = None
    quantity: Optional[Quantity] = None
    effect: Optional[str] = None
    lock: Optional[str] = None
    blocking: Optional[bool] = None
    hot: Optional[bool] = None
    protocol: Optional[str] = None


@dataclass(frozen=True)
class MalformedDirective:
    """An ``# els:`` comment that failed to parse.

    ``family`` routes the report to the owning layer: ``"effect"``
    directives are reported as ELS400 by :mod:`repro.lint.effects`,
    ``"concurrency"`` directives as ELS500 by
    :mod:`repro.lint.concurrency`, ``"perf"`` directives as ELS600 by
    :mod:`repro.lint.perf`, ``"contracts"`` directives as ELS700 by
    :mod:`repro.lint.contracts`, everything else as ELS300 by
    :mod:`repro.lint.dataflow`.
    """

    line: int
    col: int
    reason: str
    family: str = "general"


def parse_directives(
    source: str,
) -> Tuple[List[Directive], List[MalformedDirective]]:
    """Extract all ``# els:`` directives from one source file.

    Only genuine comment tokens are considered; the marker inside string
    literals is ignored.  A file that fails to tokenize (already reported
    as ELS100 by the engine) yields no directives.
    """
    directives: List[Directive] = []
    malformed: List[MalformedDirective] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return [], []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.match(token.string)
        if match is None:
            continue
        body = match.group("body").strip()
        line, col = token.start
        parsed = _parse_body(line, body)
        if isinstance(parsed, Directive):
            directives.append(parsed)
        else:
            family, reason = parsed
            malformed.append(MalformedDirective(line, col, reason, family))
    return directives, malformed


def _parse_body(line: int, body: str):
    """Parse one directive body.

    Returns a :class:`Directive`, or a ``(family, reason)`` error pair.
    """
    noqa = _NOQA_RE.match(body)
    if noqa is not None:
        raw_codes = noqa.group("codes")
        if raw_codes is None:
            return Directive(line, "noqa")
        codes = [c.strip().upper() for c in raw_codes.split(",") if c.strip()]
        if not codes:
            return ("noqa", "empty code list in 'noqa[...]'")
        bad = [c for c in codes if not _CODE_RE.match(c)]
        if bad:
            return (
                "noqa",
                f"invalid code(s) {', '.join(sorted(bad))} in 'noqa[...]'",
            )
        return Directive(line, "noqa", codes=frozenset(codes))
    quantity = _QUANTITY_RE.match(body)
    if quantity is not None:
        name = quantity.group("name").lower()
        if name not in QUANTITY_ALIASES:
            known = ", ".join(sorted(QUANTITY_ALIASES))
            return (
                "quantity",
                f"unknown quantity {name!r} (expected one of: {known})",
            )
        return Directive(line, "quantity", quantity=QUANTITY_ALIASES[name])
    effect = _EFFECT_RE.match(body)
    if effect is not None:
        name = effect.group("name").lower()
        if name not in EFFECT_ALIASES:
            known = ", ".join(sorted(set(EFFECT_ALIASES)))
            return (
                "effect",
                f"unknown effect {name!r} (expected one of: {known})",
            )
        return Directive(line, "effect", effect=EFFECT_ALIASES[name])
    guarded = _GUARDED_RE.match(body)
    if guarded is not None:
        name = guarded.group("name")
        if not _IDENTIFIER_RE.match(name):
            return (
                "concurrency",
                f"invalid lock name {name!r} in 'guarded_by=' "
                "(expected a bare identifier such as '_lock')",
            )
        return Directive(line, "guarded_by", lock=name)
    blocking = _BLOCKING_RE.match(body)
    if blocking is not None:
        name = blocking.group("name").lower()
        if name not in BLOCKING_ALIASES:
            known = ", ".join(sorted(BLOCKING_ALIASES))
            return (
                "concurrency",
                f"unknown blocking value {name!r} (expected one of: {known})",
            )
        return Directive(line, "blocking", blocking=BLOCKING_ALIASES[name])
    hot = _HOT_RE.match(body)
    if hot is not None:
        name = hot.group("name").lower()
        if name not in HOT_ALIASES:
            known = ", ".join(sorted(HOT_ALIASES))
            return (
                "perf",
                f"unknown hot value {name!r} (expected one of: {known})",
            )
        return Directive(line, "hot", hot=HOT_ALIASES[name])
    registers = _REGISTERS_RE.match(body)
    if registers is not None:
        name = registers.group("name")
        if not _IDENTIFIER_RE.match(name):
            return (
                "contracts",
                f"invalid protocol name {name!r} in 'registers=' "
                "(expected a bare class identifier such as "
                "'CardinalityEstimator')",
            )
        return Directive(line, "registers", protocol=name)
    return (
        "general",
        f"unrecognized directive {body!r} (expected 'noqa', 'noqa[...]', "
        "'quantity=...', 'effect=...', 'guarded_by=...', 'blocking=...', "
        "'hot=...', or 'registers=...')",
    )


# ---------------------------------------------------------------------------
# Naming convention
# ---------------------------------------------------------------------------

#: Substring tokens checked in order — first hit wins.  ``selectivit``
#: covers both ``selectivity`` and ``selectivities``.
_NAME_TOKENS: Tuple[Tuple[str, Quantity], ...] = (
    ("selectivit", Quantity.SELECTIVITY),
    ("distinct", Quantity.DISTINCT_COUNT),
    ("cardinalit", Quantity.CARDINALITY),
    ("row_count", Quantity.CARDINALITY),
    ("rows", Quantity.CARDINALITY),
    ("fraction", Quantity.SELECTIVITY),
)

#: Exact identifiers and prefix/suffix conventions from the paper's
#: notation: ``d_x`` distinct counts, ``sel_*`` selectivities.
_EXACT_NAMES: Dict[str, Quantity] = {
    "sel": Quantity.SELECTIVITY,
    "d": Quantity.DISTINCT_COUNT,
    "dx": Quantity.DISTINCT_COUNT,
}


def quantity_from_name(name: str) -> Optional[Quantity]:
    """Infer a quantity from an identifier, or ``None`` for no opinion."""
    lowered = name.lower().lstrip("_")
    if lowered in _EXACT_NAMES:
        return _EXACT_NAMES[lowered]
    if lowered.startswith("sel_"):
        return Quantity.SELECTIVITY
    if lowered.startswith("d_") or lowered.endswith("_d"):
        return Quantity.DISTINCT_COUNT
    for token, quantity in _NAME_TOKENS:
        if token in lowered:
            return quantity
    return None
