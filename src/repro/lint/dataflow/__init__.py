"""Interprocedural quantity-dimension dataflow analysis (ELS3xx).

The third analysis layer of :mod:`repro.lint`: an abstract interpretation
over the estimation arithmetic that keeps the paper's three kinds of
numbers — cardinalities, distinct counts, and selectivities — from being
combined in dimensionally invalid ways.  See :mod:`repro.lint.dataflow.
lattice` for the domain, :mod:`repro.lint.dataflow.analysis` for the
solver and the ELS300–ELS306 diagnostics, and docs/LINT.md for the user
guide.
"""

from .analysis import DATAFLOW_CODES, analyze_modules, analyze_source
from .annotations import (
    Directive,
    EFFECT_ALIASES,
    MalformedDirective,
    QUANTITY_ALIASES,
    parse_directives,
    quantity_from_name,
)
from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .lattice import (
    AbstractValue,
    BOTTOM,
    Quantity,
    TOP,
    binary_transfer,
    constant_value,
    join_values,
    min_max_transfer,
    seeded,
    unary_transfer,
)
from .summaries import FunctionInfo, ModuleInfo, Program, collect_program

__all__ = [
    "DATAFLOW_CODES",
    "analyze_modules",
    "analyze_source",
    "Directive",
    "EFFECT_ALIASES",
    "MalformedDirective",
    "QUANTITY_ALIASES",
    "parse_directives",
    "quantity_from_name",
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "AbstractValue",
    "BOTTOM",
    "Quantity",
    "TOP",
    "binary_transfer",
    "constant_value",
    "join_values",
    "min_max_transfer",
    "seeded",
    "unary_transfer",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "collect_program",
]
