"""Function discovery, call resolution, and bottom-up summaries.

The interprocedural layer is deliberately lightweight: every function and
method of the analyzed file set is indexed, calls are resolved by name
(same module first, then a unique global match, then ``self.method``
within the enclosing class), and each function carries one *summary* —
the abstract value of its return.  Summaries start from the declared
quantity (an ``# els: quantity=...`` directive on the ``def`` line, else
the naming convention applied to the function name) and are refined by
the fixpoint driver in :mod:`repro.lint.dataflow.analysis`, which
re-analyzes callers whenever a callee's summary changes — the classic
bottom-up scheme, iterated so mutual recursion converges on the finite
lattice.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .annotations import Directive, quantity_from_name
from .lattice import AbstractValue, Quantity, TOP, join_values, seeded

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "collect_program",
]


def _is_int_annotation(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Name) and node.id == "int"


@dataclass
class FunctionInfo:
    """One analyzable function or method.

    Attributes:
        module: The owning :class:`ModuleInfo`.
        qualname: ``name`` for module-level functions, ``Class.name`` for
            methods (one level of nesting — deeper nesting is opaque).
        node: The ``FunctionDef``/``AsyncFunctionDef`` node.
        declared: Quantity pinned by a ``def``-line directive, if any.
        name_quantity: Quantity suggested by the naming convention.
        returns_int: True when the return annotation is literally ``int``
            (drives the ELS303 coercion requirement).
        summary: Current abstract return value (refined to fixpoint).
    """

    module: "ModuleInfo"
    qualname: str
    node: ast.AST
    declared: Optional[Quantity] = None
    name_quantity: Optional[Quantity] = None
    returns_int: bool = False
    summary: AbstractValue = TOP

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def expected_return(self) -> Optional[Quantity]:
        """The quantity the function *promises* (declaration over naming)."""
        if self.declared is not None:
            return self.declared
        return self.name_quantity

    def initial_summary(self) -> AbstractValue:
        expected = self.expected_return
        if expected is None:
            return TOP
        return seeded(expected, coerced=self.returns_int)

    def param_seeds(self) -> Dict[str, AbstractValue]:
        """Abstract values of the parameters, from hints and naming."""
        args = self.node.args
        parameters: List[ast.arg] = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        seeds: Dict[str, AbstractValue] = {}
        for parameter in parameters:
            if parameter.arg in ("self", "cls"):
                continue
            quantity = quantity_from_name(parameter.arg)
            coerced = _is_int_annotation(parameter.annotation)
            if quantity is None:
                seeds[parameter.arg] = AbstractValue(Quantity.TOP, coerced=coerced)
            else:
                seeds[parameter.arg] = seeded(quantity, coerced=coerced)
        return seeds


@dataclass
class ModuleInfo:
    """One parsed module plus everything the analysis needs from it."""

    path: str
    tree: ast.Module
    directives: List[Directive] = field(default_factory=list)
    functions: List[FunctionInfo] = field(default_factory=list)
    #: Module-level ``NAME = <number literal>`` constants.
    constants: Dict[str, float] = field(default_factory=dict)
    #: Local alias -> imported terminal name (``from m import a as b``,
    #: ``import m.sub as s`` both land here keyed by the local alias).
    imports: Dict[str, str] = field(default_factory=dict)

    def directive_on_line(self, line: int) -> Optional[Directive]:
        for directive in self.directives:
            if directive.line == line and directive.kind == "quantity":
                return directive
        return None


@dataclass
class Program:
    """The whole analyzed file set with its cross-module function index."""

    modules: List[ModuleInfo]
    #: Terminal function name -> every function carrying it.
    by_name: Dict[str, List[FunctionInfo]] = field(default_factory=dict)

    def resolve_call(
        self, call: ast.Call, module: ModuleInfo, enclosing_class: Optional[str]
    ) -> Optional[FunctionInfo]:
        """Resolve a call to an analyzed function, or ``None``.

        Resolution order: ``self.method`` in the enclosing class; a
        same-module function; an imported name; a globally *unique*
        terminal name.  Ambiguous names stay unresolved — the caller
        falls back to the naming convention, which cannot produce false
        violations (unknown summaries are TOP-or-declared).
        """
        func = call.func
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and enclosing_class is not None
            ):
                return self._lookup(module, f"{enclosing_class}.{func.attr}")
            return self._global_unique(func.attr)
        if isinstance(func, ast.Name):
            local = self._lookup(module, func.id)
            if local is not None:
                return local
            target = module.imports.get(func.id, func.id)
            return self._global_unique(target)
        return None

    def _lookup(self, module: ModuleInfo, qualname: str) -> Optional[FunctionInfo]:
        for function in module.functions:
            if function.qualname == qualname:
                return function
        return None

    def _global_unique(self, name: str) -> Optional[FunctionInfo]:
        candidates = self.by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        if candidates:
            # Identical twins (e.g. re-exported wrappers) with agreeing
            # summaries are safe to merge; disagreement means unresolved.
            merged = candidates[0].summary
            for candidate in candidates[1:]:
                merged = join_values(merged, candidate.summary)
            if merged == candidates[0].summary:
                return candidates[0]
        return None

    def callers_of(self, function: FunctionInfo) -> List[FunctionInfo]:
        """Every analyzed function whose body calls ``function``."""
        result = []
        for module in self.modules:
            for candidate in module.functions:
                enclosing = (
                    candidate.qualname.rsplit(".", 1)[0]
                    if "." in candidate.qualname
                    else None
                )
                for node in ast.walk(candidate.node):
                    if isinstance(node, ast.Call):
                        if self.resolve_call(node, module, enclosing) is function:
                            result.append(candidate)
                            break
        return result


def _collect_functions(module: ModuleInfo) -> None:
    """Index module-level functions and one level of class methods."""
    function_types = (ast.FunctionDef, ast.AsyncFunctionDef)
    scopes: List[Tuple[Optional[str], Sequence[ast.stmt]]] = [(None, module.tree.body)]
    for class_name, body in list(scopes):
        for node in body:
            if isinstance(node, ast.ClassDef) and class_name is None:
                scopes.append((node.name, node.body))
            elif isinstance(node, function_types):
                qualname = f"{class_name}.{node.name}" if class_name else node.name
                directive = module.directive_on_line(node.lineno)
                info = FunctionInfo(
                    module=module,
                    qualname=qualname,
                    node=node,
                    declared=directive.quantity if directive else None,
                    name_quantity=quantity_from_name(node.name),
                    returns_int=_is_int_annotation(node.returns),
                )
                info.summary = info.initial_summary()
                module.functions.append(info)
    # Process class bodies appended during the first sweep.
    for class_name, body in scopes[1:]:
        for node in body:
            if isinstance(node, function_types):
                qualname = f"{class_name}.{node.name}"
                if any(f.qualname == qualname for f in module.functions):
                    continue
                directive = module.directive_on_line(node.lineno)
                info = FunctionInfo(
                    module=module,
                    qualname=qualname,
                    node=node,
                    declared=directive.quantity if directive else None,
                    name_quantity=quantity_from_name(node.name),
                    returns_int=_is_int_annotation(node.returns),
                )
                info.summary = info.initial_summary()
                module.functions.append(info)


def _collect_module_facts(module: ModuleInfo) -> None:
    """Record module-level numeric constants and import aliases."""
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if isinstance(target, ast.Name):
                literal = _numeric_literal(value)
                if literal is not None:
                    module.constants[target.id] = literal
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                module.imports[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                module.imports[local] = alias.name.rsplit(".", 1)[-1]


def _numeric_literal(node: ast.AST) -> Optional[float]:
    """Evaluate a constant numeric expression (literals and + - * /)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _numeric_literal(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
    ):
        left = _numeric_literal(node.left)
        right = _numeric_literal(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            return left / right
        except ZeroDivisionError:
            return None
    return None


def collect_program(
    parsed: Sequence[Tuple[str, ast.Module, List[Directive]]]
) -> Program:
    """Build the :class:`Program` index from parsed (path, tree, directives)."""
    modules: List[ModuleInfo] = []
    for path, tree, directives in parsed:
        module = ModuleInfo(path=path, tree=tree, directives=list(directives))
        _collect_module_facts(module)
        _collect_functions(module)
        modules.append(module)
    program = Program(modules=modules)
    for module in modules:
        for function in module.functions:
            program.by_name.setdefault(function.name, []).append(function)
    return program
