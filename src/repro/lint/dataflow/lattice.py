"""The ``Quantity`` lattice and its arithmetic transfer rules.

Algorithm ELS keeps three kinds of numbers straight — table/result
cardinalities ``||R||``, per-column distinct counts ``d_x``, and
selectivities in ``[0, 1]`` — and the paper's equations only ever combine
them in a handful of dimensionally valid ways:

* Equation 1/2: ``||R1|| * ||R2|| * S_J`` and ``S_J = 1 / max(d1, d2)``;
* Equation 3: cardinalities are divided by distinct counts, never the
  other way around;
* Section 5: ``d'_y = d_y * S_L`` (a selectivity scales a distinct count)
  and the urn model is the *only* sanctioned way to derive a surviving
  distinct count from a row count;
* Rule LS: ``min``/``max`` over selectivities of one equivalence class.

This module encodes those rules as an abstract domain.  An
:class:`AbstractValue` carries a :class:`Quantity` from a flat lattice plus
proof bits (``nonneg``/``le_one`` range facts, ``coerced`` for
integer-coerced results, ``clamp_result`` for values directly produced by a
clamp).  :func:`binary_transfer` folds two abstract operands through an
arithmetic operator and reports the violation code (``ELS301``/``ELS304``)
when the combination has no dimensionally valid reading.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Quantity",
    "AbstractValue",
    "TOP",
    "BOTTOM",
    "constant_value",
    "seeded",
    "join_values",
    "binary_transfer",
    "unary_transfer",
    "min_max_transfer",
]


class Quantity(enum.Enum):
    """The flat quantity lattice of the estimation arithmetic.

    ``BOTTOM`` is the unreachable/no-information element, ``TOP`` the
    "any number" element every incompatible join falls back to.
    ``CONSTANT`` marks numeric literals, which are polymorphic: a literal
    adopts the dimension of whatever it is combined with.
    """

    BOTTOM = "bottom"
    CONSTANT = "constant"
    COUNT = "count"
    RATIO = "ratio"
    SELECTIVITY = "selectivity"
    CARDINALITY = "cardinality"
    DISTINCT_COUNT = "distinct"
    TOP = "top"

    @property
    def is_concrete(self) -> bool:
        """True for the three dimensioned quantities the paper tracks."""
        return self in (
            Quantity.SELECTIVITY,
            Quantity.CARDINALITY,
            Quantity.DISTINCT_COUNT,
        )


@dataclass(frozen=True)
class AbstractValue:
    """One abstract number: a quantity plus proof bits.

    Attributes:
        quantity: Element of the :class:`Quantity` lattice.
        nonneg: Proven ``>= 0``.
        le_one: Proven ``<= 1``.
        coerced: Proven integer-valued (passed through ``ceil``/``int``/
            ``round``/``floor``, or an integer literal/parameter).
        clamp_result: Directly produced by a clamp operation — used to
            detect dead clamps (ELS305) without flagging defensive ones.
        const: The numeric value, when the value is a known literal.
    """

    quantity: Quantity
    nonneg: bool = False
    le_one: bool = False
    coerced: bool = False
    clamp_result: bool = False
    const: Optional[float] = None

    @property
    def bounded(self) -> bool:
        """Proven inside ``[0, 1]`` — the selectivity invariant."""
        return self.nonneg and self.le_one

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable mapping (for the incremental lint cache)."""
        return {
            "quantity": self.quantity.value,
            "nonneg": self.nonneg,
            "le_one": self.le_one,
            "coerced": self.coerced,
            "clamp_result": self.clamp_result,
            "const": self.const,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "AbstractValue":
        """Rebuild a value from :meth:`to_dict` (inverse round-trip).

        Raises:
            KeyError, ValueError, TypeError: on a malformed mapping (the
                cache treats these as a corrupt entry = cold miss).
        """
        const = row.get("const")
        return cls(
            quantity=Quantity(row["quantity"]),
            nonneg=bool(row.get("nonneg", False)),
            le_one=bool(row.get("le_one", False)),
            coerced=bool(row.get("coerced", False)),
            clamp_result=bool(row.get("clamp_result", False)),
            const=None if const is None else float(const),  # type: ignore[arg-type]
        )


TOP = AbstractValue(Quantity.TOP)
BOTTOM = AbstractValue(Quantity.BOTTOM)


def constant_value(value: float) -> AbstractValue:
    """Abstract a numeric literal (quantity-polymorphic, exact bits)."""
    return AbstractValue(
        Quantity.CONSTANT,
        nonneg=value >= 0,
        le_one=value <= 1,
        coerced=isinstance(value, int) or float(value).is_integer(),
        const=float(value),
    )


def seeded(quantity: Quantity, coerced: bool = False) -> AbstractValue:
    """The abstract value of a *declared* quantity (parameter or summary).

    Declared selectivities are assumed valid (in ``[0, 1]``): the checker
    verifies *producers* of selectivities, not every caller.  Declared
    cardinalities, distinct counts, and counts are assumed non-negative —
    the library validates that at its entry points.
    """
    if quantity is Quantity.SELECTIVITY:
        return AbstractValue(quantity, nonneg=True, le_one=True, coerced=coerced)
    if quantity in (Quantity.CARDINALITY, Quantity.DISTINCT_COUNT, Quantity.COUNT):
        return AbstractValue(quantity, nonneg=True, coerced=coerced)
    return AbstractValue(quantity, coerced=coerced)


def join_values(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound of two abstract values (control-flow merge)."""
    if a.quantity is Quantity.BOTTOM:
        return b
    if b.quantity is Quantity.BOTTOM:
        return a
    if a.quantity is b.quantity:
        quantity = a.quantity
    elif a.quantity is Quantity.CONSTANT:
        quantity = b.quantity
    elif b.quantity is Quantity.CONSTANT:
        quantity = a.quantity
    else:
        quantity = Quantity.TOP
    const = a.const if a.const is not None and a.const == b.const else None
    return AbstractValue(
        quantity,
        nonneg=a.nonneg and b.nonneg,
        le_one=a.le_one and b.le_one,
        coerced=a.coerced and b.coerced,
        clamp_result=a.clamp_result and b.clamp_result,
        const=const,
    )


# ---------------------------------------------------------------------------
# Binary transfer rules
# ---------------------------------------------------------------------------

_Q = Quantity

#: Additive combinations (``+``/``-``) keyed by unordered quantity pair.
#: A missing entry means TOP (unknown but legal); a string entry is the
#: violation code the combination raises.
_ADDITIVE: Dict[frozenset, object] = {
    frozenset((_Q.SELECTIVITY,)): _Q.RATIO,  # S + S may exceed 1
    frozenset((_Q.SELECTIVITY, _Q.RATIO)): _Q.RATIO,
    frozenset((_Q.SELECTIVITY, _Q.CARDINALITY)): "ELS301",
    frozenset((_Q.SELECTIVITY, _Q.DISTINCT_COUNT)): "ELS301",
    frozenset((_Q.CARDINALITY,)): _Q.CARDINALITY,
    frozenset((_Q.CARDINALITY, _Q.DISTINCT_COUNT)): "ELS304",
    frozenset((_Q.CARDINALITY, _Q.COUNT)): _Q.CARDINALITY,
    frozenset((_Q.DISTINCT_COUNT,)): _Q.DISTINCT_COUNT,
    frozenset((_Q.DISTINCT_COUNT, _Q.COUNT)): _Q.DISTINCT_COUNT,
    frozenset((_Q.RATIO,)): _Q.RATIO,
    frozenset((_Q.COUNT,)): _Q.COUNT,
}

#: Multiplicative combinations, unordered (multiplication commutes).
_MULTIPLICATIVE: Dict[frozenset, object] = {
    frozenset((_Q.SELECTIVITY,)): _Q.SELECTIVITY,  # bounded if both bounded
    frozenset((_Q.SELECTIVITY, _Q.CARDINALITY)): _Q.CARDINALITY,  # Eq. 1
    frozenset((_Q.SELECTIVITY, _Q.DISTINCT_COUNT)): _Q.DISTINCT_COUNT,  # d' = d*S
    frozenset((_Q.SELECTIVITY, _Q.RATIO)): _Q.RATIO,
    frozenset((_Q.CARDINALITY,)): _Q.CARDINALITY,  # ||R1|| * ||R2||
    frozenset((_Q.CARDINALITY, _Q.DISTINCT_COUNT)): "ELS304",
    frozenset((_Q.CARDINALITY, _Q.COUNT)): _Q.CARDINALITY,
    frozenset((_Q.CARDINALITY, _Q.RATIO)): _Q.CARDINALITY,
    frozenset((_Q.DISTINCT_COUNT,)): _Q.DISTINCT_COUNT,  # Eq. 3 divisors
    frozenset((_Q.DISTINCT_COUNT, _Q.COUNT)): _Q.DISTINCT_COUNT,
    frozenset((_Q.DISTINCT_COUNT, _Q.RATIO)): _Q.DISTINCT_COUNT,
    frozenset((_Q.RATIO,)): _Q.RATIO,
    frozenset((_Q.COUNT,)): _Q.COUNT,
}

#: Division combinations, keyed by *ordered* (numerator, denominator).
_DIVISION: Dict[Tuple[Quantity, Quantity], Quantity] = {
    (_Q.CARDINALITY, _Q.DISTINCT_COUNT): _Q.CARDINALITY,  # Eq. 3
    (_Q.CARDINALITY, _Q.CARDINALITY): _Q.RATIO,  # ||R||'/||R||
    (_Q.CARDINALITY, _Q.COUNT): _Q.CARDINALITY,
    (_Q.CARDINALITY, _Q.RATIO): _Q.CARDINALITY,
    (_Q.DISTINCT_COUNT, _Q.DISTINCT_COUNT): _Q.RATIO,
    (_Q.DISTINCT_COUNT, _Q.CARDINALITY): _Q.RATIO,
    (_Q.DISTINCT_COUNT, _Q.COUNT): _Q.DISTINCT_COUNT,
    (_Q.DISTINCT_COUNT, _Q.RATIO): _Q.DISTINCT_COUNT,
    (_Q.SELECTIVITY, _Q.SELECTIVITY): _Q.RATIO,
    (_Q.RATIO, _Q.RATIO): _Q.RATIO,
    (_Q.RATIO, _Q.COUNT): _Q.RATIO,
    (_Q.COUNT, _Q.COUNT): _Q.RATIO,
}


def _fold_constants(op: ast.operator, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Evaluate a literal-literal operation when both values are known."""
    if a.const is None or b.const is None:
        return AbstractValue(Quantity.CONSTANT)
    try:
        if isinstance(op, ast.Add):
            result = a.const + b.const
        elif isinstance(op, ast.Sub):
            result = a.const - b.const
        elif isinstance(op, ast.Mult):
            result = a.const * b.const
        elif isinstance(op, (ast.Div, ast.FloorDiv)):
            result = a.const / b.const
        elif isinstance(op, ast.Pow):
            result = a.const ** b.const
        else:
            return AbstractValue(Quantity.CONSTANT)
    except (ZeroDivisionError, OverflowError, ValueError):
        return AbstractValue(Quantity.CONSTANT)
    return constant_value(result)


def _additive(
    op: ast.operator, left: AbstractValue, right: AbstractValue
) -> Tuple[AbstractValue, Optional[str]]:
    if left.quantity is Quantity.CONSTANT and right.quantity is Quantity.CONSTANT:
        return _fold_constants(op, left, right), None
    if Quantity.CONSTANT in (left.quantity, right.quantity):
        other = right if left.quantity is Quantity.CONSTANT else left
        # ``1 - S`` and friends: a literal shifted by a selectivity is a
        # ratio (it can leave [0, 1]); other quantities keep their dimension.
        if other.quantity in (Quantity.SELECTIVITY, Quantity.RATIO):
            return AbstractValue(Quantity.RATIO, coerced=False), None
        return replace(other, nonneg=False, le_one=False, clamp_result=False,
                       coerced=left.coerced and right.coerced, const=None), None
    entry = _ADDITIVE.get(frozenset((left.quantity, right.quantity)))
    if entry is None:
        return TOP, None
    if isinstance(entry, str):
        return TOP, entry
    nonneg = left.nonneg and right.nonneg and isinstance(op, ast.Add)
    return AbstractValue(entry, nonneg=nonneg,
                         coerced=left.coerced and right.coerced), None


def _multiplicative(
    left: AbstractValue, right: AbstractValue
) -> Tuple[AbstractValue, Optional[str]]:
    if left.quantity is Quantity.CONSTANT and right.quantity is Quantity.CONSTANT:
        return _fold_constants(ast.Mult(), left, right), None
    if Quantity.CONSTANT in (left.quantity, right.quantity):
        const = left if left.quantity is Quantity.CONSTANT else right
        other = right if left.quantity is Quantity.CONSTANT else left
        # Scaling by a literal preserves the dimension; range facts survive
        # only when the literal itself sits inside [0, 1].
        in_range = const.nonneg and const.le_one
        return replace(
            other,
            nonneg=other.nonneg and const.nonneg,
            le_one=other.le_one and in_range,
            coerced=other.coerced and const.coerced,
            clamp_result=False,
            const=None,
        ), None
    entry = _MULTIPLICATIVE.get(frozenset((left.quantity, right.quantity)))
    if entry is None:
        return TOP, None
    if isinstance(entry, str):
        return TOP, entry
    return AbstractValue(
        entry,
        nonneg=left.nonneg and right.nonneg,
        le_one=left.bounded and right.bounded,
        coerced=left.coerced and right.coerced,
    ), None


def _division(
    left: AbstractValue, right: AbstractValue
) -> Tuple[AbstractValue, Optional[str]]:
    if left.quantity is Quantity.CONSTANT and right.quantity is Quantity.CONSTANT:
        return _fold_constants(ast.Div(), left, right), None
    if left.quantity is Quantity.CONSTANT:
        # Equation 2: a literal in (0, 1] over a distinct count is a valid
        # selectivity (catalog distinct counts are integers >= 1 whenever a
        # predicate can reference the column).
        if right.quantity is Quantity.DISTINCT_COUNT:
            bounded = left.const is not None and 0 <= left.const <= 1
            return AbstractValue(
                Quantity.SELECTIVITY, nonneg=bounded, le_one=bounded
            ), None
        if right.quantity is Quantity.CARDINALITY:
            return AbstractValue(Quantity.RATIO, nonneg=left.nonneg), None
        return TOP, None
    if right.quantity is Quantity.CONSTANT:
        return replace(
            left, le_one=False, coerced=False, clamp_result=False, const=None
        ), None
    entry = _DIVISION.get((left.quantity, right.quantity))
    if entry is None:
        return TOP, None
    nonneg = left.nonneg and right.nonneg
    # A ratio of two same-dimension non-negative values is only <= 1 when
    # the numerator is proven no larger — which this domain cannot see.
    return AbstractValue(entry, nonneg=nonneg), None


def binary_transfer(
    op: ast.operator, left: AbstractValue, right: AbstractValue
) -> Tuple[AbstractValue, Optional[str]]:
    """Abstractly evaluate ``left op right``.

    Returns the result value and the violation code (``"ELS301"`` or
    ``"ELS304"``) when the combination is dimensionally invalid, else
    ``None``.  ``BOTTOM``/``TOP`` operands never raise a violation — the
    checker only reports on *proven* quantities.
    """
    for operand in (left, right):
        if operand.quantity is Quantity.BOTTOM:
            return BOTTOM, None
    if Quantity.TOP in (left.quantity, right.quantity):
        return TOP, None
    if isinstance(op, (ast.Add, ast.Sub)):
        return _additive(op, left, right)
    if isinstance(op, ast.Mult):
        return _multiplicative(left, right)
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        result, code = _division(left, right)
        if isinstance(op, ast.FloorDiv):
            result = replace(result, coerced=True)
        return result, code
    if isinstance(op, ast.Pow) and left.quantity is Quantity.CONSTANT \
            and right.quantity is Quantity.CONSTANT:
        return _fold_constants(op, left, right), None
    return TOP, None


def unary_transfer(op: ast.unaryop, operand: AbstractValue) -> AbstractValue:
    """Abstractly evaluate a unary operation (negation drops range facts)."""
    if isinstance(op, ast.UAdd):
        return operand
    if isinstance(op, ast.USub):
        if operand.const is not None:
            return constant_value(-operand.const)
        return replace(
            operand, nonneg=False, le_one=operand.nonneg, clamp_result=False
        )
    return TOP


def min_max_transfer(args: Sequence[AbstractValue]) -> AbstractValue:
    """Abstract ``min``/``max`` over the argument values.

    The quantity is the lattice join of the non-literal arguments, with one
    sanctioned special case: ``min``/``max`` of a distinct count against a
    cardinality is the paper's *row cap* (``d' <= ceil(||R||')``) and
    answers with the distinct count's dimension.  Range facts follow the
    usual conservative conjunction; callers layer clamp recognition
    (``min(1.0, x)`` / ``max(0.0, x)``) on top.
    """
    concrete = [a for a in args if a.quantity is not Quantity.CONSTANT]
    if not concrete:
        folded = BOTTOM
        for a in args:
            folded = join_values(folded, a)
        return folded
    quantities = {a.quantity for a in concrete}
    if quantities == {Quantity.DISTINCT_COUNT, Quantity.CARDINALITY}:
        result = AbstractValue(
            Quantity.DISTINCT_COUNT,
            nonneg=all(a.nonneg for a in args),
            coerced=all(a.coerced for a in args),
        )
        return result
    folded = BOTTOM
    for a in concrete:
        folded = join_values(folded, a)
    return replace(
        folded,
        nonneg=all(a.nonneg for a in args),
        le_one=all(a.le_one for a in args),
        coerced=all(a.coerced for a in args),
        clamp_result=all(a.clamp_result for a in args),
        const=None,
    )
