"""The worklist fixpoint solver and the ELS3xx diagnostics.

One :class:`_FunctionAnalyzer` abstractly interprets a single function
over its CFG (:mod:`repro.lint.dataflow.cfg`): every basic block's input
environment is the join of its predecessors' outputs, statements are
folded through the transfer rules of
:mod:`repro.lint.dataflow.lattice`, and blocks re-enter the worklist
until nothing changes.  The interprocedural driver
(:func:`analyze_modules`) first iterates function summaries bottom-up to
their fixpoint, then runs one reporting pass that emits diagnostics:

========  ========================================================
ELS300    malformed ``# els:`` directive
ELS301    dimension-mismatched additive arithmetic
ELS302    selectivity may escape ``[0, 1]`` without a clamp
ELS303    cardinality/distinct count returned without int coercion
ELS304    distinct count combined with cardinality outside the urn model
ELS305    dead clamp (warning)
ELS306    call argument quantity mismatch
========  ========================================================

The pass is *optimistic*: TOP and unresolved values never fire a
diagnostic, so every report rests on a quantity the analysis actually
proved (from a literal, a naming-convention seed, a directive, or a
function summary).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, Severity
from .annotations import parse_directives, quantity_from_name
from .cfg import ControlFlowGraph, build_cfg, _ForHeader
from .lattice import (
    AbstractValue,
    BOTTOM,
    Quantity,
    TOP,
    binary_transfer,
    constant_value,
    join_values,
    min_max_transfer,
    seeded,
    unary_transfer,
)
from .summaries import FunctionInfo, ModuleInfo, Program, collect_program

__all__ = ["DATAFLOW_CODES", "analyze_modules", "analyze_source"]

#: Code -> (summary, severity) for every diagnostic this layer can emit.
DATAFLOW_CODES: Dict[str, Tuple[str, Severity]] = {
    "ELS300": ("malformed '# els:' directive", Severity.ERROR),
    "ELS301": ("dimension-mismatched additive arithmetic", Severity.ERROR),
    "ELS302": ("selectivity may escape [0, 1] without a clamp", Severity.ERROR),
    "ELS303": ("cardinality returned without integer coercion", Severity.ERROR),
    "ELS304": (
        "distinct count combined with cardinality outside the urn model",
        Severity.ERROR,
    ),
    "ELS305": ("dead clamp", Severity.WARNING),
    "ELS306": ("call argument quantity mismatch", Severity.ERROR),
}

_QUANTITY_LABEL = {
    Quantity.SELECTIVITY: "selectivity",
    Quantity.CARDINALITY: "cardinality",
    Quantity.DISTINCT_COUNT: "distinct count",
    Quantity.RATIO: "ratio",
    Quantity.COUNT: "count",
    Quantity.CONSTANT: "constant",
    Quantity.TOP: "unknown",
    Quantity.BOTTOM: "unreachable",
}

#: Calls that coerce to an integer while preserving the quantity.
_COERCING_CALLS = frozenset({"ceil", "floor", "round", "int", "trunc"})
#: ``math`` members that destroy any dimensional reading.
_OPAQUE_MATH = frozenset(
    {"exp", "expm1", "log", "log1p", "log2", "log10", "sqrt", "pow", "e", "pi"}
)

_MAX_BLOCK_VISITS = 64


def _op_symbol(op: ast.operator) -> str:
    return {
        ast.Add: "+",
        ast.Sub: "-",
        ast.Mult: "*",
        ast.Div: "/",
        ast.FloorDiv: "//",
        ast.Pow: "**",
        ast.Mod: "%",
    }.get(type(op), "?")


class _Env:
    """A mutable variable -> :class:`AbstractValue` environment."""

    __slots__ = ("values",)

    def __init__(self, values: Optional[Dict[str, AbstractValue]] = None) -> None:
        self.values: Dict[str, AbstractValue] = dict(values or {})

    def copy(self) -> "_Env":
        return _Env(self.values)

    def join_into(self, other: "_Env") -> bool:
        """Join ``other`` into this env; True when anything changed.

        A name bound on only one side keeps its binding: the unbound side
        either cannot reach the use at runtime (``UnboundLocalError``) or
        re-seeds from the naming convention anyway.
        """
        changed = False
        for name, incoming in other.values.items():
            existing = self.values.get(name)
            if existing is None:
                self.values[name] = incoming
                changed = True
            else:
                joined = join_values(existing, incoming)
                if joined != existing:
                    self.values[name] = joined
                    changed = True
        return changed


class _FunctionAnalyzer:
    """Abstractly interpret one function body to a fixpoint."""

    def __init__(
        self,
        program: Program,
        module: ModuleInfo,
        function: FunctionInfo,
        emit: bool,
    ) -> None:
        self.program = program
        self.module = module
        self.function = function
        self.emit = emit
        self.diagnostics: List[Diagnostic] = []
        self._reported: Set[Tuple[int, int, str]] = set()
        #: Names bound through an explicit ``quantity=`` directive: the
        #: naming-convention fallback must not override the declaration
        #: (in particular ``quantity=any``, which *silences* a name).
        self._pinned: Set[str] = set()
        self.return_value: AbstractValue = BOTTOM
        enclosing = function.qualname.rsplit(".", 1)
        self._enclosing_class = enclosing[0] if len(enclosing) == 2 else None

    # -- driver ------------------------------------------------------------

    def run(self) -> AbstractValue:
        """Solve the CFG; returns the joined abstract return value."""
        cfg: ControlFlowGraph = build_cfg(self.function.node)
        env_in: Dict[int, _Env] = {cfg.entry: _Env(self.function.param_seeds())}
        visits: Dict[int, int] = {}
        worklist: List[int] = [cfg.entry]
        while worklist:
            block_id = worklist.pop(0)
            visits[block_id] = visits.get(block_id, 0) + 1
            if visits[block_id] > _MAX_BLOCK_VISITS:
                continue  # termination backstop; the lattice is finite
            block = cfg.blocks[block_id]
            env = env_in.get(block_id, _Env()).copy()
            # Only the final visit of each block should report; clear and
            # re-derive instead of tracking per-visit provenance.
            for element in block.elements:
                self._transfer(element, env)
            for successor in block.successors:
                if successor not in env_in:
                    env_in[successor] = env.copy()
                    worklist.append(successor)
                elif env_in[successor].join_into(env):
                    if successor not in worklist:
                        worklist.append(successor)
        return self.return_value

    # -- statement transfer ------------------------------------------------

    def _transfer(self, element: object, env: _Env) -> None:
        if isinstance(element, _ForHeader):
            self._bind_for_header(element.statement, env)
            return
        if isinstance(element, ast.withitem):
            self._eval(element.context_expr, env)
            if isinstance(element.optional_vars, ast.Name):
                env.values[element.optional_vars.id] = TOP
            return
        if isinstance(element, ast.expr):
            self._eval(element, env)
            return
        if isinstance(element, ast.Assign):
            value = self._eval(element.value, env)
            declared = self._declared_quantity(element.lineno)
            for target in element.targets:
                self._bind_target(target, value, env, declared, element.value)
        elif isinstance(element, ast.AnnAssign):
            value = TOP if element.value is None else self._eval(element.value, env)
            if _is_int_name(element.annotation):
                value = AbstractValue(
                    value.quantity, nonneg=value.nonneg, le_one=value.le_one,
                    coerced=True, const=value.const,
                )
            declared = self._declared_quantity(element.lineno)
            self._bind_target(element.target, value, env, declared, element.value)
        elif isinstance(element, ast.AugAssign):
            if isinstance(element.target, ast.Name):
                current = self._read_name(element.target.id, env)
                operand = self._eval(element.value, env)
                result, code = binary_transfer(element.op, current, operand)
                if code:
                    self._report_binop(code, element, current, element.op, operand)
                env.values[element.target.id] = result
            else:
                self._eval(element.value, env)
        elif isinstance(element, ast.Return):
            value = BOTTOM if element.value is None \
                else self._eval(element.value, env)
            if element.value is not None:
                self._check_return(element, value)
                self.return_value = join_values(self.return_value, value)
        elif isinstance(element, ast.Expr):
            self._eval(element.value, env)
        elif isinstance(element, ast.Assert):
            self._eval(element.test, env)
        elif isinstance(element, ast.Raise):
            if element.exc is not None:
                self._eval(element.exc, env)
        elif isinstance(element, ast.Delete):
            for target in element.targets:
                if isinstance(target, ast.Name):
                    env.values.pop(target.id, None)
        elif isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env.values[element.name] = TOP

    def _bind_for_header(self, statement: ast.stmt, env: _Env) -> None:
        iterable = self._eval(statement.iter, env)
        element_value = TOP
        if isinstance(statement.iter, ast.Call) and _call_name(statement.iter) == "range":
            element_value = AbstractValue(Quantity.COUNT, nonneg=True, coerced=True)
        elif iterable.quantity.is_concrete or iterable.quantity in (
            Quantity.COUNT, Quantity.RATIO
        ):
            # Containers collapse to their element quantity, so iterating
            # a list of selectivities yields a selectivity.
            element_value = AbstractValue(
                iterable.quantity, nonneg=iterable.nonneg,
                le_one=iterable.le_one, coerced=iterable.coerced,
            )
        target = statement.target
        if isinstance(target, ast.Name):
            env.values[target.id] = element_value
        else:
            for name in _target_names(target):
                env.values[name] = TOP

    def _bind_target(
        self,
        target: ast.expr,
        value: AbstractValue,
        env: _Env,
        declared: Optional[Quantity],
        value_node: Optional[ast.expr],
    ) -> None:
        if isinstance(target, ast.Name):
            if declared is not None:
                env.values[target.id] = seeded(declared, coerced=value.coerced)
                self._pinned.add(target.id)
            else:
                env.values[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = None
            if isinstance(value_node, (ast.Tuple, ast.List)) \
                    and len(value_node.elts) == len(target.elts):
                elements = [self._eval(e, env) for e in value_node.elts]
            for index, sub in enumerate(target.elts):
                sub_value = elements[index] if elements is not None else TOP
                self._bind_target(sub, sub_value, env, declared, None)
            return
        # Attribute / Subscript targets: the store is opaque.

    def _declared_quantity(self, line: int) -> Optional[Quantity]:
        directive = self.module.directive_on_line(line)
        return directive.quantity if directive is not None else None

    # -- expression evaluation ---------------------------------------------

    def _eval(self, node: ast.expr, env: _Env) -> AbstractValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return TOP
            return constant_value(node.value)
        if isinstance(node, ast.Name):
            return self._read_name(node.id, env)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            result, code = binary_transfer(node.op, left, right)
            if code:
                self._report_binop(code, node, left, node.op, right)
            return result
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                self._eval(node.operand, env)
                return TOP
            return unary_transfer(node.op, self._eval(node.operand, env))
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Attribute):
            self._eval_opaque_children(node.value, env)
            quantity = quantity_from_name(node.attr)
            return seeded(quantity) if quantity is not None else TOP
        if isinstance(node, ast.Subscript):
            container = self._eval(node.value, env)
            self._eval_opaque_children(node.slice, env)
            return AbstractValue(
                container.quantity, nonneg=container.nonneg,
                le_one=container.le_one, coerced=container.coerced,
            )
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return join_values(self._eval(node.body, env), self._eval(node.orelse, env))
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
            return TOP
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            folded = BOTTOM
            for element in node.elts:
                folded = join_values(folded, self._eval(element, env))
            return folded if folded is not BOTTOM else TOP
        if isinstance(node, ast.Dict):
            folded = BOTTOM
            for key in node.keys:
                if key is not None:
                    self._eval(key, env)
            for value in node.values:
                folded = join_values(folded, self._eval(value, env))
            return folded if folded is not BOTTOM else TOP
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, node.elt, env)
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(node, node.value, env)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if hasattr(ast, "NamedExpr") and isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env.values[node.target.id] = value
            return value
        return TOP

    def _eval_comprehension(
        self, node: ast.expr, element: ast.expr, env: _Env
    ) -> AbstractValue:
        inner = env.copy()
        for generator in node.generators:
            iterable = self._eval(generator.iter, inner)
            for name in _target_names(generator.target):
                if iterable.quantity.is_concrete:
                    inner.values[name] = AbstractValue(
                        iterable.quantity, nonneg=iterable.nonneg,
                        le_one=iterable.le_one, coerced=iterable.coerced,
                    )
                else:
                    inner.values[name] = TOP
            for condition in generator.ifs:
                self._eval(condition, inner)
        return self._eval(element, inner)

    def _eval_opaque_children(self, node: ast.expr, env: _Env) -> None:
        """Evaluate for side diagnostics only; the result is discarded."""
        if isinstance(node, ast.expr):
            self._eval(node, env)

    def _read_name(self, name: str, env: _Env) -> AbstractValue:
        value = env.values.get(name)
        if value is not None and (value != TOP or name in self._pinned):
            return value
        if name in self.module.constants:
            return constant_value(self.module.constants[name])
        quantity = quantity_from_name(name)
        if quantity is not None:
            return seeded(quantity)
        return value if value is not None else TOP

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, node: ast.Call, env: _Env) -> AbstractValue:
        args = [self._eval(argument, env) for argument in node.args]
        keyword_args = {
            keyword.arg: self._eval(keyword.value, env)
            for keyword in node.keywords
            if keyword.arg is not None
        }
        for keyword in node.keywords:
            if keyword.arg is None:
                self._eval(keyword.value, env)
        name = _call_name(node)

        if name in ("min", "max") and not node.keywords:
            return self._eval_min_max(node, name, args)
        if name in _COERCING_CALLS and len(args) >= 1:
            base = args[0]
            return AbstractValue(
                base.quantity, nonneg=base.nonneg, le_one=base.le_one,
                coerced=True, clamp_result=base.clamp_result,
            )
        if name == "float" and len(args) == 1:
            return args[0]
        if name == "abs" and len(args) == 1:
            base = args[0]
            return AbstractValue(
                base.quantity, nonneg=True, le_one=base.bounded,
                coerced=base.coerced,
            )
        if name == "len":
            return AbstractValue(Quantity.COUNT, nonneg=True, coerced=True)
        if name == "sum" and args:
            element = args[0]
            if element.quantity in (Quantity.SELECTIVITY, Quantity.RATIO):
                return AbstractValue(Quantity.RATIO, nonneg=element.nonneg)
            return AbstractValue(
                element.quantity, nonneg=element.nonneg, coerced=element.coerced
            )
        if name in ("prod", "product") and args:
            element = args[0]
            return AbstractValue(
                element.quantity,
                nonneg=element.nonneg,
                le_one=element.bounded,
                coerced=element.coerced,
            )
        if name == "sorted" and args:
            return args[0]
        if _is_math_attribute(node.func) and node.func.attr in _OPAQUE_MATH:
            return TOP

        callee = self.program.resolve_call(node, self.module, self._enclosing_class)
        if callee is not None:
            self._check_call_arguments(node, callee, args, keyword_args)
            return callee.summary
        quantity = quantity_from_name(name) if name else None
        if quantity is not None:
            return seeded(quantity)
        return TOP

    def _eval_min_max(
        self, node: ast.Call, name: str, args: Sequence[AbstractValue]
    ) -> AbstractValue:
        if not args:
            return TOP
        if len(args) == 1:
            # min(iterable): collapse to the element quantity.
            base = args[0]
            return AbstractValue(
                base.quantity, nonneg=base.nonneg, le_one=base.le_one,
                coerced=base.coerced,
            )
        base = min_max_transfer(list(args))
        has_const_bound = any(a.const is not None for a in args)
        if name == "min":
            # min is <= every argument, so any proven bound survives.
            nonneg = all(a.nonneg for a in args)
            le_one = any(a.le_one for a in args)
        else:
            nonneg = any(a.nonneg for a in args)
            le_one = all(a.le_one for a in args)
        self._check_dead_clamp(node, name, args)
        return AbstractValue(
            base.quantity,
            nonneg=nonneg,
            le_one=le_one,
            coerced=all(a.coerced for a in args),
            clamp_result=has_const_bound,
        )

    def _check_call_arguments(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        args: Sequence[AbstractValue],
        keyword_args: Dict[str, AbstractValue],
    ) -> None:
        callee_args = callee.node.args
        if callee_args.vararg is not None or any(
            isinstance(argument, ast.Starred) for argument in node.args
        ):
            return
        parameters = [
            parameter.arg
            for parameter in list(callee_args.posonlyargs) + list(callee_args.args)
            if parameter.arg not in ("self", "cls")
        ]
        pairs: List[Tuple[str, AbstractValue, ast.AST]] = []
        for index, value in enumerate(args):
            if index < len(parameters):
                pairs.append((parameters[index], value, node.args[index]))
        for keyword in node.keywords:
            if keyword.arg in keyword_args and keyword.arg in parameters:
                pairs.append((keyword.arg, keyword_args[keyword.arg], keyword.value))
        for parameter, value, arg_node in pairs:
            expected = quantity_from_name(parameter)
            if expected is None or not expected.is_concrete:
                continue
            if not value.quantity.is_concrete or value.quantity is expected:
                continue
            self._report(
                "ELS306",
                f"argument for parameter {parameter!r} of "
                f"{callee.qualname}() is a {_QUANTITY_LABEL[value.quantity]}, "
                f"but the parameter expects a {_QUANTITY_LABEL[expected]}",
                arg_node,
                hint="convert the value to the expected quantity or rename "
                "the parameter if the convention mislabels it",
            )

    # -- diagnostics ---------------------------------------------------------

    def _check_dead_clamp(
        self, node: ast.Call, name: str, args: Sequence[AbstractValue]
    ) -> None:
        """ELS305: a bound that provably cannot bind.

        Two shapes are reported: a constant operand already inside the
        bound (``min(1.0, 0.5)``), and a same-direction clamp immediately
        re-applied (``min(1.0, min(1.0, x))``).  Defensive clamps of
        merely *assumed*-bounded values stay silent.
        """
        bounds = [a.const for a in args if a.const is not None]
        operands = [
            (value, arg_node)
            for value, arg_node in zip(args, node.args)
            if value.const is None
        ]
        if not bounds or not operands:
            # All-constant clamps (min(1.0, 0.5)) fold; flag when one
            # constant makes the others unreachable.
            if len(bounds) >= 2:
                chosen = min(bounds) if name == "min" else max(bounds)
                if all(b == chosen for b in bounds):
                    return
                self._report(
                    "ELS305",
                    f"{name}() over constants always picks {chosen}",
                    node,
                    severity=Severity.WARNING,
                    hint="drop the redundant bound",
                )
            return
        bound = min(bounds) if name == "min" else max(bounds)
        for value, arg_node in operands:
            redundant_const = value.const is not None and (
                (name == "min" and value.const <= bound)
                or (name == "max" and value.const >= bound)
            )
            nested_same_clamp = (
                isinstance(arg_node, ast.Call)
                and _call_name(arg_node) == name
                and value.clamp_result
                and (
                    (name == "min" and value.le_one and bound >= 1)
                    or (name == "max" and value.nonneg and bound <= 0)
                )
            )
            if redundant_const or nested_same_clamp:
                self._report(
                    "ELS305",
                    f"clamp {name}(..., {bound:g}) is dead: the operand is "
                    "already within the bound",
                    node,
                    severity=Severity.WARNING,
                    hint="remove the redundant clamp",
                )

    def _check_return(self, node: ast.Return, value: AbstractValue) -> None:
        expected = self.function.expected_return
        if expected is Quantity.SELECTIVITY:
            out_of_range_const = value.const is not None and not (
                0 <= value.const <= 1
            )
            suspicious = (
                value.quantity in (Quantity.SELECTIVITY, Quantity.RATIO)
                and not value.bounded
                and not value.clamp_result
            )
            if out_of_range_const or suspicious:
                self._report(
                    "ELS302",
                    f"{self.function.qualname}() promises a selectivity but "
                    "this return value is not proven to stay in [0, 1]",
                    node,
                    hint="clamp with max(0.0, min(1.0, value)) or combine "
                    "via the sanctioned selectivity rules",
                )
        if (
            self.function.returns_int
            and expected in (Quantity.CARDINALITY, Quantity.DISTINCT_COUNT)
            and value.quantity in (Quantity.CARDINALITY, Quantity.DISTINCT_COUNT)
            and not value.coerced
        ):
            self._report(
                "ELS303",
                f"{self.function.qualname}() is annotated '-> int' but "
                f"returns a {_QUANTITY_LABEL[value.quantity]} that was never "
                "integer-coerced",
                node,
                hint="wrap the expression in int(math.ceil(...)) — the "
                "paper rounds estimated cardinalities up",
            )

    def _report_binop(
        self,
        code: str,
        node: ast.AST,
        left: AbstractValue,
        op: ast.operator,
        right: AbstractValue,
    ) -> None:
        symbol = _op_symbol(op)
        left_label = _QUANTITY_LABEL[left.quantity]
        right_label = _QUANTITY_LABEL[right.quantity]
        if code == "ELS304":
            message = (
                f"'{left_label} {symbol} {right_label}' combines a distinct "
                "count with a cardinality; derive surviving distinct counts "
                "through the urn model (repro.core.urn) instead"
            )
            hint = "use urn_distinct()/expected_distinct() or divide the " \
                   "cardinality by the distinct count (Eq. 3)"
        else:
            message = (
                f"'{left_label} {symbol} {right_label}' has no dimensionally "
                "valid reading in the estimation algebra"
            )
            hint = "check which quantity each operand carries; selectivities " \
                   "scale (multiply) cardinalities, they are never added to them"
        self._report(code, message, node, hint=hint)

    def _report(
        self,
        code: str,
        message: str,
        node: ast.AST,
        severity: Optional[Severity] = None,
        hint: Optional[str] = None,
    ) -> None:
        if not self.emit:
            return
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (line, col, code)
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.append(
            Diagnostic(
                code=code,
                message=message,
                severity=severity or DATAFLOW_CODES[code][1],
                file=self.module.path,
                line=line,
                col=col,
                hint=hint,
            )
        )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_math_attribute(func: ast.expr) -> bool:
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "math"
    )


def _is_int_name(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Name) and node.id == "int"


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _refined_summary(function: FunctionInfo, computed: AbstractValue) -> AbstractValue:
    """The summary exposed to callers after one analysis of ``function``.

    Declared/named functions are pinned to their promise — producers are
    checked at their return sites (ELS302/ELS303), consumers get to
    assume the promise holds.  Undeclared functions propagate whatever
    the analysis computed (BOTTOM, i.e. no return statement, reads as
    TOP for callers).
    """
    expected = function.expected_return
    if expected is not None:
        return seeded(expected, coerced=function.returns_int or computed.coerced)
    if computed.quantity is Quantity.BOTTOM:
        return TOP
    return computed


# ---------------------------------------------------------------------------
# public drivers
# ---------------------------------------------------------------------------


def analyze_modules(
    modules: Iterable[object],
    max_passes: int = 8,
    summary_sink: Optional[Dict[str, Dict[str, Dict[str, object]]]] = None,
) -> List[Diagnostic]:
    """Run the interprocedural ELS3xx pass over a set of modules.

    ``modules`` are duck-typed: each needs ``path``, ``source``, ``tree``,
    and optionally ``is_test_file`` (test files are skipped — tests
    intentionally construct invalid quantities).  Summaries are iterated
    across the whole set before the single reporting pass, so a quantity
    bug only visible through a call chain is still found.

    When ``summary_sink`` is given, the fixpoint return summaries are
    recorded into it as ``sink[path][qualname]["quantity"]`` (the
    :meth:`~repro.lint.dataflow.lattice.AbstractValue.to_dict` shape) —
    this is how the incremental lint cache persists per-module
    interprocedural summaries.
    """
    diagnostics: List[Diagnostic] = []
    parsed = []
    for module in modules:
        if getattr(module, "is_test_file", False):
            continue
        directives, malformed = parse_directives(module.source)
        for bad in malformed:
            if bad.family in ("effect", "concurrency", "perf"):
                # The effects layer owns the 'effect=' family (ELS400); the
                # concurrency layer owns 'guarded_by='/'blocking=' (ELS500);
                # the perf layer owns 'hot=' (ELS600).
                continue
            diagnostics.append(
                Diagnostic(
                    code="ELS300",
                    message=f"malformed '# els:' directive: {bad.reason}",
                    severity=Severity.ERROR,
                    file=module.path,
                    line=bad.line,
                    col=bad.col,
                    hint="use '# els: noqa', '# els: noqa[ELS...]', or "
                    "'# els: quantity=<name>'",
                )
            )
        parsed.append((module.path, module.tree, directives))
    program = collect_program(parsed)

    for _ in range(max_passes):
        changed = False
        for module_info in program.modules:
            for function in module_info.functions:
                computed = _FunctionAnalyzer(
                    program, module_info, function, emit=False
                ).run()
                summary = _refined_summary(function, computed)
                if summary != function.summary:
                    function.summary = summary
                    changed = True
        if not changed:
            break

    for module_info in program.modules:
        for function in module_info.functions:
            analyzer = _FunctionAnalyzer(program, module_info, function, emit=True)
            analyzer.run()
            diagnostics.extend(analyzer.diagnostics)
            if summary_sink is not None:
                summary_sink.setdefault(module_info.path, {}).setdefault(
                    function.qualname, {}
                )["quantity"] = function.summary.to_dict()
    return diagnostics


class _SourceModule:
    """Minimal duck-typed module for :func:`analyze_source`."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.is_test_file = False


def analyze_source(source: str, path: str = "<string>") -> List[Diagnostic]:
    """Analyze one source string (test/tooling convenience wrapper)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    return analyze_modules([_SourceModule(path, source, tree)])
