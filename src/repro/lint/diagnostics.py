"""The shared diagnostic model of both analysis layers.

A :class:`Diagnostic` is one finding: a stable code (``ELS1xx`` for the
codebase lint, ``ELS2xx`` for the semantic query diagnostics), a severity,
a human-readable message, an optional source location (layer 1) or query
context (layer 2), and an optional fix hint.

Codes are selected and suppressed by *prefix*: ``--select ELS1`` keeps the
whole codebase-lint layer, ``--ignore ELS105`` drops a single rule.  Both
layers, the renderers (:mod:`repro.lint.render`), the CLI, and
:class:`repro.errors.DiagnosticError` all speak this one type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "code_matches",
    "filter_diagnostics",
    "has_errors",
    "count_by_severity",
]


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` findings violate an invariant the estimator relies on (and
    make :class:`repro.errors.DiagnosticError` fire under invariant
    checking); ``WARNING`` findings are suspicious but do not by themselves
    break estimation; ``INFO`` findings are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding from either analysis layer.

    Attributes:
        code: Stable rule code (``ELS101`` ... ``ELS2xx``).
        message: Human-readable description of the finding.
        severity: :class:`Severity` of the finding.
        file: Source file path for layer-1 findings; ``None`` for layer 2.
        line: 1-based source line (0 when not applicable).
        col: 0-based source column (0 when not applicable).
        context: The offending query fragment (predicate, table, column)
            for layer-2 findings; ``None`` for layer 1.
        hint: A short suggestion for fixing the finding.
    """

    code: str
    message: str
    severity: Severity = Severity.ERROR
    file: Optional[str] = None
    line: int = 0
    col: int = 0
    context: Optional[str] = None
    hint: Optional[str] = None

    @property
    def location(self) -> str:
        """``file:line:col`` for layer 1, the context for layer 2."""
        if self.file is not None:
            return f"{self.file}:{self.line}:{self.col}"
        if self.context is not None:
            return self.context
        return "<query>"

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable mapping (the JSON renderer's row shape)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "context": self.context,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "Diagnostic":
        """Rebuild a diagnostic from its :meth:`to_dict` mapping.

        The inverse the incremental lint cache relies on: a finding must
        survive a JSON round-trip bit-for-bit, so cached warm output is
        byte-identical to a cold run.

        Raises:
            KeyError, ValueError, TypeError: on a malformed mapping (the
                cache treats any of these as a corrupt entry = cold miss).
        """
        return cls(
            code=str(row["code"]),
            message=str(row["message"]),
            severity=Severity(row["severity"]),
            file=None if row.get("file") is None else str(row["file"]),
            line=int(row.get("line", 0)),  # type: ignore[arg-type]
            col=int(row.get("col", 0)),  # type: ignore[arg-type]
            context=None if row.get("context") is None else str(row["context"]),
            hint=None if row.get("hint") is None else str(row["hint"]),
        )

    def sort_key(self) -> Tuple:
        """Order by file, position, then code — the render order."""
        return (self.file or "", self.line, self.col, self.code, self.message)


def code_matches(code: str, patterns: Sequence[str]) -> bool:
    """True when a code matches any pattern by case-insensitive prefix.

    ``ELS1`` matches every layer-1 code; ``ELS105`` matches exactly one.
    """
    upper = code.upper()
    return any(upper.startswith(pattern.strip().upper()) for pattern in patterns if pattern.strip())


def filter_diagnostics(
    diagnostics: Iterable[Diagnostic],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Apply ``--select`` / ``--ignore`` prefix filters and sort.

    ``select`` keeps only matching codes (``None`` keeps everything);
    ``ignore`` then removes matching codes.  The result is sorted by
    location so output is deterministic.
    """
    result: List[Diagnostic] = []
    for diagnostic in diagnostics:
        if select is not None and not code_matches(diagnostic.code, select):
            continue
        if ignore is not None and code_matches(diagnostic.code, ignore):
            continue
        result.append(diagnostic)
    return sorted(result, key=Diagnostic.sort_key)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any diagnostic is :attr:`Severity.ERROR`."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """``{"error": n, "warning": m, "info": k}`` — the summary counts."""
    counts = {severity.value: 0 for severity in Severity}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.value] += 1
    return counts
