"""Text and JSON renderers for :class:`~repro.lint.diagnostics.Diagnostic`.

The text form is one finding per line in the familiar compiler shape::

    src/repro/foo.py:12:4: ELS104 error: mutable default argument ...
        hint: use None and initialize inside the function

followed by a summary line.  The JSON form is a single object with the
findings and per-severity counts, for tooling and CI annotation.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence

from .diagnostics import Diagnostic, count_by_severity

__all__ = ["render_text", "render_json"]


def render_text(diagnostics: Sequence[Diagnostic], show_hints: bool = True) -> str:
    """Render findings as compiler-style text plus a summary line.

    An empty finding list renders as ``"clean: no diagnostics"`` so that
    piping the output somewhere always yields at least one line.
    """
    lines: List[str] = []
    for diagnostic in diagnostics:
        lines.append(
            f"{diagnostic.location}: {diagnostic.code} "
            f"{diagnostic.severity.value}: {diagnostic.message}"
        )
        if show_hints and diagnostic.hint:
            lines.append(f"    hint: {diagnostic.hint}")
    if not diagnostics:
        lines.append("clean: no diagnostics")
    else:
        counts = count_by_severity(diagnostics)
        summary = ", ".join(
            f"{count} {name}{'s' if count != 1 else ''}"
            for name, count in counts.items()
            if count
        )
        lines.append(f"found {len(diagnostics)} diagnostic(s): {summary}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings as a stable, indented JSON document."""
    payload = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "counts": count_by_severity(diagnostics),
        "total": len(diagnostics),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
