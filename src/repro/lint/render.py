"""Text, JSON, and SARIF renderers for lint diagnostics.

The text form is one finding per line in the familiar compiler shape::

    src/repro/foo.py:12:4: ELS104 error: mutable default argument ...
        hint: use None and initialize inside the function

followed by a summary line.  The JSON form is a single object with the
findings and per-severity counts, for tooling and CI annotation.  The
SARIF form is a `SARIF 2.1.0
<https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
log — the interchange format GitHub code scanning and most editor
integrations consume.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from .diagnostics import Diagnostic, Severity, count_by_severity

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(diagnostics: Sequence[Diagnostic], show_hints: bool = True) -> str:
    """Render findings as compiler-style text plus a summary line.

    An empty finding list renders as ``"clean: no diagnostics"`` so that
    piping the output somewhere always yields at least one line.
    """
    lines: List[str] = []
    for diagnostic in diagnostics:
        lines.append(
            f"{diagnostic.location}: {diagnostic.code} "
            f"{diagnostic.severity.value}: {diagnostic.message}"
        )
        if show_hints and diagnostic.hint:
            lines.append(f"    hint: {diagnostic.hint}")
    if not diagnostics:
        lines.append("clean: no diagnostics")
    else:
        counts = count_by_severity(diagnostics)
        summary = ", ".join(
            f"{count} {name}{'s' if count != 1 else ''}"
            for name, count in counts.items()
            if count
        )
        lines.append(f"found {len(diagnostics)} diagnostic(s): {summary}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings as a stable, indented JSON document."""
    payload = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "counts": count_by_severity(diagnostics),
        "total": len(diagnostics),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: SARIF has three result levels; INFO maps to "note" per the spec.
_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_metadata(code: str) -> Dict[str, object]:
    """SARIF ``reportingDescriptor`` for one diagnostic code."""
    from .concurrency import CONCURRENCY_CODES
    from .contracts import CONTRACT_CODES
    from .dataflow import DATAFLOW_CODES
    from .effects import EFFECT_CODES
    from .engine import SYNTAX_ERROR_CODE, UNUSED_SUPPRESSION_CODE, all_rules
    from .perf import PERF_CODES

    description: Optional[str] = None
    level = "error"
    if code in DATAFLOW_CODES:
        description, severity = DATAFLOW_CODES[code]
        level = _SARIF_LEVEL[severity]
    elif code in EFFECT_CODES:
        description, severity = EFFECT_CODES[code]
        level = _SARIF_LEVEL[severity]
    elif code in CONCURRENCY_CODES:
        description, severity = CONCURRENCY_CODES[code]
        level = _SARIF_LEVEL[severity]
    elif code in PERF_CODES:
        description, severity = PERF_CODES[code]
        level = _SARIF_LEVEL[severity]
    elif code in CONTRACT_CODES:
        description, severity = CONTRACT_CODES[code]
        level = _SARIF_LEVEL[severity]
    elif code == SYNTAX_ERROR_CODE:
        description = "file does not parse"
    elif code == UNUSED_SUPPRESSION_CODE:
        description = "unused '# els: noqa' suppression"
        level = "warning"
    else:
        for rule in all_rules():
            if rule.code == code:
                description = rule.description or rule.name
                level = _SARIF_LEVEL[rule.severity]
                break
    descriptor: Dict[str, object] = {
        "id": code,
        "defaultConfiguration": {"level": level},
    }
    if description:
        descriptor["shortDescription"] = {"text": description}
    return descriptor


def _sarif_result(diagnostic: Diagnostic, rule_index: int) -> Dict[str, object]:
    message = diagnostic.message
    if diagnostic.hint:
        message = f"{message} (hint: {diagnostic.hint})"
    result: Dict[str, object] = {
        "ruleId": diagnostic.code,
        "ruleIndex": rule_index,
        "level": _SARIF_LEVEL[diagnostic.severity],
        "message": {"text": message},
    }
    if diagnostic.file is not None:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diagnostic.file},
                    "region": {
                        "startLine": max(diagnostic.line, 1),
                        # SARIF columns are 1-based; Diagnostic's are 0-based.
                        "startColumn": diagnostic.col + 1,
                    },
                }
            }
        ]
    elif diagnostic.context is not None:
        result["locations"] = [
            {
                "logicalLocations": [
                    {"fullyQualifiedName": diagnostic.context, "kind": "member"}
                ]
            }
        ]
    return result


def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings as a SARIF 2.1.0 log (one run, one tool driver)."""
    from .. import __version__

    codes = sorted({d.code for d in diagnostics})
    rule_index = {code: index for index, code in enumerate(codes)}
    log = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-els-lint",
                        "version": __version__,
                        "rules": [_rule_metadata(code) for code in codes],
                    }
                },
                "results": [
                    _sarif_result(d, rule_index[d.code]) for d in diagnostics
                ],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
