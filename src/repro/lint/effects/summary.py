"""Per-function effect facts and bottom-up effect summaries.

One :class:`FunctionScan` walks a single function body in textual order
and records, with a lightweight alias analysis, everything the ELS4xx
rules need:

* **mutations** — every in-place mutation site (mutator method call,
  subscript store/delete, attribute store, augmented assignment on a
  container), attributed to the *root* object it reaches: a parameter, a
  ``self`` attribute, or nothing provable.  Each site carries a *depth*:
  ``0`` mutates the root object itself (``self._cache[k] = v`` fills the
  cache), ``>= 1`` mutates a value *reached through* it
  (``self._cache[k].append(x)`` corrupts a cached value).
* **nondeterminism sites** — ambient module-level RNG calls
  (``random.shuffle(...)``), unseeded ``Random()`` / ``default_rng()``
  constructions, and entropy sources (``os.urandom``, ``uuid4``,
  ``secrets``).
* **returns** — every ``return`` whose value aliases a root, for the
  copy-on-return rule.
* **pool shipments** — callables and arguments handed to
  ``multiprocessing.Pool`` / ``ProcessPoolExecutor`` methods.
* **calls** — every call site, for interprocedural propagation.

The alias tracking is deliberately optimistic: an expression whose root
cannot be proven contributes nothing, so every ELS4xx report rests on a
chain the scan actually established.  :func:`collect_effect_summaries`
then iterates :class:`EffectSummary` values bottom-up over the resolved
call graph (the same scheme as the ELS3xx quantity fixpoint), so a
function that mutates its argument three calls deep still taints the
top-level call site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..dataflow.summaries import FunctionInfo, ModuleInfo, Program

__all__ = [
    "EffectSummary",
    "FunctionScan",
    "MutationSite",
    "NondetSite",
    "PoolShipment",
    "ReturnSite",
    "MUTATOR_METHODS",
    "collect_effect_summaries",
    "is_cache_attr",
    "provably_mutable",
    "scan_function",
]

#: Methods that mutate their receiver in place (lists, sets, dicts,
#: OrderedDict, deque).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "difference_update",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "intersection_update",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "symmetric_difference_update",
        "update",
    }
)

#: Attribute names treated as memoization storage even without a
#: ``cache``/``memo`` token in the name (the repo's established caches).
_CACHE_EXACT_NAMES = frozenset({"_entries", "_materialized", "_tuples"})

#: ``random`` module members that read or advance the *ambient* global
#: RNG state (``seed`` excluded: calling it is a determinism decision).
RNG_MODULE_CALLS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
        "rand",
        "randn",
    }
)

#: ``secrets`` module members (all of them are entropy reads).
_SECRETS_CALLS = frozenset(
    {"token_bytes", "token_hex", "token_urlsafe", "randbelow", "randbits", "choice"}
)

#: Constructors that return a *fresh* container (break an alias chain).
_FRESH_CALLS = frozenset(
    {"list", "dict", "set", "tuple", "frozenset", "sorted", "copy", "deepcopy"}
)

#: Pool/executor methods that ship a callable to worker processes.
POOL_SHIP_METHODS = frozenset(
    {
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
        "map",
        "map_async",
        "starmap",
        "starmap_async",
        "submit",
    }
)

#: Constructors whose result is a process pool handle.
_POOL_CONSTRUCTORS = frozenset({"Pool", "ProcessPoolExecutor"})

#: A root: ("param", name) or ("selfattr", attribute).
Root = Tuple[str, str]


def is_cache_attr(name: str) -> bool:
    """Heuristic: does this attribute name denote memoization storage?"""
    lowered = name.lower()
    return "cache" in lowered or "memo" in lowered or name in _CACHE_EXACT_NAMES


@dataclass(frozen=True)
class EffectSummary:
    """The caller-visible effects of one function.

    Attributes:
        mutates_params: Parameter names the function (transitively)
            mutates in place.
        reads_nondeterminism: True when the function (transitively) reads
            ambient or unseeded randomness.
        declared: Canonical ``# els: effect=`` override on the ``def``
            line (``"pure"``, ``"mutates"``, ``"nondet"``), if any.
    """

    mutates_params: FrozenSet[str] = frozenset()
    reads_nondeterminism: bool = False
    declared: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable mapping (for the incremental lint cache)."""
        return {
            "mutates_params": sorted(self.mutates_params),
            "reads_nondeterminism": self.reads_nondeterminism,
            "declared": self.declared,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "EffectSummary":
        """Rebuild a summary from :meth:`to_dict` (inverse round-trip).

        Raises:
            KeyError, ValueError, TypeError: on a malformed mapping (the
                cache treats these as a corrupt entry = cold miss).
        """
        declared = row.get("declared")
        return cls(
            mutates_params=frozenset(
                str(name) for name in row["mutates_params"]  # type: ignore[union-attr]
            ),
            reads_nondeterminism=bool(row["reads_nondeterminism"]),
            declared=None if declared is None else str(declared),
        )


@dataclass(frozen=True)
class MutationSite:
    """One in-place mutation, attributed to a proven root."""

    root: Root
    depth: int
    op: str
    node: ast.AST


@dataclass(frozen=True)
class NondetSite:
    """One read of ambient or unseeded randomness."""

    node: ast.AST
    description: str


@dataclass(frozen=True)
class ReturnSite:
    """One ``return`` whose value aliases a proven root."""

    root: Root
    depth: int
    node: ast.AST


@dataclass(frozen=True)
class PoolShipment:
    """One callable-plus-arguments handoff to a process pool."""

    call: ast.Call
    method: str
    callable_node: Optional[ast.AST]
    data_args: Tuple[ast.AST, ...]


@dataclass
class FunctionScan:
    """Everything one pass over a function body collected."""

    function: FunctionInfo
    mutations: List[MutationSite] = field(default_factory=list)
    nondet_sites: List[NondetSite] = field(default_factory=list)
    returns: List[ReturnSite] = field(default_factory=list)
    shipments: List[PoolShipment] = field(default_factory=list)
    calls: List[ast.Call] = field(default_factory=list)
    #: Attribute stores ``self.X = expr`` outside nothing — (attr, value
    #: expr, node, local env snapshot) for store-site mutability checks.
    attr_stores: List[Tuple[str, ast.expr, ast.AST, Dict[str, ast.expr]]] = field(
        default_factory=list
    )
    #: Subscript stores ``self.X[k] = expr`` at depth 0 (cache fills).
    subscript_stores: List[Tuple[str, ast.expr, ast.AST, Dict[str, ast.expr]]] = field(
        default_factory=list
    )
    #: Names of functions/lambda-holding defs nested inside this body.
    nested_defs: Set[str] = field(default_factory=set)
    #: ``id(call)`` -> (positional arg roots, keyword arg roots), each an
    #: optional ``(root, depth)`` as proven at the call site.
    call_arg_roots: Dict[
        int,
        Tuple[
            Tuple[Optional[Tuple[Root, int]], ...],
            Dict[str, Optional[Tuple[Root, int]]],
        ],
    ] = field(default_factory=dict)


class _Scanner:
    """Textual-order statement walker building a :class:`FunctionScan`."""

    def __init__(self, function: FunctionInfo, module: ModuleInfo) -> None:
        self.function = function
        self.module = module
        self.scan = FunctionScan(function)
        self._aliases: Dict[str, Tuple[Root, int]] = {}
        self._locals: Dict[str, ast.expr] = {}
        self._pool_names: Set[str] = set()
        args = function.node.args
        self._params = {
            a.arg
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            if a.arg not in ("self", "cls")
        }

    # -- roots ---------------------------------------------------------------

    def _root_of(self, node: ast.expr) -> Optional[Tuple[Root, int]]:
        """The proven (root, depth) an expression's value is reached by."""
        if isinstance(node, ast.Name):
            if node.id in self._aliases:
                return self._aliases[node.id]
            if node.id in self._params:
                return (("param", node.id), 0)
            return None
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
                return (("selfattr", node.attr), 0)
            inner = self._root_of(node.value)
            if inner is not None:
                return (inner[0], inner[1] + 1)
            return None
        if isinstance(node, ast.Subscript):
            inner = self._root_of(node.value)
            if inner is not None:
                return (inner[0], inner[1] + 1)
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _FRESH_CALLS:
                return None
            if isinstance(func, ast.Attribute) and func.attr in ("get", "setdefault"):
                inner = self._root_of(func.value)
                if inner is not None:
                    return (inner[0], inner[1] + 1)
            return None
        if isinstance(node, ast.IfExp):
            body = self._root_of(node.body)
            orelse = self._root_of(node.orelse)
            return body if body == orelse else (body or orelse)
        if hasattr(ast, "NamedExpr") and isinstance(node, ast.NamedExpr):
            return self._root_of(node.value)
        if isinstance(node, ast.Starred):
            return self._root_of(node.value)
        return None

    # -- driver --------------------------------------------------------------

    def run(self) -> FunctionScan:
        body = getattr(self.function.node, "body", [])
        self._visit_statements(body)
        return self.scan

    def _visit_statements(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self._visit_statement(statement)

    def _visit_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.scan.nested_defs.add(statement.name)
            return  # nested scopes are opaque to the alias analysis
        if isinstance(statement, ast.ClassDef):
            return
        if isinstance(statement, ast.Assign):
            self._scan_expression(statement.value)
            for target in statement.targets:
                self._bind_target(target, statement.value, statement)
            return
        if isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._scan_expression(statement.value)
                self._bind_target(statement.target, statement.value, statement)
            return
        if isinstance(statement, ast.AugAssign):
            self._scan_expression(statement.value)
            target = statement.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
            ):
                self.scan.attr_stores.append(
                    (target.attr, statement.value, statement, dict(self._locals))
                )
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_store_mutation(target, statement, "augassign")
            return
        if isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Subscript):
                    rooted = self._root_of(target.value)
                    if rooted is not None:
                        self.scan.mutations.append(
                            MutationSite(rooted[0], rooted[1], "subscript-delete", statement)
                        )
                elif isinstance(target, ast.Name):
                    self._aliases.pop(target.id, None)
                    self._locals.pop(target.id, None)
            return
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                self._scan_expression(statement.value)
                rooted = self._root_of(statement.value)
                if rooted is not None:
                    self.scan.returns.append(
                        ReturnSite(rooted[0], rooted[1], statement)
                    )
            return
        if isinstance(statement, (ast.Expr, ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self._scan_expression(child)
            return
        if isinstance(statement, (ast.If, ast.While)):
            self._scan_expression(statement.test)
            self._visit_statements(statement.body)
            self._visit_statements(statement.orelse)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._scan_expression(statement.iter)
            rooted = self._root_of(statement.iter)
            if isinstance(statement.target, ast.Name):
                if rooted is not None:
                    self._aliases[statement.target.id] = (rooted[0], rooted[1] + 1)
                else:
                    self._aliases.pop(statement.target.id, None)
            self._visit_statements(statement.body)
            self._visit_statements(statement.orelse)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._scan_expression(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    self._bind_from_value(
                        item.optional_vars.id, item.context_expr
                    )
            self._visit_statements(statement.body)
            return
        if isinstance(statement, ast.Try):
            self._visit_statements(statement.body)
            for handler in statement.handlers:
                self._visit_statements(handler.body)
            self._visit_statements(statement.orelse)
            self._visit_statements(statement.finalbody)
            return
        # Everything else (pass, break, continue, global, import, ...) is
        # effect-free at this level.

    # -- binding -------------------------------------------------------------

    def _bind_target(
        self, target: ast.expr, value: ast.expr, statement: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind_from_value(target.id, value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self._aliases.pop(element.id, None)
                    self._locals.pop(element.id, None)
            return
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id in (
                "self",
                "cls",
            ):
                self.scan.attr_stores.append(
                    (target.attr, value, statement, dict(self._locals))
                )
                return
            self._record_store_mutation(target, statement, "attr-store")
            return
        if isinstance(target, ast.Subscript):
            rooted = self._root_of(target.value)
            if rooted is not None and rooted[1] == 0 and rooted[0][0] == "selfattr":
                self.scan.subscript_stores.append(
                    (rooted[0][1], value, statement, dict(self._locals))
                )
            self._record_store_mutation(target, statement, "subscript-store")

    def _bind_from_value(self, name: str, value: ast.expr) -> None:
        self._locals[name] = value
        rooted = self._root_of(value)
        if rooted is not None:
            self._aliases[name] = rooted
        else:
            self._aliases.pop(name, None)
        if _terminal_call_name(value) in _POOL_CONSTRUCTORS:
            self._pool_names.add(name)
        elif name in self._pool_names:
            self._pool_names.discard(name)

    def _record_store_mutation(
        self, target: ast.expr, statement: ast.stmt, op: str
    ) -> None:
        if isinstance(target, ast.Subscript):
            rooted = self._root_of(target.value)
        elif isinstance(target, ast.Attribute):
            rooted = self._root_of(target.value)
        else:  # pragma: no cover - callers pass Subscript/Attribute only
            rooted = None
        if rooted is not None:
            self.scan.mutations.append(
                MutationSite(rooted[0], rooted[1], op, statement)
            )

    # -- expressions ---------------------------------------------------------

    def _scan_expression(self, node: ast.expr) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._scan_call(child)
            elif isinstance(child, ast.Lambda):
                pass  # body belongs to another scope; handled at ship sites

    def _scan_call(self, call: ast.Call) -> None:
        self.scan.calls.append(call)
        self.scan.call_arg_roots[id(call)] = (
            tuple(
                None if isinstance(argument, ast.Starred) else self._root_of(argument)
                for argument in call.args
            ),
            {
                keyword.arg: self._root_of(keyword.value)
                for keyword in call.keywords
                if keyword.arg is not None
            },
        )
        self._check_mutator(call)
        self._check_nondeterminism(call)
        self._check_pool_shipment(call)

    def _check_mutator(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATOR_METHODS:
            return
        rooted = self._root_of(func.value)
        if rooted is not None:
            self.scan.mutations.append(
                MutationSite(rooted[0], rooted[1], func.attr, call)
            )

    def _check_nondeterminism(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            owner = _attribute_owner_name(func.value, self.module)
            if owner == "random" and func.attr in RNG_MODULE_CALLS:
                self.scan.nondet_sites.append(
                    NondetSite(call, f"ambient RNG call random.{func.attr}()")
                )
                return
            if owner == "secrets" and func.attr in _SECRETS_CALLS:
                self.scan.nondet_sites.append(
                    NondetSite(call, f"entropy read secrets.{func.attr}()")
                )
                return
            if owner == "os" and func.attr == "urandom":
                self.scan.nondet_sites.append(
                    NondetSite(call, "entropy read os.urandom()")
                )
                return
        name = _terminal_call_name(call)
        if name == "uuid4":
            self.scan.nondet_sites.append(NondetSite(call, "entropy read uuid4()"))
            return
        if name in ("Random", "default_rng") and not call.args and not call.keywords:
            self.scan.nondet_sites.append(
                NondetSite(call, f"unseeded {name}() construction")
            )

    def _check_pool_shipment(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in POOL_SHIP_METHODS:
            return
        receiver = func.value
        is_pool = (
            isinstance(receiver, ast.Name) and receiver.id in self._pool_names
        ) or _terminal_call_name(receiver) in _POOL_CONSTRUCTORS
        if not is_pool:
            return
        callable_node = call.args[0] if call.args else None
        self.scan.shipments.append(
            PoolShipment(
                call=call,
                method=func.attr,
                callable_node=callable_node,
                data_args=tuple(call.args[1:]),
            )
        )


def scan_function(function: FunctionInfo, module: ModuleInfo) -> FunctionScan:
    """Scan one function body for effect facts."""
    return _Scanner(function, module).run()


# ---------------------------------------------------------------------------
# Stored-value mutability
# ---------------------------------------------------------------------------


def provably_mutable(
    node: Optional[ast.expr], local_env: Optional[Dict[str, ast.expr]] = None
) -> bool:
    """True when an expression *provably* evaluates to a mutable container
    (or an immutable container holding one).

    The check is optimistic: anything unresolvable is treated as
    immutable, so the copy-on-return rule (ELS406) only fires on stores
    whose mutability is established from literals, ``list``/``dict``/
    ``set`` constructions, or single-assignment locals.
    """
    env = local_env or {}
    return _mutable(node, env, depth=0)


def _mutable(node: Optional[ast.expr], env: Dict[str, ast.expr], depth: int) -> bool:
    if node is None or depth > 8:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Tuple):
        return any(_mutable(element, env, depth + 1) for element in node.elts)
    if isinstance(node, ast.Name):
        assigned = env.get(node.id)
        if assigned is not None and assigned is not node:
            return _mutable(assigned, env, depth + 1)
        return False
    if isinstance(node, ast.Call):
        name = _terminal_call_name(node)
        if name in ("list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "deque"):
            return True
        if name in ("tuple", "frozenset", "sorted"):
            if name == "sorted":
                return True  # sorted() always builds a fresh *list*
            return any(_element_mutable(arg, env, depth + 1) for arg in node.args)
        return False
    if isinstance(node, ast.GeneratorExp):
        return _mutable(node.elt, env, depth + 1)
    return False


def _element_mutable(node: ast.expr, env: Dict[str, ast.expr], depth: int) -> bool:
    """Would the *elements* produced by iterating ``node`` be mutable?"""
    if isinstance(node, ast.GeneratorExp):
        return _mutable(node.elt, env, depth)
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return any(_mutable(element, env, depth) for element in node.elts)
    if isinstance(node, ast.Call) and _terminal_call_name(node) == "zip":
        return False  # zip() yields tuples
    if isinstance(node, ast.Name):
        assigned = env.get(node.id)
        if assigned is not None and assigned is not node:
            return _element_mutable(assigned, env, depth)
    return False


# ---------------------------------------------------------------------------
# Interprocedural summaries
# ---------------------------------------------------------------------------


def _declared_effect(function: FunctionInfo) -> Optional[str]:
    for directive in function.module.directives:
        if directive.kind == "effect" and directive.line == function.node.lineno:
            return directive.effect
    return None


def _map_arguments(
    call: ast.Call, callee: FunctionInfo
) -> List[Tuple[str, ast.expr]]:
    """Pair call argument expressions with callee parameter names."""
    callee_args = callee.node.args
    parameters = [
        parameter.arg
        for parameter in list(callee_args.posonlyargs) + list(callee_args.args)
        if parameter.arg not in ("self", "cls")
    ]
    pairs: List[Tuple[str, ast.expr]] = []
    for index, argument in enumerate(call.args):
        if isinstance(argument, ast.Starred):
            continue
        if index < len(parameters):
            pairs.append((parameters[index], argument))
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in parameters:
            pairs.append((keyword.arg, keyword.value))
    return pairs


def collect_effect_summaries(
    program: Program,
    scans: Dict[int, FunctionScan],
    max_passes: int = 8,
) -> Dict[int, EffectSummary]:
    """Iterate effect summaries over the call graph to a fixpoint.

    Keys are ``id(FunctionInfo)``.  A declared ``effect=pure`` pins a
    function to the empty effect; ``effect=mutates`` marks every
    parameter mutated; ``effect=nondet`` marks it nondeterministic.
    """
    summaries: Dict[int, EffectSummary] = {}
    for module in program.modules:
        for function in module.functions:
            declared = _declared_effect(function)
            summaries[id(function)] = _base_summary(
                function, scans.get(id(function)), declared
            )
    for _ in range(max_passes):
        changed = False
        for module in program.modules:
            for function in module.functions:
                current = summaries[id(function)]
                if current.declared in ("pure", "mutates"):
                    continue  # declarations pin the mutation component
                updated = _propagate_one(
                    program, module, function, scans, summaries, current
                )
                if updated != current:
                    summaries[id(function)] = updated
                    changed = True
        if not changed:
            break
    return summaries


def _base_summary(
    function: FunctionInfo,
    scan: Optional[FunctionScan],
    declared: Optional[str],
) -> EffectSummary:
    if declared == "pure":
        return EffectSummary(declared="pure")
    if declared == "mutates":
        args = function.node.args
        params = frozenset(
            a.arg
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            if a.arg not in ("self", "cls")
        )
        return EffectSummary(mutates_params=params, declared="mutates")
    mutated = frozenset(
        site.root[1]
        for site in (scan.mutations if scan else [])
        if site.root[0] == "param"
    )
    nondet = bool(scan and scan.nondet_sites) or declared == "nondet"
    return EffectSummary(
        mutates_params=mutated, reads_nondeterminism=nondet, declared=declared
    )


def _propagate_one(
    program: Program,
    module: ModuleInfo,
    function: FunctionInfo,
    scans: Dict[int, FunctionScan],
    summaries: Dict[int, EffectSummary],
    current: EffectSummary,
) -> EffectSummary:
    scan = scans.get(id(function))
    if scan is None:
        return current
    enclosing = function.qualname.rsplit(".", 1)
    enclosing_class = enclosing[0] if len(enclosing) == 2 else None
    mutated = set(current.mutates_params)
    nondet = current.reads_nondeterminism
    for call in scan.calls:
        callee = program.resolve_call(call, module, enclosing_class)
        if callee is None:
            continue
        callee_summary = summaries.get(id(callee))
        if callee_summary is None or callee_summary.declared == "pure":
            continue
        if callee_summary.reads_nondeterminism and current.declared != "pure":
            nondet = True
        if callee_summary.mutates_params:
            for parameter, argument in _map_arguments(call, callee):
                if parameter not in callee_summary.mutates_params:
                    continue
                if isinstance(argument, ast.Name):
                    # The caller's own parameter handed through: the
                    # mutation escapes another level up.
                    args = function.node.args
                    caller_params = {
                        a.arg
                        for a in list(args.posonlyargs)
                        + list(args.args)
                        + list(args.kwonlyargs)
                    }
                    if argument.id in caller_params:
                        mutated.add(argument.id)
    return EffectSummary(
        mutates_params=frozenset(mutated),
        reads_nondeterminism=nondet,
        declared=current.declared,
    )


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _terminal_call_name(node: ast.expr) -> Optional[str]:
    """The rightmost name of a call expression (``ctx.Pool`` -> ``Pool``)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _attribute_owner_name(node: ast.expr, module: ModuleInfo) -> Optional[str]:
    """Resolve the module an attribute call is made on, via import aliases.

    ``random.shuffle`` -> ``"random"`` (also under ``import random as rnd``);
    ``np.random.shuffle`` -> ``"random"`` (the trailing ``.random`` chain).
    """
    if isinstance(node, ast.Name):
        return module.imports.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
