"""Layer 4: the ELS4xx effect-and-determinism analysis.

Where the ELS3xx layer tracks what *dimension* a value carries, this
layer tracks what a function *does*: which parameters it mutates in
place, whether it reads ambient randomness, and whether shared mutable
state leaks across the cache and process-pool boundaries PR 4
introduced.  Per-function facts come from an alias-aware body scan
(:mod:`repro.lint.effects.summary`); :class:`EffectSummary` values are
then iterated bottom-up over the resolved call graph, and the rule pass
(:mod:`repro.lint.effects.analysis`) reports ELS400–ELS407.

Declared overrides ride the existing directive machinery::

    def regenerate(self):  # els: effect=pure
        ...

``effect=pure`` pins the summary to the empty effect, ``effect=mutates``
marks every parameter mutated, ``effect=nondet`` marks the function
nondeterministic.  A malformed or misplaced ``effect=`` directive is
itself reported (ELS400), and ``# els: noqa[...]`` suppressions apply to
ELS4xx findings exactly as to every other layer.
"""

from __future__ import annotations

from .analysis import EFFECT_CODES, analyze_modules, analyze_source
from .summary import (
    EffectSummary,
    FunctionScan,
    MUTATOR_METHODS,
    MutationSite,
    NondetSite,
    PoolShipment,
    ReturnSite,
    collect_effect_summaries,
    is_cache_attr,
    provably_mutable,
)

__all__ = [
    "EFFECT_CODES",
    "EffectSummary",
    "FunctionScan",
    "MUTATOR_METHODS",
    "MutationSite",
    "NondetSite",
    "PoolShipment",
    "ReturnSite",
    "analyze_modules",
    "analyze_source",
    "collect_effect_summaries",
    "is_cache_attr",
    "provably_mutable",
]
