"""The ELS4xx effect-and-determinism diagnostics.

The driver (:func:`analyze_modules`) mirrors the ELS3xx quantity layer:
parse directives, index every function with
:func:`repro.lint.dataflow.summaries.collect_program`, scan each body
once (:mod:`repro.lint.effects.summary`), iterate effect summaries
bottom-up to a fixpoint, then run one reporting pass:

========  ==========================================================
ELS400    malformed or misplaced ``# els: effect=`` directive
ELS401    in-place mutation of an object reachable from a cache
ELS402    ambient/unseeded RNG reachable from an evaluation entry point
ELS403    callable or shared-mutable argument shipped to a process pool
ELS404    mutation of a cached-digest input the cache cannot observe
ELS405    set iteration flowing into ordered output without ``sorted``
ELS406    cached mutable container returned without a defensive copy
ELS407    ``__hash__``/``__eq__`` defined on a mutable class (warning)
========  ==========================================================

Like the quantity layer the pass is *optimistic*: a report only fires on
a chain the alias analysis actually proved, so an unresolvable
expression silences the rule rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, Severity
from ..dataflow.annotations import parse_directives
from ..dataflow.summaries import FunctionInfo, ModuleInfo, Program, collect_program
from .summary import (
    EffectSummary,
    FunctionScan,
    MutationSite,
    collect_effect_summaries,
    is_cache_attr,
    provably_mutable,
    scan_function,
)

__all__ = ["EFFECT_CODES", "analyze_modules", "analyze_source"]

#: Code -> (summary, severity) for every diagnostic this layer can emit.
EFFECT_CODES: Dict[str, Tuple[str, Severity]] = {
    "ELS400": ("malformed or misplaced '# els: effect=' directive", Severity.ERROR),
    "ELS401": (
        "in-place mutation of an object reachable from a cache",
        Severity.ERROR,
    ),
    "ELS402": (
        "ambient or unseeded RNG reachable from an evaluation entry point",
        Severity.ERROR,
    ),
    "ELS403": (
        "callable or shared-mutable argument shipped to a process pool",
        Severity.ERROR,
    ),
    "ELS404": (
        "mutation of a cached-digest input the cache cannot observe",
        Severity.ERROR,
    ),
    "ELS405": (
        "set iteration flows into ordered output without sorted()",
        Severity.ERROR,
    ),
    "ELS406": (
        "cached mutable container returned without a defensive copy",
        Severity.ERROR,
    ),
    "ELS407": (
        "__hash__/__eq__ defined on a mutable class used as a cache key",
        Severity.WARNING,
    ),
}

#: Length-changing growth mutators: a digest cache keyed on
#: ``len(rows)`` observes these, so they are exempt from ELS404 at the
#: attribute itself (depth 0).
_GROWTH_OPS = frozenset({"append", "extend"})

#: Set-consuming constructs that preserve iteration order into an
#: ordered result (ELS405).
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate"})


def analyze_modules(
    modules: Sequence,
    max_passes: int = 8,
    summary_sink: Optional[Dict[str, Dict[str, Dict[str, object]]]] = None,
) -> List[Diagnostic]:
    """Run the effect analysis over parsed modules.

    ``modules`` is duck-typed (``path`` / ``source`` / ``tree`` /
    ``is_test_file`` — the engine's ``ModuleUnderLint`` fits).  Test
    files are skipped: they routinely mutate fixtures and call ambient
    RNG on purpose.

    When ``summary_sink`` is given, the fixpoint effect summaries are
    recorded into it as ``sink[path][qualname]["effect"]`` (the
    :meth:`~repro.lint.effects.summary.EffectSummary.to_dict` shape) —
    this is how the incremental lint cache persists per-module
    interprocedural summaries.
    """
    findings: List[Diagnostic] = []
    parsed = []
    directive_index = {}
    for module in modules:
        if module.is_test_file or module.tree is None:
            continue
        directives, malformed = parse_directives(module.source)
        directive_index[module.path] = (directives, malformed)
        parsed.append((module.path, module.tree, directives))
    if not parsed:
        return findings
    program = collect_program(parsed)
    scans: Dict[int, FunctionScan] = {}
    for minfo in program.modules:
        for function in minfo.functions:
            scans[id(function)] = scan_function(function, minfo)
    summaries = collect_effect_summaries(program, scans, max_passes=max_passes)
    if summary_sink is not None:
        for minfo in program.modules:
            for function in minfo.functions:
                summary_sink.setdefault(minfo.path, {}).setdefault(
                    function.qualname, {}
                )["effect"] = summaries[id(function)].to_dict()
    for minfo in program.modules:
        directives, malformed = directive_index[minfo.path]
        _report_directives(minfo, directives, malformed, findings)
        module_globals = _module_mutable_globals(minfo.tree)
        for function in minfo.functions:
            scan = scans[id(function)]
            _report_cache_mutations(program, minfo, function, scan, summaries, findings)
            _report_pool_shipments(minfo, function, scan, module_globals, findings)
            _report_set_order(minfo, function, findings)
        _report_class_rules(minfo, scans, findings)
    _report_nondeterminism(program, scans, summaries, findings)
    return findings


def analyze_source(source: str, path: str = "<memory>") -> List[Diagnostic]:
    """Convenience wrapper: analyze one in-memory module."""

    class _SourceModule:
        def __init__(self) -> None:
            self.path = path
            self.source = source
            self.is_test_file = False
            try:
                self.tree: Optional[ast.Module] = ast.parse(source)
            except SyntaxError:
                self.tree = None

    return analyze_modules([_SourceModule()])


# ---------------------------------------------------------------------------
# ELS400 — directives
# ---------------------------------------------------------------------------


def _report_directives(
    minfo: ModuleInfo,
    directives,
    malformed,
    findings: List[Diagnostic],
) -> None:
    for bad in malformed:
        if bad.family != "effect":
            continue  # ELS300 (dataflow layer) owns the other families
        findings.append(
            Diagnostic(
                file=minfo.path,
                line=bad.line,
                col=bad.col,
                code="ELS400",
                severity=Severity.ERROR,
                message=f"malformed '# els:' directive: {bad.reason}",
            )
        )
    def_lines = {
        node.lineno
        for node in ast.walk(minfo.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for directive in directives:
        if directive.kind != "effect":
            continue
        if directive.line not in def_lines:
            findings.append(
                Diagnostic(
                    file=minfo.path,
                    line=directive.line,
                    col=0,
                    code="ELS400",
                    severity=Severity.ERROR,
                    message=(
                        "misplaced 'effect=' directive: it must sit on a "
                        "'def' line to declare that function's effect"
                    ),
                )
            )


# ---------------------------------------------------------------------------
# ELS401 — cache mutation
# ---------------------------------------------------------------------------


def _report_cache_mutations(
    program: Program,
    minfo: ModuleInfo,
    function: FunctionInfo,
    scan: FunctionScan,
    summaries: Dict[int, EffectSummary],
    findings: List[Diagnostic],
) -> None:
    declared = summaries[id(function)].declared
    if declared in ("pure", "mutates"):
        return  # the author pinned the effect; trust the declaration
    for site in scan.mutations:
        kind, name = site.root
        if kind == "selfattr" and is_cache_attr(name) and site.depth >= 1:
            findings.append(
                Diagnostic(
                    file=minfo.path,
                    line=getattr(site.node, "lineno", function.node.lineno),
                    col=getattr(site.node, "col_offset", 0),
                    code="ELS401",
                    severity=Severity.ERROR,
                    message=(
                        f"in-place mutation ({site.op}) of a value reachable "
                        f"through cache attribute 'self.{name}'; cached "
                        "objects must stay frozen once stored"
                    ),
                )
            )
    enclosing = function.qualname.rsplit(".", 1)
    enclosing_class = enclosing[0] if len(enclosing) == 2 else None
    for call in scan.calls:
        callee = program.resolve_call(call, minfo, enclosing_class)
        if callee is None:
            continue
        callee_summary = summaries.get(id(callee))
        if callee_summary is None or not callee_summary.mutates_params:
            continue
        positional, keywords = scan.call_arg_roots.get(id(call), ((), {}))
        for parameter, rooted in _paired_arg_roots(
            call, callee, positional, keywords
        ):
            if parameter not in callee_summary.mutates_params or rooted is None:
                continue
            (kind, name), depth = rooted
            if kind == "selfattr" and is_cache_attr(name) and depth >= 1:
                findings.append(
                    Diagnostic(
                        file=minfo.path,
                        line=call.lineno,
                        col=call.col_offset,
                        code="ELS401",
                        severity=Severity.ERROR,
                        message=(
                            f"call to '{callee.name}' mutates its parameter "
                            f"'{parameter}', which aliases a value cached in "
                            f"'self.{name}'"
                        ),
                    )
                )


def _paired_arg_roots(
    call: ast.Call,
    callee: FunctionInfo,
    positional,
    keywords,
) -> Iterable[Tuple[str, Optional[Tuple[Tuple[str, str], int]]]]:
    callee_args = callee.node.args
    parameters = [
        parameter.arg
        for parameter in list(callee_args.posonlyargs) + list(callee_args.args)
        if parameter.arg not in ("self", "cls")
    ]
    for index in range(min(len(positional), len(parameters))):
        yield parameters[index], positional[index]
    for name, rooted in keywords.items():
        if name in parameters:
            yield name, rooted


# ---------------------------------------------------------------------------
# ELS402 — nondeterminism reachability
# ---------------------------------------------------------------------------


def _is_entry(function: FunctionInfo) -> bool:
    name = function.name.lower()
    if "evaluate_workload" in name or "bench" in name:
        return True
    path = function.module.path.replace("\\", "/").lower()
    stem = path.rsplit("/", 1)[-1]
    return (
        "/workloads/" in path
        or "/benchmarks/" in path
        or stem in ("harness.py", "generator.py", "generators.py")
    )


def _report_nondeterminism(
    program: Program,
    scans: Dict[int, FunctionScan],
    summaries: Dict[int, EffectSummary],
    findings: List[Diagnostic],
) -> None:
    edges: Dict[int, List[FunctionInfo]] = {}
    for minfo in program.modules:
        for function in minfo.functions:
            enclosing = function.qualname.rsplit(".", 1)
            enclosing_class = enclosing[0] if len(enclosing) == 2 else None
            callees = []
            for call in scans[id(function)].calls:
                callee = program.resolve_call(call, minfo, enclosing_class)
                if callee is not None:
                    callees.append(callee)
            edges[id(function)] = callees
    reachable: Dict[int, str] = {}
    frontier: List[FunctionInfo] = []
    for minfo in program.modules:
        for function in minfo.functions:
            if _is_entry(function) and summaries[id(function)].declared != "pure":
                reachable[id(function)] = function.qualname
                frontier.append(function)
    while frontier:
        function = frontier.pop()
        entry = reachable[id(function)]
        for callee in edges.get(id(function), []):
            if id(callee) in reachable:
                continue
            if summaries.get(id(callee), EffectSummary()).declared == "pure":
                continue
            reachable[id(callee)] = entry
            frontier.append(callee)
    seen: Set[Tuple[str, int, int]] = set()
    for minfo in program.modules:
        for function in minfo.functions:
            entry = reachable.get(id(function))
            if entry is None or summaries[id(function)].declared == "pure":
                continue
            for site in scans[id(function)].nondet_sites:
                line = getattr(site.node, "lineno", function.node.lineno)
                col = getattr(site.node, "col_offset", 0)
                key = (minfo.path, line, col)
                if key in seen:
                    continue
                seen.add(key)
                suffix = (
                    ""
                    if entry == function.qualname
                    else f" (reachable from '{entry}')"
                )
                findings.append(
                    Diagnostic(
                        file=minfo.path,
                        line=line,
                        col=col,
                        code="ELS402",
                        severity=Severity.ERROR,
                        message=(
                            f"{site.description} on an evaluation path"
                            f"{suffix}; thread a seeded Random through "
                            "instead"
                        ),
                    )
                )


# ---------------------------------------------------------------------------
# ELS403 — process-pool shipments
# ---------------------------------------------------------------------------


def _module_mutable_globals(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and provably_mutable(node.value):
                names.add(target.id)
    return names


def _report_pool_shipments(
    minfo: ModuleInfo,
    function: FunctionInfo,
    scan: FunctionScan,
    module_globals: Set[str],
    findings: List[Diagnostic],
) -> None:
    for shipment in scan.shipments:
        callable_node = shipment.callable_node
        if isinstance(callable_node, ast.Lambda):
            findings.append(
                Diagnostic(
                    file=minfo.path,
                    line=shipment.call.lineno,
                    col=shipment.call.col_offset,
                    code="ELS403",
                    severity=Severity.ERROR,
                    message=(
                        f"lambda shipped to pool.{shipment.method}() is "
                        "unpicklable; use a module-level function"
                    ),
                )
            )
        elif (
            isinstance(callable_node, ast.Name)
            and callable_node.id in scan.nested_defs
        ):
            findings.append(
                Diagnostic(
                    file=minfo.path,
                    line=shipment.call.lineno,
                    col=shipment.call.col_offset,
                    code="ELS403",
                    severity=Severity.ERROR,
                    message=(
                        f"nested function '{callable_node.id}' shipped to "
                        f"pool.{shipment.method}() is unpicklable and "
                        "captures enclosing state; use a module-level "
                        "function"
                    ),
                )
            )
        for argument in shipment.data_args:
            if isinstance(argument, ast.Name) and argument.id in module_globals:
                findings.append(
                    Diagnostic(
                        file=minfo.path,
                        line=argument.lineno,
                        col=argument.col_offset,
                        code="ELS403",
                        severity=Severity.ERROR,
                        message=(
                            f"module-level mutable '{argument.id}' shipped to "
                            f"pool.{shipment.method}(); workers receive a "
                            "pickled copy, so mutations silently diverge "
                            "between processes"
                        ),
                    )
                )


# ---------------------------------------------------------------------------
# ELS405 — set iteration order
# ---------------------------------------------------------------------------


def _report_set_order(
    minfo: ModuleInfo, function: FunctionInfo, findings: List[Diagnostic]
) -> None:
    set_names: Set[str] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if _is_set_expr(node.value, set_names):
                    set_names.add(target.id)
                else:
                    set_names.discard(target.id)

    def emit(node: ast.AST, what: str) -> None:
        findings.append(
            Diagnostic(
                file=minfo.path,
                line=getattr(node, "lineno", function.node.lineno),
                col=getattr(node, "col_offset", 0),
                code="ELS405",
                severity=Severity.ERROR,
                message=(
                    f"{what} iterates a set in hash order into an ordered "
                    "result; wrap the set in sorted() for deterministic "
                    "output"
                ),
            )
        )

    for node in ast.walk(function.node):
        if isinstance(node, ast.ListComp):
            if any(
                _is_set_expr(generator.iter, set_names)
                for generator in node.generators
            ):
                emit(node, "list comprehension")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDERED_CONSUMERS
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                emit(node, f"{func.id}()")
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                emit(node, "str.join()")
        elif isinstance(node, ast.For):
            if _is_set_expr(node.iter, set_names) and _loop_orders_output(node):
                emit(node, "for loop")


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        return isinstance(func, ast.Name) and func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) and _is_set_expr(
            node.right, set_names
        )
    return False


def _loop_orders_output(loop: ast.For) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ("append", "extend"):
                return True
    return False


# ---------------------------------------------------------------------------
# ELS404 / ELS406 / ELS407 — per-class rules
# ---------------------------------------------------------------------------


def _report_class_rules(
    minfo: ModuleInfo,
    scans: Dict[int, FunctionScan],
    findings: List[Diagnostic],
) -> None:
    for node in minfo.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = [
            function
            for function in minfo.functions
            if function.qualname.startswith(f"{node.name}.")
        ]
        if not methods:
            continue
        _report_stale_digest(minfo, node, methods, scans, findings)
        _report_uncopied_returns(minfo, node, methods, scans, findings)
        _report_mutable_hash_eq(minfo, node, methods, scans, findings)


def _digest_inputs(
    digest_method: FunctionInfo, scan: FunctionScan
) -> Tuple[Set[str], bool]:
    """(self attrs read by the digest, does it memoize into a cache attr)."""
    stored = {attr for attr, _, _, _ in scan.attr_stores}
    read: Set[str] = set()
    for node in ast.walk(digest_method.node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            read.add(node.attr)
    memoizes = any(is_cache_attr(attr) for attr in stored)
    return read - stored, memoizes


def _report_stale_digest(
    minfo: ModuleInfo,
    class_node: ast.ClassDef,
    methods: List[FunctionInfo],
    scans: Dict[int, FunctionScan],
    findings: List[Diagnostic],
) -> None:
    digest_methods = [
        method
        for method in methods
        if method.name == "fingerprint" or "digest" in method.name.lower()
    ]
    guarded: Set[str] = set()
    digest_names: Set[str] = set()
    for method in digest_methods:
        inputs, memoizes = _digest_inputs(method, scans[id(method)])
        if memoizes:
            guarded |= inputs
            digest_names.add(method.name)
    if not guarded:
        return
    label = " / ".join(sorted(digest_names))
    for method in methods:
        if method.name == "__init__" or method in digest_methods:
            continue
        scan = scans[id(method)]
        for site in scan.mutations:
            kind, name = site.root
            if kind != "selfattr" or name not in guarded:
                continue
            if site.op in _GROWTH_OPS and site.depth == 0:
                continue  # length-changing: the digest cache observes it
            findings.append(
                Diagnostic(
                    file=minfo.path,
                    line=getattr(site.node, "lineno", method.node.lineno),
                    col=getattr(site.node, "col_offset", 0),
                    code="ELS404",
                    severity=Severity.ERROR,
                    message=(
                        f"in-place mutation ({site.op}) of 'self.{name}', an "
                        f"input of the cached digest '{label}()'; the memo "
                        "only invalidates on length changes, so this serves "
                        "a stale digest"
                    ),
                )
            )
        for attr, _, store_node, _ in scan.attr_stores:
            if attr in guarded:
                findings.append(
                    Diagnostic(
                        file=minfo.path,
                        line=getattr(store_node, "lineno", method.node.lineno),
                        col=getattr(store_node, "col_offset", 0),
                        code="ELS404",
                        severity=Severity.ERROR,
                        message=(
                            f"rebinding 'self.{attr}', an input of the cached "
                            f"digest '{label}()', outside __init__ can serve "
                            "a stale digest"
                        ),
                    )
                )


def _report_uncopied_returns(
    minfo: ModuleInfo,
    class_node: ast.ClassDef,
    methods: List[FunctionInfo],
    scans: Dict[int, FunctionScan],
    findings: List[Diagnostic],
) -> None:
    mutable_stores: Set[str] = set()
    cache_attrs: Set[str] = set()
    for method in methods:
        scan = scans[id(method)]
        for attr, value, _, env in scan.attr_stores:
            if is_cache_attr(attr):
                cache_attrs.add(attr)
                if method.name != "__init__" and provably_mutable(value, env):
                    mutable_stores.add(attr)
        for attr, value, _, env in scan.subscript_stores:
            if is_cache_attr(attr):
                cache_attrs.add(attr)
                if method.name != "__init__" and provably_mutable(value, env):
                    mutable_stores.add(attr)
    if not mutable_stores:
        return
    for method in methods:
        for site in scans[id(method)].returns:
            kind, name = site.root
            if kind == "selfattr" and name in mutable_stores:
                findings.append(
                    Diagnostic(
                        file=minfo.path,
                        line=getattr(site.node, "lineno", method.node.lineno),
                        col=getattr(site.node, "col_offset", 0),
                        code="ELS406",
                        severity=Severity.ERROR,
                        message=(
                            f"'{method.name}' returns mutable state cached in "
                            f"'self.{name}' without a copy; freeze the cached "
                            "value (tuple) or return a copy"
                        ),
                    )
                )


def _report_mutable_hash_eq(
    minfo: ModuleInfo,
    class_node: ast.ClassDef,
    methods: List[FunctionInfo],
    scans: Dict[int, FunctionScan],
    findings: List[Diagnostic],
) -> None:
    identity_defs = [
        method for method in methods if method.name in ("__hash__", "__eq__")
    ]
    if not identity_defs:
        return
    for statement in class_node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__hash__":
                    return  # __hash__ = None: explicitly unhashable
    mutable = False
    for method in methods:
        if method.name in ("__init__", "__post_init__"):
            continue
        scan = scans[id(method)]
        if scan.attr_stores:
            mutable = True
            break
        if any(
            site.root[0] == "selfattr" and site.depth == 0
            for site in scan.mutations
        ):
            mutable = True
            break
    if not mutable:
        return
    for method in identity_defs:
        findings.append(
            Diagnostic(
                file=minfo.path,
                line=method.node.lineno,
                col=method.node.col_offset,
                code="ELS407",
                severity=Severity.WARNING,
                message=(
                    f"'{class_node.name}.{method.name}' defines value "
                    "identity on a class that mutates its own state; using "
                    "instances as cache keys risks silent key drift"
                ),
            )
        )
