"""Layer-1 lint engine: an ``ast``-walking rule framework (pure stdlib).

The engine is deliberately tiny: a rule is a class with a stable ``code``,
a default severity, a fix hint, and a ``check`` method that walks a parsed
:class:`ModuleUnderLint` and yields :class:`~repro.lint.diagnostics.Diagnostic`
findings.  Rules self-register via the :func:`register` decorator, so adding
a rule is one class in :mod:`repro.lint.rules_code` — nothing else to wire.

Two file-level policies the rules share:

* **Test exemption** — rules with ``library_only = True`` skip files named
  ``test_*``, ``conftest.py``, and ``bench_*``: tests legitimately assert
  exact float equalities and build throwaway snippets that library code
  must not contain.
* **Syntax errors** — a file that does not parse yields the reserved
  ``ELS100`` diagnostic instead of crashing the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from ..errors import LintError
from .diagnostics import Diagnostic, Severity, filter_diagnostics

__all__ = [
    "ModuleUnderLint",
    "LintRule",
    "register",
    "all_rules",
    "extract_noqa",
    "is_test_path",
    "known_codes",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

#: Reserved code for files that fail to parse.
SYNTAX_ERROR_CODE = "ELS100"

#: Reserved code for an ``els: noqa`` suppression that matched nothing.
UNUSED_SUPPRESSION_CODE = "ELS199"

#: File-name stems that identify test/bench scaffolding (exempt from
#: ``library_only`` rules).
_TEST_PREFIXES = ("test_", "bench_")
_TEST_NAMES = ("conftest",)


def is_test_path(path: str) -> bool:
    """True for ``test_*``, ``bench_*``, and ``conftest`` file paths."""
    stem = Path(path).stem
    return stem.startswith(_TEST_PREFIXES) or stem in _TEST_NAMES


@dataclass(frozen=True)
class ModuleUnderLint:
    """One parsed source file handed to every rule.

    Attributes:
        path: The path the file was read from (or a synthetic name).
        source: The raw source text.
        tree: The parsed ``ast.Module``.
    """

    path: str
    source: str
    tree: ast.Module

    @property
    def stem(self) -> str:
        """File name without extension (drives per-file rule policies)."""
        return Path(self.path).stem

    @property
    def is_test_file(self) -> bool:
        """True for ``test_*``, ``bench_*``, and ``conftest`` files."""
        return is_test_path(self.path)


class LintRule:
    """Base class for layer-1 rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        code: Stable ``ELS1xx`` identifier.
        name: Short kebab-case rule name (shows up in docs).
        severity: Default severity of the rule's findings.
        description: One-line summary for ``docs/LINT.md`` and ``--help``.
        hint: Default fix hint attached to findings.
        library_only: Skip test/bench/conftest files when True.
    """

    code: str = "ELS1XX"
    name: str = "unnamed-rule"
    severity: Severity = Severity.ERROR
    description: str = ""
    hint: Optional[str] = None
    library_only: bool = False

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        """Yield findings for one module (subclasses override)."""
        raise NotImplementedError

    def diagnostic(
        self,
        module: ModuleUnderLint,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Build a finding anchored at an AST node of the module."""
        return Diagnostic(
            code=self.code,
            message=message,
            severity=severity or self.severity,
            file=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            hint=hint if hint is not None else self.hint,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: add a rule to the global registry.

    Raises:
        LintError: on a duplicate rule code — codes are the stable public
            interface and must stay unique.
    """
    code = rule_class.code
    if code in _REGISTRY and _REGISTRY[code] is not rule_class:
        raise LintError(f"duplicate lint rule code {code!r}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> Tuple[LintRule, ...]:
    """Fresh instances of every registered rule, ordered by code."""
    # Importing the rules module populates the registry on first use.
    from . import rules_code  # noqa: F401  (import for side effect)

    return tuple(_REGISTRY[code]() for code in sorted(_REGISTRY))


def known_codes() -> Tuple[str, ...]:
    """Every diagnostic code any layer can emit (drives CLI validation)."""
    from .concurrency import CONCURRENCY_CODES
    from .contracts import CONTRACT_CODES
    from .dataflow import DATAFLOW_CODES
    from .effects import EFFECT_CODES
    from .perf import PERF_CODES
    from .semantic import SEMANTIC_CODES

    codes = {SYNTAX_ERROR_CODE, UNUSED_SUPPRESSION_CODE}
    codes.update(rule.code for rule in all_rules())
    codes.update(SEMANTIC_CODES)
    codes.update(DATAFLOW_CODES)
    codes.update(EFFECT_CODES)
    codes.update(CONCURRENCY_CODES)
    codes.update(PERF_CODES)
    codes.update(CONTRACT_CODES)
    return tuple(sorted(codes))


def _parse_failure(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        code=SYNTAX_ERROR_CODE,
        message=f"file does not parse: {exc.msg}",
        severity=Severity.ERROR,
        file=path,
        line=exc.lineno or 0,
        col=exc.offset or 0,
        hint="fix the syntax error; no other rule ran on this file",
    )


def _rule_findings(module: ModuleUnderLint) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for rule in all_rules():
        if rule.library_only and module.is_test_file:
            continue
        findings.extend(rule.check(module))
    return findings


def extract_noqa(source: str) -> List[Tuple[int, Optional[Tuple[str, ...]]]]:
    """The ``(line, codes-or-None)`` noqa directives of one source file.

    The shape the incremental cache persists, so warm runs apply
    suppressions without re-tokenizing the source.
    """
    from .dataflow.annotations import parse_directives

    directives, _ = parse_directives(source)
    return [
        (d.line, None if d.codes is None else tuple(sorted(d.codes)))
        for d in directives
        if d.kind == "noqa"
    ]


def _apply_suppressions(
    findings: List[Diagnostic],
    noqa_by_file: Dict[str, Sequence[Tuple[int, Optional[Tuple[str, ...]]]]],
) -> List[Diagnostic]:
    """Drop findings matched by line-scoped ``# els: noqa`` directives.

    ``noqa_by_file`` maps path -> :func:`extract_noqa` rows.  A
    suppression that matches no finding is itself reported (ELS199) —
    stale suppressions hide future regressions.  The ELS199 findings are
    not themselves suppressible, otherwise a blanket ``noqa`` could never
    be reported as unused.
    """
    kept: List[Diagnostic] = []
    suppressions = {}  # (path, line) -> [codes-or-None, used?]
    for path, rows in noqa_by_file.items():
        for line, codes in rows:
            suppressions[(path, line)] = [codes, False]
    if not suppressions:
        return findings
    for diagnostic in findings:
        entry = suppressions.get((diagnostic.file, diagnostic.line))
        if entry is not None:
            codes = entry[0]
            if codes is None or diagnostic.code in codes:
                entry[1] = True
                continue
        kept.append(diagnostic)
    for (path, line), (codes, used) in suppressions.items():
        if used:
            continue
        scope = "all codes" if codes is None else ", ".join(sorted(codes))
        kept.append(
            Diagnostic(
                code=UNUSED_SUPPRESSION_CODE,
                message=f"unused suppression ({scope}): no diagnostic on this line",
                severity=Severity.WARNING,
                file=path,
                line=line,
                col=0,
                hint="remove the stale '# els: noqa' comment",
            )
        )
    return kept


def _dedupe(findings: Iterable[Diagnostic]) -> List[Diagnostic]:
    seen = set()
    result: List[Diagnostic] = []
    for diagnostic in findings:
        key = (diagnostic.file, diagnostic.line, diagnostic.col, diagnostic.code)
        if key in seen:
            continue
        seen.add(key)
        result.append(diagnostic)
    return result


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    dataflow: bool = False,
    effects: bool = False,
    concurrency: bool = False,
    perf: bool = False,
    contracts: bool = False,
) -> List[Diagnostic]:
    """Lint one source string and return its (filtered, sorted) findings.

    With ``dataflow=True`` the ELS3xx quantity-dimension pass also runs;
    with ``effects=True`` the ELS4xx effect-and-determinism pass runs;
    with ``concurrency=True`` the ELS5xx concurrency-safety pass runs;
    with ``perf=True`` the ELS6xx hot-path performance pass runs;
    with ``contracts=True`` the ELS7xx contract-and-architecture pass
    runs (function summaries stay within this one module).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return filter_diagnostics([_parse_failure(path, exc)], select, ignore)
    module = ModuleUnderLint(path=path, source=source, tree=tree)
    findings = _rule_findings(module)
    for enabled, passname in (
        (dataflow, "dataflow"),
        (effects, "effects"),
        (concurrency, "concurrency"),
        (perf, "perf"),
        (contracts, "contracts"),
    ):
        if enabled:
            findings.extend(_ANALYSIS_PASSES[passname]()([module]))
    findings = _apply_suppressions(
        _dedupe(findings), {path: extract_noqa(source)}
    )
    return filter_diagnostics(findings, select, ignore)


def _dataflow_pass():
    from .dataflow import analyze_modules

    return analyze_modules


def _effects_pass():
    from .effects import analyze_modules

    return analyze_modules


def _concurrency_pass():
    from .concurrency import analyze_modules

    return analyze_modules


def _perf_pass():
    from .perf import analyze_modules

    return analyze_modules


def _contracts_pass():
    from .contracts import analyze_modules

    return analyze_modules


#: Pass name -> lazy importer of the layer's ``analyze_modules`` driver.
#: Names double as the cache's pass-key components, so their spelling is
#: part of the cache contract.
_ANALYSIS_PASSES = {
    "dataflow": _dataflow_pass,
    "effects": _effects_pass,
    "concurrency": _concurrency_pass,
    "perf": _perf_pass,
    "contracts": _contracts_pass,
}

#: Cache pass tag of the contracts layer's whole-set half (see
#: :func:`_cached_analysis`) — spelled here because it is part of the
#: cache contract just like the pass names above.
_CONTRACTS_GLOBAL_TAG = "contracts.global"


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic ``.py`` file stream.

    Raises:
        LintError: for a path that does not exist or a file that is not a
            Python source file (usage errors, exit code 2 at the CLI).
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a Python source file: {path}")
            yield path
        else:
            raise LintError(f"no such file or directory: {path}")


@dataclass
class _FileRecord:
    """Everything stage 1 (per-file) learned about one file.

    ``tree`` is kept only on the serial fresh-parse path — the whole
    point of the record is that warm cache hits carry everything the
    engine needs *without* a tree, and later stages parse lazily.
    """

    path: str
    source: str
    digest: str
    parsed_ok: bool
    findings: List[Diagnostic]
    noqa: List[Tuple[int, Optional[Tuple[str, ...]]]]
    defined: Tuple[str, ...]
    referenced: Tuple[str, ...]
    tree: Optional[ast.Module] = None
    from_cache: bool = False

    def analysis_module(self) -> ModuleUnderLint:
        """A :class:`ModuleUnderLint`, parsing now if stage 1 did not."""
        if self.tree is None:
            self.tree = ast.parse(self.source, filename=self.path)
        return ModuleUnderLint(
            path=self.path, source=self.source, tree=self.tree
        )


def _read_file(path_str: str) -> Tuple[str, str]:
    """Read one file; returns ``(source, content-digest)``.

    Raises:
        LintError: when the file cannot be read.
    """
    from .cache import content_digest

    try:
        data = Path(path_str).read_bytes()
    except OSError as exc:
        raise LintError(f"cannot read {path_str}: {exc}") from exc
    return data.decode("utf-8"), content_digest(data)


def _examine_file(path_str: str, source: str, digest: str) -> _FileRecord:
    """Parse, rule-check, and interface-index one file (stage 1 miss)."""
    from .cache import module_interface

    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        return _FileRecord(
            path=path_str,
            source=source,
            digest=digest,
            parsed_ok=False,
            findings=[_parse_failure(path_str, exc)],
            noqa=extract_noqa(source),
            defined=(),
            referenced=(),
        )
    module = ModuleUnderLint(path=path_str, source=source, tree=tree)
    defined, referenced = module_interface(tree)
    return _FileRecord(
        path=path_str,
        source=source,
        digest=digest,
        parsed_ok=True,
        findings=_rule_findings(module),
        noqa=extract_noqa(source),
        defined=tuple(defined),
        referenced=tuple(referenced),
        tree=tree,
    )


def _file_worker(
    item: Tuple[str, str, str]
) -> Tuple[str, bool, List[Diagnostic], List, Tuple[str, ...], Tuple[str, ...]]:
    """Pool wrapper around :func:`_examine_file` (tree dropped: ASTs are
    large to pickle; dirty-component analysis re-parses on demand)."""
    path_str, source, digest = item
    record = _examine_file(path_str, source, digest)
    return (
        record.path,
        record.parsed_ok,
        record.findings,
        record.noqa,
        record.defined,
        record.referenced,
    )


def _pool_context():
    """A fork-preferred multiprocessing context (same policy as the
    evaluation harness): fork inherits the populated rule registry."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context()


def _resolve_jobs(jobs: int) -> int:
    """``0`` means one job per CPU; negatives are usage errors."""
    if jobs == 0:
        import os

        return os.cpu_count() or 1
    if jobs < 0:
        raise LintError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _enabled_passes(
    dataflow: bool,
    effects: bool,
    concurrency: bool,
    perf: bool,
    contracts: bool,
) -> List[str]:
    names = []
    if dataflow:
        names.append("dataflow")
    if effects:
        names.append("effects")
    if concurrency:
        names.append("concurrency")
    if perf:
        names.append("perf")
    if contracts:
        names.append("contracts")
    return names


def _run_passes(
    passes: Sequence[str],
    modules: Sequence[ModuleUnderLint],
    summary_sink=None,
) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for passname in passes:
        driver = _ANALYSIS_PASSES[passname]()
        findings.extend(driver(modules, summary_sink=summary_sink))
    return findings


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    dataflow: bool = False,
    effects: bool = False,
    concurrency: bool = False,
    jobs: int = 1,
    perf: bool = False,
    contracts: bool = False,
    cache=None,
) -> List[Diagnostic]:
    """Lint files and directory trees; returns all findings, sorted.

    With ``dataflow=True`` the ELS3xx pass runs over the *whole* file set
    at once, so function summaries propagate across modules; the same
    holds for the ELS4xx effect pass under ``effects=True``, the ELS5xx
    concurrency pass under ``concurrency=True``, the ELS6xx
    performance pass under ``perf=True``, and the ELS7xx
    contract-and-architecture pass under ``contracts=True``.  With ``jobs > 1`` per-file
    reading/parsing/rule-checking fans out over a process pool — the
    file list is sorted and ``pool.map`` preserves order, so output is
    byte-identical to a serial run; ``jobs=0`` means one job per CPU.

    ``cache`` is an optional :class:`repro.lint.cache.LintCache`.  With a
    cache, per-file results are reused when file bytes and the rule set
    are unchanged, and the interprocedural passes run per dependency
    component with unchanged components replayed from cache — the output
    is byte-identical to an uncached run, only faster.

    Raises:
        LintError: for unusable paths (see :func:`iter_python_files`),
            unreadable files, or negative ``jobs``.
    """
    jobs = _resolve_jobs(jobs)
    file_paths = [str(p) for p in iter_python_files(paths)]
    records: Dict[str, _FileRecord] = {}
    pending: List[Tuple[str, str, str]] = []
    for path_str in file_paths:
        source, digest = _read_file(path_str)
        entry = cache.load_file(path_str, digest) if cache is not None else None
        if entry is not None:
            records[path_str] = _FileRecord(
                path=path_str,
                source=source,
                digest=digest,
                parsed_ok=entry.parsed_ok,
                findings=list(entry.findings),
                noqa=list(entry.noqa),
                defined=entry.defined,
                referenced=entry.referenced,
                from_cache=True,
            )
        else:
            pending.append((path_str, source, digest))
    if jobs > 1 and len(pending) > 1:
        by_path = {p: (s, d) for p, s, d in pending}
        context = _pool_context()
        with context.Pool(processes=min(jobs, len(pending))) as pool:
            for path_str, parsed_ok, file_findings, noqa, defined, referenced \
                    in pool.map(_file_worker, pending):
                source, digest = by_path[path_str]
                records[path_str] = _FileRecord(
                    path=path_str,
                    source=source,
                    digest=digest,
                    parsed_ok=parsed_ok,
                    findings=file_findings,
                    noqa=noqa,
                    defined=defined,
                    referenced=referenced,
                )
    else:
        for path_str, source, digest in pending:
            records[path_str] = _examine_file(path_str, source, digest)
    if cache is not None:
        from .cache import FileEntry

        for path_str, _, _ in pending:
            record = records[path_str]
            cache.store_file(
                FileEntry(
                    path=record.path,
                    digest=record.digest,
                    parsed_ok=record.parsed_ok,
                    findings=tuple(record.findings),
                    noqa=tuple(record.noqa),
                    defined=record.defined,
                    referenced=record.referenced,
                )
            )
    findings: List[Diagnostic] = []
    for path_str in file_paths:
        findings.extend(records[path_str].findings)
    passes = _enabled_passes(dataflow, effects, concurrency, perf, contracts)
    if passes:
        if cache is not None:
            findings.extend(
                _cached_analysis(cache, passes, file_paths, records)
            )
        else:
            analysis_modules = [
                records[path_str].analysis_module()
                for path_str in file_paths
                if records[path_str].parsed_ok
            ]
            findings.extend(_run_passes(passes, analysis_modules))
    noqa_by_file = {
        path_str: records[path_str].noqa for path_str in file_paths
    }
    findings = _apply_suppressions(_dedupe(findings), noqa_by_file)
    return filter_diagnostics(findings, select, ignore)


def _cached_analysis(
    cache,
    passes: Sequence[str],
    file_paths: Sequence[str],
    records: Dict[str, _FileRecord],
) -> List[Diagnostic]:
    """Run the interprocedural passes per dependency component.

    Unchanged components replay their cached findings; dirty components
    are analyzed in isolation — sound because a component closes over
    every shared-name channel the analyses can see through (see
    :mod:`repro.lint.cache`), so analyzing it alone equals the
    whole-program run restricted to its members.

    The contracts layer is the one exception: its ``registers=``
    directive and whole-graph rules (protocol conformance, import
    cycles, removed-module drift) are invisible to the component
    interface, so only its *local* half runs per component; the global
    half runs once over every eligible file, cached under its own
    pseudo-component entry keyed by the full member list.
    """
    from .cache import dependency_components

    eligible = [
        path_str
        for path_str in file_paths
        if records[path_str].parsed_ok and not is_test_path(path_str)
    ]
    interfaces = {
        path_str: (records[path_str].defined, records[path_str].referenced)
        for path_str in eligible
    }
    findings: List[Diagnostic] = []
    for component in dependency_components(interfaces):
        members = [(p, records[p].digest) for p in component]
        cached = cache.load_component(members, passes)
        if cached is not None:
            findings.extend(cached)
            continue
        modules = [records[p].analysis_module() for p in component]
        sink: Dict[str, Dict[str, Dict[str, object]]] = {}
        component_findings = _run_component_passes(
            passes, modules, summary_sink=sink
        )
        cache.store_component(members, passes, component_findings, sink)
        findings.extend(component_findings)
    if "contracts" in passes and eligible:
        all_members = [(p, records[p].digest) for p in eligible]
        cached = cache.load_component(all_members, [_CONTRACTS_GLOBAL_TAG])
        if cached is not None:
            findings.extend(cached)
        else:
            from .contracts import analyze_modules_global

            modules = [records[p].analysis_module() for p in eligible]
            global_findings = analyze_modules_global(modules)
            cache.store_component(
                all_members, [_CONTRACTS_GLOBAL_TAG], global_findings, {}
            )
            findings.extend(global_findings)
    return findings


def _run_component_passes(
    passes: Sequence[str],
    modules: Sequence[ModuleUnderLint],
    summary_sink=None,
) -> List[Diagnostic]:
    """Like :func:`_run_passes`, but component-sound: the contracts pass
    contributes only its local half here (the global half is handled by
    :func:`_cached_analysis` once per file set)."""
    findings: List[Diagnostic] = []
    for passname in passes:
        if passname == "contracts":
            from .contracts import analyze_modules_local as driver
        else:
            driver = _ANALYSIS_PASSES[passname]()
        findings.extend(driver(modules, summary_sink=summary_sink))
    return findings
