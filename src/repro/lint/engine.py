"""Layer-1 lint engine: an ``ast``-walking rule framework (pure stdlib).

The engine is deliberately tiny: a rule is a class with a stable ``code``,
a default severity, a fix hint, and a ``check`` method that walks a parsed
:class:`ModuleUnderLint` and yields :class:`~repro.lint.diagnostics.Diagnostic`
findings.  Rules self-register via the :func:`register` decorator, so adding
a rule is one class in :mod:`repro.lint.rules_code` — nothing else to wire.

Two file-level policies the rules share:

* **Test exemption** — rules with ``library_only = True`` skip files named
  ``test_*``, ``conftest.py``, and ``bench_*``: tests legitimately assert
  exact float equalities and build throwaway snippets that library code
  must not contain.
* **Syntax errors** — a file that does not parse yields the reserved
  ``ELS100`` diagnostic instead of crashing the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from ..errors import LintError
from .diagnostics import Diagnostic, Severity, filter_diagnostics

__all__ = [
    "ModuleUnderLint",
    "LintRule",
    "register",
    "all_rules",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

#: Reserved code for files that fail to parse.
SYNTAX_ERROR_CODE = "ELS100"

#: File-name stems that identify test/bench scaffolding (exempt from
#: ``library_only`` rules).
_TEST_PREFIXES = ("test_", "bench_")
_TEST_NAMES = ("conftest",)


@dataclass(frozen=True)
class ModuleUnderLint:
    """One parsed source file handed to every rule.

    Attributes:
        path: The path the file was read from (or a synthetic name).
        source: The raw source text.
        tree: The parsed ``ast.Module``.
    """

    path: str
    source: str
    tree: ast.Module

    @property
    def stem(self) -> str:
        """File name without extension (drives per-file rule policies)."""
        return Path(self.path).stem

    @property
    def is_test_file(self) -> bool:
        """True for ``test_*``, ``bench_*``, and ``conftest`` files."""
        stem = self.stem
        return stem.startswith(_TEST_PREFIXES) or stem in _TEST_NAMES


class LintRule:
    """Base class for layer-1 rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        code: Stable ``ELS1xx`` identifier.
        name: Short kebab-case rule name (shows up in docs).
        severity: Default severity of the rule's findings.
        description: One-line summary for ``docs/LINT.md`` and ``--help``.
        hint: Default fix hint attached to findings.
        library_only: Skip test/bench/conftest files when True.
    """

    code: str = "ELS1XX"
    name: str = "unnamed-rule"
    severity: Severity = Severity.ERROR
    description: str = ""
    hint: Optional[str] = None
    library_only: bool = False

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        """Yield findings for one module (subclasses override)."""
        raise NotImplementedError

    def diagnostic(
        self,
        module: ModuleUnderLint,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Build a finding anchored at an AST node of the module."""
        return Diagnostic(
            code=self.code,
            message=message,
            severity=severity or self.severity,
            file=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            hint=hint if hint is not None else self.hint,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: add a rule to the global registry.

    Raises:
        LintError: on a duplicate rule code — codes are the stable public
            interface and must stay unique.
    """
    code = rule_class.code
    if code in _REGISTRY and _REGISTRY[code] is not rule_class:
        raise LintError(f"duplicate lint rule code {code!r}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> Tuple[LintRule, ...]:
    """Fresh instances of every registered rule, ordered by code."""
    # Importing the rules module populates the registry on first use.
    from . import rules_code  # noqa: F401  (import for side effect)

    return tuple(_REGISTRY[code]() for code in sorted(_REGISTRY))


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint one source string and return its (filtered, sorted) findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        syntax_diagnostic = Diagnostic(
            code=SYNTAX_ERROR_CODE,
            message=f"file does not parse: {exc.msg}",
            severity=Severity.ERROR,
            file=path,
            line=exc.lineno or 0,
            col=exc.offset or 0,
            hint="fix the syntax error; no other rule ran on this file",
        )
        return filter_diagnostics([syntax_diagnostic], select, ignore)
    module = ModuleUnderLint(path=path, source=source, tree=tree)
    findings: List[Diagnostic] = []
    for rule in all_rules():
        if rule.library_only and module.is_test_file:
            continue
        findings.extend(rule.check(module))
    return filter_diagnostics(findings, select, ignore)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic ``.py`` file stream.

    Raises:
        LintError: for a path that does not exist or a file that is not a
            Python source file (usage errors, exit code 2 at the CLI).
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a Python source file: {path}")
            yield path
        else:
            raise LintError(f"no such file or directory: {path}")


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Lint files and directory trees; returns all findings, sorted.

    Raises:
        LintError: for unusable paths (see :func:`iter_python_files`) or
            unreadable files.
    """
    findings: List[Diagnostic] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        findings.extend(lint_source(source, str(file_path), select=None, ignore=None))
    return filter_diagnostics(findings, select, ignore)
