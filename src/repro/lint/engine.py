"""Layer-1 lint engine: an ``ast``-walking rule framework (pure stdlib).

The engine is deliberately tiny: a rule is a class with a stable ``code``,
a default severity, a fix hint, and a ``check`` method that walks a parsed
:class:`ModuleUnderLint` and yields :class:`~repro.lint.diagnostics.Diagnostic`
findings.  Rules self-register via the :func:`register` decorator, so adding
a rule is one class in :mod:`repro.lint.rules_code` — nothing else to wire.

Two file-level policies the rules share:

* **Test exemption** — rules with ``library_only = True`` skip files named
  ``test_*``, ``conftest.py``, and ``bench_*``: tests legitimately assert
  exact float equalities and build throwaway snippets that library code
  must not contain.
* **Syntax errors** — a file that does not parse yields the reserved
  ``ELS100`` diagnostic instead of crashing the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from ..errors import LintError
from .diagnostics import Diagnostic, Severity, filter_diagnostics

__all__ = [
    "ModuleUnderLint",
    "LintRule",
    "register",
    "all_rules",
    "known_codes",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

#: Reserved code for files that fail to parse.
SYNTAX_ERROR_CODE = "ELS100"

#: Reserved code for an ``els: noqa`` suppression that matched nothing.
UNUSED_SUPPRESSION_CODE = "ELS199"

#: File-name stems that identify test/bench scaffolding (exempt from
#: ``library_only`` rules).
_TEST_PREFIXES = ("test_", "bench_")
_TEST_NAMES = ("conftest",)


@dataclass(frozen=True)
class ModuleUnderLint:
    """One parsed source file handed to every rule.

    Attributes:
        path: The path the file was read from (or a synthetic name).
        source: The raw source text.
        tree: The parsed ``ast.Module``.
    """

    path: str
    source: str
    tree: ast.Module

    @property
    def stem(self) -> str:
        """File name without extension (drives per-file rule policies)."""
        return Path(self.path).stem

    @property
    def is_test_file(self) -> bool:
        """True for ``test_*``, ``bench_*``, and ``conftest`` files."""
        stem = self.stem
        return stem.startswith(_TEST_PREFIXES) or stem in _TEST_NAMES


class LintRule:
    """Base class for layer-1 rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        code: Stable ``ELS1xx`` identifier.
        name: Short kebab-case rule name (shows up in docs).
        severity: Default severity of the rule's findings.
        description: One-line summary for ``docs/LINT.md`` and ``--help``.
        hint: Default fix hint attached to findings.
        library_only: Skip test/bench/conftest files when True.
    """

    code: str = "ELS1XX"
    name: str = "unnamed-rule"
    severity: Severity = Severity.ERROR
    description: str = ""
    hint: Optional[str] = None
    library_only: bool = False

    def check(self, module: ModuleUnderLint) -> Iterator[Diagnostic]:
        """Yield findings for one module (subclasses override)."""
        raise NotImplementedError

    def diagnostic(
        self,
        module: ModuleUnderLint,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Build a finding anchored at an AST node of the module."""
        return Diagnostic(
            code=self.code,
            message=message,
            severity=severity or self.severity,
            file=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            hint=hint if hint is not None else self.hint,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: add a rule to the global registry.

    Raises:
        LintError: on a duplicate rule code — codes are the stable public
            interface and must stay unique.
    """
    code = rule_class.code
    if code in _REGISTRY and _REGISTRY[code] is not rule_class:
        raise LintError(f"duplicate lint rule code {code!r}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> Tuple[LintRule, ...]:
    """Fresh instances of every registered rule, ordered by code."""
    # Importing the rules module populates the registry on first use.
    from . import rules_code  # noqa: F401  (import for side effect)

    return tuple(_REGISTRY[code]() for code in sorted(_REGISTRY))


def known_codes() -> Tuple[str, ...]:
    """Every diagnostic code any layer can emit (drives CLI validation)."""
    from .concurrency import CONCURRENCY_CODES
    from .dataflow import DATAFLOW_CODES
    from .effects import EFFECT_CODES
    from .semantic import SEMANTIC_CODES

    codes = {SYNTAX_ERROR_CODE, UNUSED_SUPPRESSION_CODE}
    codes.update(rule.code for rule in all_rules())
    codes.update(SEMANTIC_CODES)
    codes.update(DATAFLOW_CODES)
    codes.update(EFFECT_CODES)
    codes.update(CONCURRENCY_CODES)
    return tuple(sorted(codes))


def _parse_failure(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        code=SYNTAX_ERROR_CODE,
        message=f"file does not parse: {exc.msg}",
        severity=Severity.ERROR,
        file=path,
        line=exc.lineno or 0,
        col=exc.offset or 0,
        hint="fix the syntax error; no other rule ran on this file",
    )


def _rule_findings(module: ModuleUnderLint) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for rule in all_rules():
        if rule.library_only and module.is_test_file:
            continue
        findings.extend(rule.check(module))
    return findings


def _apply_suppressions(
    findings: List[Diagnostic], modules: Sequence[ModuleUnderLint]
) -> List[Diagnostic]:
    """Drop findings matched by line-scoped ``# els: noqa`` directives.

    A suppression that matches no finding is itself reported (ELS199) —
    stale suppressions hide future regressions.  The ELS199 findings are
    not themselves suppressible, otherwise a blanket ``noqa`` could never
    be reported as unused.
    """
    from .dataflow.annotations import parse_directives

    kept: List[Diagnostic] = []
    suppressions = {}  # (path, line) -> [Directive, used?]
    for module in modules:
        directives, _ = parse_directives(module.source)
        for directive in directives:
            if directive.kind == "noqa":
                suppressions[(module.path, directive.line)] = [directive, False]
    if not suppressions:
        return findings
    for diagnostic in findings:
        entry = suppressions.get((diagnostic.file, diagnostic.line))
        if entry is not None:
            directive = entry[0]
            if directive.codes is None or diagnostic.code in directive.codes:
                entry[1] = True
                continue
        kept.append(diagnostic)
    for (path, line), (directive, used) in suppressions.items():
        if used:
            continue
        scope = "all codes" if directive.codes is None \
            else ", ".join(sorted(directive.codes))
        kept.append(
            Diagnostic(
                code=UNUSED_SUPPRESSION_CODE,
                message=f"unused suppression ({scope}): no diagnostic on this line",
                severity=Severity.WARNING,
                file=path,
                line=line,
                col=0,
                hint="remove the stale '# els: noqa' comment",
            )
        )
    return kept


def _dedupe(findings: Iterable[Diagnostic]) -> List[Diagnostic]:
    seen = set()
    result: List[Diagnostic] = []
    for diagnostic in findings:
        key = (diagnostic.file, diagnostic.line, diagnostic.col, diagnostic.code)
        if key in seen:
            continue
        seen.add(key)
        result.append(diagnostic)
    return result


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    dataflow: bool = False,
    effects: bool = False,
    concurrency: bool = False,
) -> List[Diagnostic]:
    """Lint one source string and return its (filtered, sorted) findings.

    With ``dataflow=True`` the ELS3xx quantity-dimension pass also runs;
    with ``effects=True`` the ELS4xx effect-and-determinism pass runs;
    with ``concurrency=True`` the ELS5xx concurrency-safety pass runs
    (function summaries stay within this one module).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return filter_diagnostics([_parse_failure(path, exc)], select, ignore)
    module = ModuleUnderLint(path=path, source=source, tree=tree)
    findings = _rule_findings(module)
    if dataflow:
        from .dataflow import analyze_modules

        findings.extend(analyze_modules([module]))
    if effects:
        from .effects import analyze_modules as analyze_effect_modules

        findings.extend(analyze_effect_modules([module]))
    if concurrency:
        from .concurrency import analyze_modules as analyze_concurrency_modules

        findings.extend(analyze_concurrency_modules([module]))
    findings = _apply_suppressions(_dedupe(findings), [module])
    return filter_diagnostics(findings, select, ignore)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a deterministic ``.py`` file stream.

    Raises:
        LintError: for a path that does not exist or a file that is not a
            Python source file (usage errors, exit code 2 at the CLI).
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise LintError(f"not a Python source file: {path}")
            yield path
        else:
            raise LintError(f"no such file or directory: {path}")


@dataclass(frozen=True)
class _SourceRecord:
    """Path + source of a linted file (what suppressions need)."""

    path: str
    source: str


def _lint_worker(path_str: str) -> Tuple[str, str, List[Diagnostic], bool]:
    """Read, parse, and rule-check one file (picklable for ``--jobs``).

    Returns ``(path, source, findings, parsed_ok)``.  Diagnostics are
    frozen dataclasses, so the result round-trips through a process pool.
    """
    try:
        source = Path(path_str).read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path_str}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        return (path_str, source, [_parse_failure(path_str, exc)], False)
    module = ModuleUnderLint(path=path_str, source=source, tree=tree)
    return (path_str, source, _rule_findings(module), True)


def _pool_context():
    """A fork-preferred multiprocessing context (same policy as the
    evaluation harness): fork inherits the populated rule registry."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context()


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    dataflow: bool = False,
    effects: bool = False,
    concurrency: bool = False,
    jobs: int = 1,
) -> List[Diagnostic]:
    """Lint files and directory trees; returns all findings, sorted.

    With ``dataflow=True`` the ELS3xx pass runs over the *whole* file set
    at once, so function summaries propagate across modules; the same
    holds for the ELS4xx effect pass under ``effects=True`` and the
    ELS5xx concurrency pass under ``concurrency=True``.  With
    ``jobs > 1`` per-file reading/parsing/rule-checking fans out over a
    process pool — the file list is sorted and ``pool.map`` preserves
    order, so output is byte-identical to a serial run.

    Raises:
        LintError: for unusable paths (see :func:`iter_python_files`) or
            unreadable files.
    """
    if jobs < 1:
        raise LintError(f"jobs must be >= 1, got {jobs}")
    file_paths = [str(p) for p in iter_python_files(paths)]
    findings: List[Diagnostic] = []
    records: List[Tuple[str, str, bool]] = []
    if jobs > 1 and len(file_paths) > 1:
        context = _pool_context()
        with context.Pool(processes=min(jobs, len(file_paths))) as pool:
            results = pool.map(_lint_worker, file_paths)
    else:
        results = [_lint_worker(path_str) for path_str in file_paths]
    for path_str, source, file_findings, parsed_ok in results:
        findings.extend(file_findings)
        records.append((path_str, source, parsed_ok))
    if dataflow or effects or concurrency:
        analysis_modules = [
            ModuleUnderLint(
                path=path_str,
                source=source,
                tree=ast.parse(source, filename=path_str),
            )
            for path_str, source, parsed_ok in records
            if parsed_ok
        ]
        if dataflow:
            from .dataflow import analyze_modules

            findings.extend(analyze_modules(analysis_modules))
        if effects:
            from .effects import analyze_modules as analyze_effect_modules

            findings.extend(analyze_effect_modules(analysis_modules))
        if concurrency:
            from .concurrency import (
                analyze_modules as analyze_concurrency_modules,
            )

            findings.extend(analyze_concurrency_modules(analysis_modules))
    sources = [_SourceRecord(path_str, source) for path_str, source, _ in records]
    findings = _apply_suppressions(_dedupe(findings), sources)
    return filter_diagnostics(findings, select, ignore)
