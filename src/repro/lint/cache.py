"""The incremental, content-addressed lint cache.

Re-running five analysis layers over an unchanged tree is wasted work —
the lint stack had become the slowest step in CI and pre-commit.  This
module makes warm runs cheap while keeping one invariant absolute:
**cached output is byte-identical to a cold run**.  The cache may only
ever save time, never change a verdict.

Two entry kinds live under the cache root (``.repro-lint-cache/`` by
default):

* **File entries** (``files/<key>.json``) — the layer-1 rule findings of
  one file, its ``noqa`` suppressions, and a name *interface* (terminal
  names defined / referenced).  Keyed by the blake2b digest of the raw
  file bytes + the path + the rule-set fingerprint, so an edit, a rename,
  or a linter upgrade each miss.
* **Component entries** (``components/<key>.json``) — the findings and
  per-module summaries of the interprocedural passes (ELS3xx–ELS6xx)
  over one *dependency component*.  Keyed by the digests of every member
  file + the fingerprint + the enabled passes.

Why components and not the import graph: the analyses resolve calls with
:meth:`repro.lint.dataflow.summaries.Program.resolve_call`, whose last
step matches a *globally unique terminal name* across the whole file set
— no import required.  A sound invalidation unit must therefore close
over shared names, not just imports.  Files are grouped by the
undirected relation "A references a terminal name B defines" (imports,
calls, attribute calls, and base classes all count as references); its
connected components are exactly the sets within which the analyses can
see each other, so analyzing a component alone equals the whole-program
run restricted to it — including the uniqueness test, because *every*
definer of a referenced name lands in the referencer's component.

The rule-set fingerprint is the blake2b digest of the lint package's own
source files, so any change to any rule, summary, or driver invalidates
everything — "did my linter change" is answered by hashing the linter.

Every entry embeds a digest binding its key to its payload (the
:class:`repro.analysis.truthcache.TruthCache` idiom): a torn write, a
flipped bit, or a hand-edited file fails verification on read and counts
as a cold miss.  The cache never trusts, it re-derives.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic

__all__ = [
    "CacheStats",
    "FileEntry",
    "LintCache",
    "DEFAULT_CACHE_DIR",
    "content_digest",
    "dependency_components",
    "module_interface",
    "ruleset_fingerprint",
]

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-lint-cache"

#: Bump to orphan every existing entry when the payload schema changes.
_SCHEMA_VERSION = "1"

_DIGEST_SIZE = 16


def content_digest(data: bytes) -> str:
    """Hex blake2b digest of raw file bytes (the content address)."""
    return hashlib.blake2b(data, digest_size=_DIGEST_SIZE).hexdigest()


def _combine(parts: Sequence[str]) -> str:
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


_RULESET_FINGERPRINT: Optional[str] = None


def ruleset_fingerprint() -> str:
    """Digest of the lint package's own sources (+ schema version).

    Computed once per process.  Hashing the linter itself means a rule
    tweak, a new diagnostic, or a changed fixpoint invalidates every
    cached entry without anyone remembering to bump a version.  The
    contract layer's committed data files (``layers.toml``,
    ``api-baseline.json``) are hashed alongside the ``.py`` sources:
    editing the declared architecture or acknowledging an API change
    must invalidate cached findings exactly like editing a rule.
    """
    global _RULESET_FINGERPRINT
    if _RULESET_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent
        parts: List[str] = [_SCHEMA_VERSION]
        sources = [
            source
            for pattern in ("*.py", "*.toml", "*.json")
            for source in package_root.rglob(pattern)
        ]
        for source in sorted(sources):
            parts.append(source.relative_to(package_root).as_posix())
            parts.append(content_digest(source.read_bytes()))
        _RULESET_FINGERPRINT = _combine(parts)
    return _RULESET_FINGERPRINT


def _reset_fingerprint_for_tests() -> None:
    """Drop the memoized fingerprint (test hook only)."""
    global _RULESET_FINGERPRINT
    _RULESET_FINGERPRINT = None


# ---------------------------------------------------------------------------
# Name interfaces and dependency components
# ---------------------------------------------------------------------------


def module_interface(tree: ast.Module) -> Tuple[List[str], List[str]]:
    """``(defined, referenced)`` terminal names of one parsed module.

    ``defined`` holds the names the interprocedural layers index: top
    level functions, one level of class methods, and class names (base
    class resolution).  ``referenced`` over-approximates every channel
    through which the analyses can look *into another module*: called
    names, called attribute names, imported terminal names, and base
    class names.  Two files end up in one dependency component exactly
    when one references a name the other defines.

    Lock-ish identifiers (:func:`repro.lint.concurrency.summary.
    is_lock_name`) are additionally emitted as ``lock::<name>`` pseudo
    names on *both* sides: the ELS502 acquisition-order graph is keyed
    by lock name across the whole program, so two files touching the
    same lock name must share a component even when no call or import
    connects them.
    """
    from .concurrency.summary import is_lock_name

    defined: Set[str] = set()
    referenced: Set[str] = set()
    lock_tokens: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defined.add(node.name)
        elif isinstance(node, ast.ClassDef):
            defined.add(node.name)
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defined.add(child.name)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                referenced.add(func.id)
            elif isinstance(func, ast.Attribute):
                referenced.add(func.attr)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                referenced.add(alias.name.rsplit(".", 1)[-1])
        elif isinstance(node, ast.Import):
            for alias in node.names:
                referenced.add(alias.name.rsplit(".", 1)[-1])
        elif isinstance(node, ast.ClassDef):
            for base in node.bases:
                if isinstance(base, ast.Name):
                    referenced.add(base.id)
                elif isinstance(base, ast.Attribute):
                    referenced.add(base.attr)
        if isinstance(node, ast.Name) and is_lock_name(node.id):
            lock_tokens.add(f"lock::{node.id}")
        elif isinstance(node, ast.Attribute) and is_lock_name(node.attr):
            lock_tokens.add(f"lock::{node.attr}")
    defined.update(lock_tokens)
    referenced.update(lock_tokens)
    return sorted(defined), sorted(referenced)


def dependency_components(
    interfaces: Dict[str, Tuple[Sequence[str], Sequence[str]]],
) -> List[List[str]]:
    """Group file paths into analysis-closed components.

    ``interfaces`` maps path -> ``(defined, referenced)``.  Paths are
    unioned whenever one references a name another defines; the returned
    components are sorted (and internally sorted) for determinism.  A
    file sharing no names with anyone forms a singleton component.
    """
    paths = sorted(interfaces)
    parent: Dict[str, str] = {path: path for path in paths}

    def find(path: str) -> str:
        root = path
        while parent[root] != root:
            root = parent[root]
        while parent[path] != root:
            parent[path], path = root, parent[path]
        return root

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    definers: Dict[str, List[str]] = {}
    for path in paths:
        for name in interfaces[path][0]:
            definers.setdefault(name, []).append(path)
    for path in paths:
        for name in interfaces[path][1]:
            for definer in definers.get(name, ()):
                if definer != path:
                    union(path, definer)
    grouped: Dict[str, List[str]] = {}
    for path in paths:
        grouped.setdefault(find(path), []).append(path)
    return sorted(sorted(members) for members in grouped.values())


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FileEntry:
    """Everything the engine needs from one file on a warm hit.

    Attributes:
        path: The path the file was linted as (part of the key — the
            same bytes at another path produce different diagnostics).
        digest: Content digest of the file bytes.
        parsed_ok: False when the file failed to parse (the findings
            then hold the ELS100 diagnostic).
        findings: Raw layer-1 rule findings (pre-dedupe, pre-noqa).
        noqa: ``(line, codes-or-None)`` suppression directives, so warm
            runs skip re-tokenizing the source.
        defined: Interface half 1 — terminal names this file defines.
        referenced: Interface half 2 — terminal names it references.
    """

    path: str
    digest: str
    parsed_ok: bool
    findings: Tuple[Diagnostic, ...]
    noqa: Tuple[Tuple[int, Optional[Tuple[str, ...]]], ...]
    defined: Tuple[str, ...]
    referenced: Tuple[str, ...]


@dataclass
class CacheStats:
    """Hit/miss counters (reported by ``--statistics``).

    ``corruptions`` counts entries whose digest verification failed on
    read — each is also counted as a miss, mirroring ``TruthCache``.
    """

    file_hits: int = 0
    file_misses: int = 0
    component_hits: int = 0
    component_misses: int = 0
    corruptions: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "file_hits": self.file_hits,
            "file_misses": self.file_misses,
            "component_hits": self.component_hits,
            "component_misses": self.component_misses,
            "corruptions": self.corruptions,
        }


class LintCache:
    """Content-addressed persistence for lint results.

    All reads verify an embedded digest binding key to payload; any
    mismatch, unreadable file, or malformed JSON is a counted cold miss.
    Writes go through a temp file + ``os.replace`` so a crashed run can
    tear a write without poisoning later runs.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = Path(root or DEFAULT_CACHE_DIR)
        self.stats = CacheStats()
        self._fingerprint = ruleset_fingerprint()

    # -- keys ----------------------------------------------------------------

    def file_key(self, path: str, digest: str) -> str:
        return _combine(["file", path, digest, self._fingerprint])

    def component_key(
        self,
        members: Sequence[Tuple[str, str]],
        passes: Sequence[str],
    ) -> str:
        parts = ["component", self._fingerprint]
        parts.extend(sorted(passes))
        for path, digest in sorted(members):
            parts.append(path)
            parts.append(digest)
        return _combine(parts)

    # -- low-level entry IO --------------------------------------------------

    def _entry_path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.json"

    @staticmethod
    def _payload_digest(key: str, payload: Dict[str, object]) -> str:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        digest.update(key.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(canonical.encode("utf-8"))
        return digest.hexdigest()

    def _read(self, kind: str, key: str) -> Optional[Dict[str, object]]:
        """Load and digest-verify one entry; ``None`` on any defect."""
        entry_path = self._entry_path(kind, key)
        try:
            raw = entry_path.read_bytes()
        except OSError:
            return None
        try:
            wrapper = json.loads(raw)
            stored = wrapper["sig"]
            payload = wrapper["payload"]
        except (ValueError, KeyError, TypeError):
            self.stats.corruptions += 1
            return None
        if not isinstance(payload, dict) or not isinstance(stored, str):
            self.stats.corruptions += 1
            return None
        if stored != self._payload_digest(key, payload):
            self.stats.corruptions += 1
            return None
        return payload

    def _write(self, kind: str, key: str, payload: Dict[str, object]) -> None:
        """Atomically persist one entry; IO failure degrades to no-op."""
        entry_path = self._entry_path(kind, key)
        wrapper = {"sig": self._payload_digest(key, payload), "payload": payload}
        data = json.dumps(wrapper, sort_keys=True).encode("utf-8")
        try:
            entry_path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(
                dir=str(entry_path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(data)
                os.replace(temp_name, entry_path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a cache that cannot write is just a slower cache

    # -- file entries --------------------------------------------------------

    def load_file(self, path: str, digest: str) -> Optional[FileEntry]:
        payload = self._read("files", self.file_key(path, digest))
        if payload is None:
            self.stats.file_misses += 1
            return None
        try:
            entry = FileEntry(
                path=path,
                digest=digest,
                parsed_ok=bool(payload["parsed_ok"]),
                findings=tuple(
                    Diagnostic.from_dict(row) for row in payload["findings"]
                ),
                noqa=tuple(
                    (int(line), None if codes is None else tuple(codes))
                    for line, codes in payload["noqa"]
                ),
                defined=tuple(str(n) for n in payload["defined"]),
                referenced=tuple(str(n) for n in payload["referenced"]),
            )
        except (KeyError, ValueError, TypeError):
            self.stats.corruptions += 1
            self.stats.file_misses += 1
            return None
        self.stats.file_hits += 1
        return entry

    def store_file(self, entry: FileEntry) -> None:
        payload: Dict[str, object] = {
            "parsed_ok": entry.parsed_ok,
            "findings": [d.to_dict() for d in entry.findings],
            "noqa": [
                [line, None if codes is None else sorted(codes)]
                for line, codes in entry.noqa
            ],
            "defined": list(entry.defined),
            "referenced": list(entry.referenced),
        }
        self._write("files", self.file_key(entry.path, entry.digest), payload)

    # -- component entries ---------------------------------------------------

    def load_component(
        self,
        members: Sequence[Tuple[str, str]],
        passes: Sequence[str],
    ) -> Optional[List[Diagnostic]]:
        payload = self._read(
            "components", self.component_key(members, passes)
        )
        if payload is None:
            self.stats.component_misses += 1
            return None
        try:
            findings = [
                Diagnostic.from_dict(row)
                for row in payload["findings"]  # type: ignore[union-attr]
            ]
        except (KeyError, ValueError, TypeError):
            self.stats.corruptions += 1
            self.stats.component_misses += 1
            return None
        self.stats.component_hits += 1
        return findings

    def store_component(
        self,
        members: Sequence[Tuple[str, str]],
        passes: Sequence[str],
        findings: Sequence[Diagnostic],
        summaries: Dict[str, Dict[str, Dict[str, object]]],
    ) -> None:
        """Persist one component's findings and per-module summaries.

        ``summaries`` is the ``summary_sink`` the analysis drivers filled
        (``path -> qualname -> layer -> dict``); it rides along for tools
        and tests, while ``findings`` is what warm runs replay.
        """
        payload: Dict[str, object] = {
            "findings": [d.to_dict() for d in findings],
            "summaries": summaries,
        }
        self._write(
            "components", self.component_key(members, passes), payload
        )

    def load_component_summaries(
        self,
        members: Sequence[Tuple[str, str]],
        passes: Sequence[str],
    ) -> Optional[Dict[str, Dict[str, Dict[str, object]]]]:
        """The persisted ``summary_sink`` of one component, if cached.

        Reads do not touch hit/miss counters — this is a tooling
        accessor, not part of the warm path.
        """
        payload = self._read(
            "components", self.component_key(members, passes)
        )
        if payload is None:
            return None
        summaries = payload.get("summaries")
        if not isinstance(summaries, dict):
            return None
        return summaries
