"""The "hotness" fixpoint: which functions sit on estimation hot paths.

The ELS6xx performance rules only make sense on code that runs once per
row, per block, or per candidate plan — a quadratic membership test in a
CLI argument parser is noise, the same test inside a join loop erases
the columnar engine's speedup.  Hotness is therefore computed first and
every other rule in :mod:`repro.lint.perf.analysis` is gated on it.

A function is a **hot root** when any of these hold:

* it carries an explicit ``# els: hot=yes`` directive on its ``def`` line;
* its module lives in the execution engine (``repro/execution/``), where
  every operator body is by construction per-row or per-block code;
* it is a method of a class whose name ends in ``Estimator`` or
  ``Operator``/``Op``, or its name starts with ``estimate`` — the
  estimator entry points the paper's Table 1 experiment sweeps;
* its name is one of the known evaluation entry points
  (``true_join_size``, ``execute``).

Hotness then propagates **down the call graph to a fixpoint**: every
function a hot function (transitively) calls is itself hot, because it
inherits its caller's invocation frequency.  The propagation uses the
same resolved call edges the ELS3xx–ELS5xx layers use
(:meth:`repro.lint.dataflow.summaries.Program.resolve_call`), so a
helper three calls below an operator body is still guarded.

``# els: hot=no`` pins a function cold: it is never reported on and
hotness does not propagate *through* it — the directive marks deliberate
cold paths (setup, error formatting, once-per-run preparation) reachable
from hot entry points.  A pin that changes nothing (``hot=yes`` where a
heuristic already fires, ``hot=no`` where nothing would have been hot)
is itself reported as ELS607, mirroring the ELS199 stale-suppression
contract.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..dataflow.summaries import FunctionInfo, Program

__all__ = [
    "HOT_ENTRY_NAMES",
    "HotIndex",
    "compute_hotness",
    "heuristic_root_reason",
    "hot_pin",
]

#: Function names that are evaluation entry points wherever they live.
HOT_ENTRY_NAMES = frozenset({"true_join_size", "execute"})

#: Class-name suffixes whose methods are hot roots (operator and
#: estimator protocols).
_HOT_CLASS_SUFFIXES = ("Estimator", "Operator", "Op")

#: Path fragment identifying the execution engine's modules.
_EXECUTION_TOKEN = "/execution/"


def hot_pin(function: FunctionInfo) -> Optional[bool]:
    """The ``# els: hot=`` pin on the function's ``def`` line, if any."""
    for directive in function.module.directives:
        if directive.kind == "hot" and directive.line == function.node.lineno:
            return directive.hot
    return None


def heuristic_root_reason(function: FunctionInfo) -> Optional[str]:
    """Why the built-in heuristics make this function a hot root, or None.

    Pins are deliberately ignored here: the caller decides whether a pin
    overrides (:class:`HotIndex` construction) or duplicates (ELS607)
    the heuristic verdict.
    """
    path = function.module.path.replace("\\", "/").lower()
    if _EXECUTION_TOKEN in path:
        return "execution-engine module"
    name = function.name
    if name.startswith("estimate") or name in HOT_ENTRY_NAMES:
        return f"entry-point name {name!r}"
    if "." in function.qualname:
        class_name = function.qualname.rsplit(".", 1)[0]
        if class_name.endswith(_HOT_CLASS_SUFFIXES):
            return f"method of {class_name!r}"
    return None


class HotIndex:
    """The result of the hotness fixpoint over one program.

    Attributes:
        hot: ``id(FunctionInfo)`` of every effectively hot function
            (pins respected).
        roots: The subset that is hot by itself (not via propagation).
        natural: The hot set with every ``hot=`` pin ignored — what the
            heuristics alone would conclude (drives ELS607).
        reached_from: For each hot function, the qualname of the hot
            root whose call chain first reached it (for messages).
    """

    def __init__(self) -> None:
        self.hot: Set[int] = set()
        self.roots: Set[int] = set()
        self.natural: Set[int] = set()
        self.reached_from: Dict[int, str] = {}

    def is_hot(self, function: FunctionInfo) -> bool:
        return id(function) in self.hot

    def origin(self, function: FunctionInfo) -> Optional[str]:
        """The entry qualname a hot function is reached from."""
        return self.reached_from.get(id(function))


def _call_edges(program: Program) -> Dict[int, List[FunctionInfo]]:
    """Resolved callee lists per function, nested scopes included.

    Calls made inside nested functions and lambdas are attributed to the
    enclosing indexed function: a closure defined in a hot body runs at
    the body's frequency, so its callees inherit the hotness.
    """
    edges: Dict[int, List[FunctionInfo]] = {}
    for module in program.modules:
        for function in module.functions:
            enclosing = function.qualname.rsplit(".", 1)
            enclosing_class = enclosing[0] if len(enclosing) == 2 else None
            callees: List[FunctionInfo] = []
            for node in ast.walk(function.node):
                if isinstance(node, ast.Call):
                    callee = program.resolve_call(node, module, enclosing_class)
                    if callee is not None:
                        callees.append(callee)
            edges[id(function)] = callees
    return edges


def _propagate(
    program: Program,
    edges: Dict[int, List[FunctionInfo]],
    respect_pins: bool,
) -> Dict[int, str]:
    """One worklist fixpoint; returns ``id -> reaching-root qualname``.

    The lattice is two-valued and propagation monotone, so each function
    is enqueued at most once and the loop terminates.
    """
    reached: Dict[int, str] = {}
    frontier: List[FunctionInfo] = []
    for module in program.modules:
        for function in module.functions:
            pin = hot_pin(function) if respect_pins else None
            is_root = pin if pin is not None else (
                heuristic_root_reason(function) is not None
            )
            if is_root:
                reached[id(function)] = function.qualname
                frontier.append(function)
    while frontier:
        function = frontier.pop()
        origin = reached[id(function)]
        for callee in edges.get(id(function), []):
            if id(callee) in reached:
                continue
            if respect_pins and hot_pin(callee) is False:
                continue
            reached[id(callee)] = origin
            frontier.append(callee)
    return reached


def compute_hotness(program: Program) -> HotIndex:
    """Run the hotness fixpoints and return the hot-function index.

    Two worklist passes over the same resolved call edges: the effective
    pass (pins respected) drives every gated rule; the natural pass
    (pins ignored) exists only so ELS607 can tell a pin that *changes*
    the verdict from one that merely restates it.
    """
    index = HotIndex()
    edges = _call_edges(program)
    effective = _propagate(program, edges, respect_pins=True)
    index.hot = set(effective)
    index.reached_from = effective
    index.natural = set(_propagate(program, edges, respect_pins=False))
    for module in program.modules:
        for function in module.functions:
            pin = hot_pin(function)
            is_root = pin if pin is not None else (
                heuristic_root_reason(function) is not None
            )
            if is_root:
                index.roots.add(id(function))
    return index
