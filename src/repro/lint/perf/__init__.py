"""Layer 6 — the ELS6xx hot-path performance lint.

Detects the constructs that erase the columnar engine's speedup when
they land on a hot path: row-at-a-time iteration over block data,
quadratic membership tests and ``+=`` accumulation in loops, digest
recomputation per iteration, and allocation-heavy constructs rebuilt
every pass.  "Hot" is decided first by a bottom-up fixpoint over the
resolved call graph (:mod:`repro.lint.perf.hotness`), seeded from the
execution engine, estimator entry points, and explicit
``# els: hot=yes|no`` pins; every other rule is gated on it, so the same
loop in a CLI parser is left alone.

Entry points:

* :func:`analyze_modules` — the engine-facing driver over parsed modules.
* :func:`analyze_source` — one in-memory module (tests, tools).
* :data:`PERF_CODES` — code -> (summary, severity) catalog.
"""

from .analysis import PERF_CODES, analyze_modules, analyze_source
from .hotness import (
    HOT_ENTRY_NAMES,
    HotIndex,
    compute_hotness,
    heuristic_root_reason,
    hot_pin,
)

__all__ = [
    "HOT_ENTRY_NAMES",
    "HotIndex",
    "PERF_CODES",
    "analyze_modules",
    "analyze_source",
    "compute_hotness",
    "heuristic_root_reason",
    "hot_pin",
]
