"""The ELS6xx performance-hazard diagnostics.

The driver (:func:`analyze_modules`) mirrors the ELS3xx–ELS5xx layers:
parse directives, index every function with
:func:`repro.lint.dataflow.summaries.collect_program`, run the hotness
fixpoint (:mod:`repro.lint.perf.hotness`), then walk each **hot**
function body once:

========  ==========================================================
ELS600    malformed or misplaced ``# els: hot=`` directive
ELS601    row-at-a-time iteration over ColumnBlock data where
          vectorized block ops exist
ELS602    membership test against a list inside a loop (quadratic)
ELS603    string/sequence ``+``-accumulation inside a loop (quadratic)
ELS604    content digest / fingerprint recomputed inside a loop body
ELS605    allocation-heavy construct (lambda, nested ``def``,
          ``re.compile``, ``ast.parse``, ``copy.deepcopy``) in a loop
ELS606    aggregation over a materialized list comprehension (warning)
ELS607    redundant or stale ``# els: hot=`` pin (warning)
========  ==========================================================

Every loop rule is *gated on hotness*: the same construct in a CLI
parser or a report writer is left alone, because the cost only matters
where it multiplies by rows, blocks, or candidate plans.  Like the other
interprocedural layers the pass is optimistic — a report only fires on
facts the walker actually proved (a list bound in this function, a
digest call by name, a loop the statement textually sits in), so an
unresolvable expression silences a rule rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dataflow.annotations import parse_directives
from ..dataflow.summaries import FunctionInfo, ModuleInfo, collect_program
from ..diagnostics import Diagnostic, Severity
from .hotness import HotIndex, compute_hotness, heuristic_root_reason, hot_pin

__all__ = ["PERF_CODES", "analyze_modules", "analyze_source"]

#: Code -> (summary, severity) for every diagnostic this layer can emit.
PERF_CODES: Dict[str, Tuple[str, Severity]] = {
    "ELS600": ("malformed or misplaced '# els: hot=' directive", Severity.ERROR),
    "ELS601": (
        "row-at-a-time iteration over ColumnBlock data on a hot path",
        Severity.ERROR,
    ),
    "ELS602": (
        "membership test against a list inside a hot loop (quadratic)",
        Severity.ERROR,
    ),
    "ELS603": (
        "string/sequence +-accumulation inside a hot loop (quadratic)",
        Severity.ERROR,
    ),
    "ELS604": (
        "content digest or fingerprint recomputed inside a hot loop",
        Severity.ERROR,
    ),
    "ELS605": (
        "allocation-heavy construct inside a hot loop",
        Severity.ERROR,
    ),
    "ELS606": (
        "aggregation over a materialized list comprehension on a hot path",
        Severity.WARNING,
    ),
    "ELS607": (
        "redundant or stale '# els: hot=' pin",
        Severity.WARNING,
    ),
}

#: Terminal call names that compute a content digest outright.
_DIGEST_EXACT = frozenset({"blake2b", "sha1", "sha256", "sha512", "md5"})

#: Substrings that mark a call as digest/fingerprint computation.
_DIGEST_TOKENS = ("digest", "fingerprint")

#: Builtins that consume an iterable and reduce it to one value.
_AGGREGATORS = frozenset({"sum", "min", "max", "any", "all", "sorted"})

#: Functions exempt from ELS601: their *contract* is row conversion.
_ROW_CONVERTER_NAMES = frozenset({"rows", "tuples", "_materialize"})

#: Value tags the ELS602/ELS603 environment tracks.
_LIST_CALLS = frozenset({"list", "sorted"})


def analyze_modules(
    modules: Sequence,
    max_passes: int = 8,
    summary_sink: Optional[Dict[str, Dict[str, Dict[str, object]]]] = None,
) -> List[Diagnostic]:
    """Run the performance analysis over parsed modules.

    ``modules`` is duck-typed (``path`` / ``source`` / ``tree`` /
    ``is_test_file`` — the engine's ``ModuleUnderLint`` fits).  Test and
    bench files are skipped: a quadratic loop in a fixture builder costs
    nothing per query.  ``max_passes`` is accepted for driver symmetry
    with the other layers; the two-valued hotness lattice converges in
    one worklist pass regardless.

    When ``summary_sink`` is given, the hotness verdicts are recorded
    into it as ``sink[path][qualname]["hot"]`` (``{"hot": bool,
    "origin": qualname-or-None}``) — this is how the incremental lint
    cache persists per-module interprocedural summaries.
    """
    del max_passes  # two-valued lattice: the worklist always converges
    findings: List[Diagnostic] = []
    parsed = []
    directive_index = {}
    for module in modules:
        if module.is_test_file or module.tree is None:
            continue
        directives, malformed = parse_directives(module.source)
        directive_index[module.path] = (directives, malformed)
        parsed.append((module.path, module.tree, directives))
    if not parsed:
        return findings
    program = collect_program(parsed)
    index = compute_hotness(program)
    if summary_sink is not None:
        for minfo in program.modules:
            for function in minfo.functions:
                summary_sink.setdefault(minfo.path, {}).setdefault(
                    function.qualname, {}
                )["hot"] = {
                    "hot": index.is_hot(function),
                    "origin": index.origin(function),
                }
    for minfo in program.modules:
        directives, malformed = directive_index[minfo.path]
        _report_directives(minfo, directives, malformed, findings)
        _report_pins(minfo, index, findings)
        for function in minfo.functions:
            if not index.is_hot(function):
                continue
            origin = index.origin(function)
            suffix = (
                ""
                if origin is None or origin == function.qualname
                else f" (hot via '{origin}')"
            )
            _HotBodyWalker(minfo, function, suffix, findings).run()
    return findings


def analyze_source(source: str, path: str = "<memory>") -> List[Diagnostic]:
    """Convenience wrapper: analyze one in-memory module."""

    class _SourceModule:
        def __init__(self) -> None:
            self.path = path
            self.source = source
            self.is_test_file = False
            try:
                self.tree: Optional[ast.Module] = ast.parse(source)
            except SyntaxError:
                self.tree = None

    return analyze_modules([_SourceModule()])


# ---------------------------------------------------------------------------
# ELS600 / ELS607 — directives
# ---------------------------------------------------------------------------


def _report_directives(
    minfo: ModuleInfo, directives, malformed, findings: List[Diagnostic]
) -> None:
    for bad in malformed:
        if bad.family != "perf":
            continue  # ELS300/ELS400/ELS500 own the other families
        findings.append(
            Diagnostic(
                file=minfo.path,
                line=bad.line,
                col=bad.col,
                code="ELS600",
                severity=Severity.ERROR,
                message=f"malformed '# els:' directive: {bad.reason}",
                hint="use '# els: hot=yes' or '# els: hot=no' on a def line",
            )
        )
    def_lines = {
        node.lineno
        for node in ast.walk(minfo.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for directive in directives:
        if directive.kind != "hot":
            continue
        if directive.line not in def_lines:
            findings.append(
                Diagnostic(
                    file=minfo.path,
                    line=directive.line,
                    col=0,
                    code="ELS600",
                    severity=Severity.ERROR,
                    message=(
                        "misplaced '# els: hot=' directive: hotness pins "
                        "attach to a 'def' line"
                    ),
                    hint="move the directive onto the function's def line",
                )
            )


def _report_pins(
    minfo: ModuleInfo, index: HotIndex, findings: List[Diagnostic]
) -> None:
    """ELS607: pins that restate what the analysis concludes anyway."""
    for function in minfo.functions:
        pin = hot_pin(function)
        if pin is None:
            continue
        if pin is True:
            reason = heuristic_root_reason(function)
            if reason is not None:
                findings.append(
                    Diagnostic(
                        file=minfo.path,
                        line=function.node.lineno,
                        col=function.node.col_offset,
                        code="ELS607",
                        severity=Severity.WARNING,
                        message=(
                            f"redundant 'hot=yes' pin on "
                            f"'{function.qualname}': the built-in "
                            f"heuristics already mark it hot ({reason})"
                        ),
                        hint="remove the pin; it restates the default",
                    )
                )
        elif id(function) not in index.natural:
            findings.append(
                Diagnostic(
                    file=minfo.path,
                    line=function.node.lineno,
                    col=function.node.col_offset,
                    code="ELS607",
                    severity=Severity.WARNING,
                    message=(
                        f"stale 'hot=no' pin on '{function.qualname}': "
                        "nothing marks this function hot, so the pin "
                        "suppresses no analysis"
                    ),
                    hint="remove the stale pin",
                )
            )


# ---------------------------------------------------------------------------
# ELS601–ELS606 — hot-body rules
# ---------------------------------------------------------------------------


class _HotBodyWalker:
    """One pass over a hot function body, tracking loops and value tags.

    The environment is a textual-order name -> tag map ("list" / "str" /
    "tuple") seeded from literal and constructor assignments.  Loop depth
    gates the in-loop rules; names assigned anywhere inside the current
    loop are excluded from the loop-invariant rules (ELS602), so a list
    rebuilt per iteration is never misreported as an invariant scan.
    """

    def __init__(
        self,
        minfo: ModuleInfo,
        function: FunctionInfo,
        origin_suffix: str,
        findings: List[Diagnostic],
    ) -> None:
        self.minfo = minfo
        self.function = function
        self.origin_suffix = origin_suffix
        self.findings = findings
        self._env: Dict[str, str] = {}
        #: Names bound from a ``<block>.column(...)`` call (ELS601).
        self._column_names: Set[str] = set()
        self._loop_assigned: List[Set[str]] = []
        #: (code, line) already reported — a chained expression such as
        #: ``blake2b(...).hexdigest()`` is one hazard, not two.
        self._reported: Set[Tuple[str, int]] = set()

    # -- reporting -----------------------------------------------------------

    def _report(
        self,
        node: ast.AST,
        code: str,
        message: str,
        hint: Optional[str] = None,
    ) -> None:
        summary, severity = PERF_CODES[code]
        del summary
        line = getattr(node, "lineno", self.function.node.lineno)
        if (code, line) in self._reported:
            return
        self._reported.add((code, line))
        self.findings.append(
            Diagnostic(
                file=self.minfo.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                code=code,
                severity=severity,
                message=message + self.origin_suffix,
                hint=hint,
            )
        )

    # -- environment ---------------------------------------------------------

    def _tag_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(node, ast.Tuple):
            return "tuple"
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return "str"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _LIST_CALLS:
                return "list"
            if node.func.id == "tuple":
                return "tuple"
            if node.func.id == "str":
                return "str"
        if isinstance(node, ast.Name):
            return self._env.get(node.id)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._tag_of(node.left)
        return None

    def _bind(self, name: str, value: ast.expr) -> None:
        tag = self._tag_of(value)
        if tag is None:
            self._env.pop(name, None)
        else:
            self._env[name] = tag
        if _is_column_gather(value):
            self._column_names.add(name)
        else:
            self._column_names.discard(name)

    # -- driver --------------------------------------------------------------

    def run(self) -> None:
        self._visit_statements(getattr(self.function.node, "body", []))

    def _visit_statements(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self._visit_statement(statement)

    @property
    def _in_loop(self) -> bool:
        return bool(self._loop_assigned)

    def _visit_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if self._in_loop:
                self._report(
                    statement,
                    "ELS605",
                    f"nested 'def {statement.name}' re-created every "
                    "iteration of a hot loop",
                    hint="hoist the function out of the loop",
                )
            return  # nested scopes are opaque beyond the allocation itself
        if isinstance(statement, ast.ClassDef):
            return
        if isinstance(statement, ast.Assign):
            self._scan_expression(statement.value)
            self._check_quadratic_rebind(statement)
            for target in statement.targets:
                self._bind_target(target, statement.value)
            return
        if isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._scan_expression(statement.value)
                self._bind_target(statement.target, statement.value)
            return
        if isinstance(statement, ast.AugAssign):
            self._scan_expression(statement.value)
            self._check_aug_accumulation(statement)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._scan_expression(statement.iter)
            self._check_row_iteration(statement)
            self._enter_loop(statement)
            if isinstance(statement.target, ast.Name):
                self._env.pop(statement.target.id, None)
                self._column_names.discard(statement.target.id)
            self._visit_statements(statement.body)
            self._visit_statements(statement.orelse)
            self._exit_loop()
            return
        if isinstance(statement, ast.While):
            self._scan_expression(statement.test)
            self._enter_loop(statement)
            self._visit_statements(statement.body)
            self._visit_statements(statement.orelse)
            self._exit_loop()
            return
        if isinstance(statement, (ast.If,)):
            self._scan_expression(statement.test)
            self._visit_statements(statement.body)
            self._visit_statements(statement.orelse)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                self._scan_expression(item.context_expr)
            self._visit_statements(statement.body)
            return
        if isinstance(statement, ast.Try):
            self._visit_statements(statement.body)
            for handler in statement.handlers:
                self._visit_statements(handler.body)
            self._visit_statements(statement.orelse)
            self._visit_statements(statement.finalbody)
            return
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self._scan_expression(child)

    def _enter_loop(self, loop: ast.stmt) -> None:
        assigned: Set[str] = set()
        for node in ast.walk(loop):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                assigned.add(node.id)
        self._loop_assigned.append(assigned)

    def _exit_loop(self) -> None:
        self._loop_assigned.pop()

    def _bind_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self._env.pop(element.id, None)
                    self._column_names.discard(element.id)

    # -- rules ---------------------------------------------------------------

    def _check_row_iteration(self, statement) -> None:
        """ELS601: per-row loops over ColumnBlock data."""
        if self.function.name in _ROW_CONVERTER_NAMES:
            return  # converting representation is these methods' contract
        iterator = statement.iter
        if (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Attribute)
            and iterator.func.attr == "tuples"
            and not iterator.args
        ):
            self._report(
                statement,
                "ELS601",
                "row-at-a-time iteration over '.tuples()' of a column "
                "block on a hot path",
                hint="operate on the block's columns (gather + compiled "
                "block predicate) instead of materialized rows",
            )
            return
        if isinstance(iterator, ast.Call) and isinstance(iterator.func, ast.Name) \
                and iterator.func.id == "range" and len(iterator.args) == 1:
            argument = iterator.args[0]
            if (
                isinstance(argument, ast.Attribute)
                and argument.attr == "num_rows"
            ):
                self._report(
                    statement,
                    "ELS601",
                    "per-row index loop over 'range(<block>.num_rows)' on "
                    "a hot path",
                    hint="use the vectorized column ops; a Python-level "
                    "row loop forfeits the columnar layout",
                )
                return
            if (
                isinstance(argument, ast.Call)
                and isinstance(argument.func, ast.Name)
                and argument.func.id == "len"
                and len(argument.args) == 1
                and isinstance(argument.args[0], ast.Name)
                and argument.args[0].id in self._column_names
            ):
                self._report(
                    statement,
                    "ELS601",
                    "per-element index loop over a gathered column on a "
                    "hot path",
                    hint="use the vectorized column ops; a Python-level "
                    "row loop forfeits the columnar layout",
                )

    def _check_quadratic_rebind(self, statement: ast.Assign) -> None:
        """ELS603 (assign form): ``xs = xs + <expr>`` inside a loop."""
        if not self._in_loop or len(statement.targets) != 1:
            return
        target = statement.targets[0]
        value = statement.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.BinOp)
            and isinstance(value.op, ast.Add)
            and isinstance(value.left, ast.Name)
            and value.left.id == target.id
            and self._env.get(target.id) in ("list", "tuple", "str")
        ):
            kind = self._env[target.id]
            self._report(
                statement,
                "ELS603",
                f"'{target.id} = {target.id} + ...' rebuilds the whole "
                f"{kind} every iteration of a hot loop (quadratic)",
                hint="append/extend in place, or join parts once after "
                "the loop",
            )

    def _check_aug_accumulation(self, statement: ast.AugAssign) -> None:
        """ELS603 (augmented form): ``s += <expr>`` on a str in a loop."""
        if not self._in_loop or not isinstance(statement.op, ast.Add):
            return
        target = statement.target
        if (
            isinstance(target, ast.Name)
            and self._env.get(target.id) == "str"
        ):
            self._report(
                statement,
                "ELS603",
                f"string accumulation '{target.id} += ...' inside a hot "
                "loop copies the whole prefix every iteration (quadratic)",
                hint="collect parts in a list and ''.join() once after "
                "the loop",
            )

    def _scan_expression(self, node: ast.expr) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._check_call(child)
            elif isinstance(child, ast.Lambda) and self._in_loop:
                self._report(
                    child,
                    "ELS605",
                    "lambda allocated every iteration of a hot loop",
                    hint="hoist the lambda (or a named function) out of "
                    "the loop",
                )
            elif isinstance(child, ast.Compare) and self._in_loop:
                self._check_membership(child)

    def _check_membership(self, node: ast.Compare) -> None:
        """ELS602: ``x in <list>`` inside a loop."""
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            if isinstance(comparator, ast.List):
                self._report(
                    node,
                    "ELS602",
                    "membership test against a list literal inside a hot "
                    "loop allocates and scans it every iteration",
                    hint="hoist the literal into a module-level frozenset",
                )
                continue
            if (
                isinstance(comparator, ast.Name)
                and self._env.get(comparator.id) == "list"
                and not any(
                    comparator.id in assigned
                    for assigned in self._loop_assigned
                )
            ):
                self._report(
                    node,
                    "ELS602",
                    f"membership test against loop-invariant list "
                    f"'{comparator.id}' inside a hot loop scans it every "
                    "iteration (quadratic)",
                    hint=f"build 'set({comparator.id})' once before the "
                    "loop and test against that",
                )

    def _check_call(self, call: ast.Call) -> None:
        name = _terminal_name(call.func)
        if name is None:
            return
        if self._in_loop and self._is_digest_call(name):
            if not _name_has_digest_token(self.function.name):
                self._report(
                    call,
                    "ELS604",
                    f"content digest '{name}()' recomputed inside a hot "
                    "loop body",
                    hint="compute digests once into a keyed index before "
                    "the loop (a comprehension) and look them up",
                )
        if self._in_loop and self._is_alloc_heavy(call, name):
            self._report(
                call,
                "ELS605",
                f"allocation-heavy call '{name}()' inside a hot loop",
                hint="hoist the construction out of the loop",
            )
        if name in _AGGREGATORS and len(call.args) == 1 \
                and isinstance(call.args[0], ast.ListComp):
            self._report(
                call,
                "ELS606",
                f"'{name}([...])' materializes an intermediate list only "
                "to aggregate it on a hot path",
                hint="pass the generator expression directly: "
                f"'{name}(x for ...)'",
            )

    def _is_digest_call(self, name: str) -> bool:
        if name in _DIGEST_EXACT:
            return True
        return _name_has_digest_token(name)

    def _is_alloc_heavy(self, call: ast.Call, name: str) -> bool:
        func = call.func
        if name == "deepcopy":
            return True
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = self.minfo.imports.get(func.value.id, func.value.id)
            if owner == "re" and name == "compile":
                return True
            if owner == "ast" and name == "parse":
                return True
            if owner == "copy" and name == "deepcopy":
                return True
        return False


def _name_has_digest_token(name: str) -> bool:
    lowered = name.lower()
    return any(token in lowered for token in _DIGEST_TOKENS)


def _terminal_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_column_gather(value: ast.expr) -> bool:
    """Did this expression fetch a column from a block (``x.column(i)``)?"""
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "column"
    )
