"""Command implementations for ``repro-els lint`` / ``repro-els check``.

Shared by the main :mod:`repro.cli` dispatcher and the dedicated
``repro-els-lint`` console entry point, so both surfaces behave
identically.  Exit-code contract (both subcommands):

* ``0`` — clean, or only warning/info findings;
* ``1`` — at least one error-severity finding;
* ``2`` — usage error (bad path, bad flags, unknown ``--select`` code).
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Dict, List, Optional, Sequence

from ..errors import LintError, ReproError
from .diagnostics import Diagnostic, filter_diagnostics, has_errors
from .engine import known_codes, lint_paths
from .render import render_json, render_sarif, render_text

__all__ = [
    "run_lint",
    "run_check",
    "render_diagnostics",
    "print_statistics",
    "print_cache_statistics",
    "main",
]


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    """Parse and validate a ``--select``/``--ignore`` comma list.

    Every entry must be a prefix of at least one code some layer can
    actually emit — a typo like ``ELS9`` or ``ESL301`` would otherwise
    silently match nothing and turn the lint into a no-op.

    Raises:
        LintError: for an empty list or an unknown code prefix.
    """
    if raw is None:
        return None
    codes = [part.strip() for part in raw.split(",") if part.strip()]
    if not codes:
        raise LintError("expected a comma-separated list of codes (e.g. ELS1,ELS203)")
    valid = known_codes()
    for code in codes:
        if not any(known.startswith(code.upper()) for known in valid):
            raise LintError(
                f"unknown diagnostic code or prefix {code!r}; "
                f"known codes: {', '.join(valid)}"
            )
    return codes


def render_diagnostics(
    diagnostics: Sequence[Diagnostic], output_format: str, stream: IO[str]
) -> int:
    """Print findings in the requested format; return the exit code.

    Only error-severity findings fail the run — warnings and infos are
    advisory and must not break CI pipelines that gate on exit codes.
    """
    if output_format == "json":
        print(render_json(list(diagnostics)), file=stream)
    elif output_format == "sarif":
        print(render_sarif(list(diagnostics)), file=stream)
    else:
        print(render_text(list(diagnostics)), file=stream)
    return 1 if has_errors(diagnostics) else 0


def run_lint(
    paths: Sequence[str],
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    output_format: str = "text",
    stream: Optional[IO[str]] = None,
    dataflow: bool = False,
    effects: bool = False,
    concurrency: bool = False,
    jobs: int = 1,
    statistics: bool = False,
    perf: bool = False,
    contracts: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> int:
    """Run the layer-1 rules over files/directories; print and exit-code.

    ``dataflow=True`` additionally runs the interprocedural ELS3xx
    quantity pass over the whole file set; ``effects=True`` the ELS4xx
    effect-and-determinism pass; ``concurrency=True`` the ELS5xx
    concurrency-safety pass; ``perf=True`` the ELS6xx hot-path
    performance pass; ``contracts=True`` the ELS7xx
    contract-and-architecture pass.  ``jobs > 1`` fans per-file work out over a
    process pool and ``jobs=0`` means one worker per CPU (output is
    deterministic either way).  ``statistics=True`` prints per-rule hit
    counts (and cache hit/miss counters) to stderr after the findings,
    so machine-readable stdout formats stay parseable.

    Results are served from the incremental content-addressed cache
    (``.repro-lint-cache/``, or ``cache_dir``) when file bytes and the
    rule set are unchanged — byte-identical output, just faster.
    ``use_cache=False`` (the ``--no-cache`` flag) re-analyzes everything.

    Raises:
        LintError: for unusable paths or filter lists (usage errors).
    """
    if jobs < 0:
        raise LintError(f"--jobs must be >= 0, got {jobs}")
    cache = None
    if use_cache:
        from .cache import LintCache

        cache = LintCache(cache_dir)
    diagnostics = lint_paths(
        paths,
        select=_split_codes(select),
        ignore=_split_codes(ignore),
        dataflow=dataflow,
        effects=effects,
        concurrency=concurrency,
        jobs=jobs,
        perf=perf,
        contracts=contracts,
        cache=cache,
    )
    exit_code = render_diagnostics(diagnostics, output_format, stream or sys.stdout)
    if statistics:
        print_statistics(diagnostics)
        if cache is not None:
            print_cache_statistics(cache)
    return exit_code


def print_statistics(
    diagnostics: Sequence[Diagnostic], stream: Optional[IO[str]] = None
) -> None:
    """Print per-rule hit counts (``--statistics``), sorted by code.

    Goes to stderr by default: the findings on stdout stay parseable in
    the json/sarif formats.
    """
    target = stream if stream is not None else sys.stderr
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
    print("per-rule statistics:", file=target)
    if not counts:
        print("  (no findings)", file=target)
        return
    for code in sorted(counts):
        print(f"  {code}: {counts[code]}", file=target)


def print_cache_statistics(cache, stream: Optional[IO[str]] = None) -> None:
    """Print the incremental cache's hit/miss counters (``--statistics``).

    Goes to stderr by default for the same reason as
    :func:`print_statistics`: stdout stays parseable.
    """
    target = stream if stream is not None else sys.stderr
    print("cache statistics:", file=target)
    for name, value in cache.stats.to_dict().items():
        print(f"  {name}: {value}", file=target)


def run_check(
    stats_path: str,
    query_text: str,
    apply_closure: bool = True,
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    output_format: str = "text",
    stream: Optional[IO[str]] = None,
) -> int:
    """Run the layer-2 semantic diagnostics for one query + catalog.

    With ``apply_closure`` (the default) the query goes through predicate
    transitive closure first — exactly the input the estimator sees — and
    the closed form is verified.  With ``apply_closure=False`` the query is
    analyzed *as written*, so a hand-built query with an incomplete
    closure is flagged (ELS201) instead of silently completed.
    """
    from ..core.closure import close_query
    from ..sql.parser import parse_query
    from ..storage.loader import load_stats_json
    from .semantic import analyze_query

    catalog = load_stats_json(stats_path)
    query = parse_query(query_text, schemas=catalog.schemas_by_column())
    if apply_closure:
        closed, result = close_query(query)
        diagnostics = analyze_query(
            closed, catalog, result.equivalence, expect_closure=True
        )
    else:
        diagnostics = analyze_query(query, catalog, expect_closure=True)
    diagnostics = filter_diagnostics(
        diagnostics, _split_codes(select), _split_codes(ignore)
    )
    return render_diagnostics(diagnostics, output_format, stream or sys.stdout)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the dedicated ``repro-els-lint`` console script.

    A thin wrapper over :func:`run_lint` for CI pipelines that only want
    the codebase lint (``repro-els lint`` is the full CLI's equivalent).
    """
    parser = argparse.ArgumentParser(
        prog="repro-els-lint",
        description="Run the ELS repo lint rules (ELS1xx) over Python sources.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument("--select", help="comma-separated code prefixes to keep")
    parser.add_argument("--ignore", help="comma-separated code prefixes to drop")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--dataflow",
        action="store_true",
        default=False,
        help="also run the interprocedural ELS3xx quantity-dimension pass",
    )
    parser.add_argument(
        "--no-dataflow",
        action="store_false",
        dest="dataflow",
        help="disable the ELS3xx pass (the default)",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        default=False,
        help="also run the interprocedural ELS4xx effect/determinism pass",
    )
    parser.add_argument(
        "--no-effects",
        action="store_false",
        dest="effects",
        help="disable the ELS4xx pass (the default)",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        default=False,
        help="also run the interprocedural ELS5xx concurrency-safety pass",
    )
    parser.add_argument(
        "--no-concurrency",
        action="store_false",
        dest="concurrency",
        help="disable the ELS5xx pass (the default)",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        default=False,
        help="also run the interprocedural ELS6xx hot-path performance pass",
    )
    parser.add_argument(
        "--no-perf",
        action="store_false",
        dest="perf",
        help="disable the ELS6xx pass (the default)",
    )
    parser.add_argument(
        "--contracts",
        action="store_true",
        default=False,
        help=(
            "also run the interprocedural ELS7xx contract-and-architecture "
            "pass"
        ),
    )
    parser.add_argument(
        "--no-contracts",
        action="store_false",
        dest="contracts",
        help="disable the ELS7xx pass (the default)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_false",
        dest="cache",
        default=True,
        help="bypass the incremental lint cache and re-analyze everything",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the incremental lint cache (default .repro-lint-cache)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        default=False,
        help="print per-rule hit counts and cache counters to stderr",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files with N parallel worker processes (0 = one per CPU)",
    )
    args = parser.parse_args(argv)
    try:
        return run_lint(
            args.paths,
            args.select,
            args.ignore,
            args.format,
            dataflow=args.dataflow,
            effects=args.effects,
            concurrency=args.concurrency,
            jobs=args.jobs,
            statistics=args.statistics,
            perf=args.perf,
            contracts=args.contracts,
            use_cache=args.cache,
            cache_dir=args.cache_dir,
        )
    except LintError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
