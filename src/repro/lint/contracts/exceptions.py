"""Bottom-up raised-exception summaries for the contract layer.

Each analyzed function gets one summary: the set of exception *class
names* that may escape a call to it, computed as raises-in-body, union
callee summaries at resolved call sites, minus whatever enclosing
``try`` blocks provably catch.  Mutual recursion converges because the
summaries only grow on a finite name set, so the driver iterates to a
fixpoint exactly like the quantity lattice in
:mod:`repro.lint.dataflow.analysis`.

The analysis is optimistic on purpose: an unresolvable call, a
dynamically computed exception, or a bare ``raise`` under a broad
handler contributes nothing.  Every name in a summary traces back to a
literal ``raise SomeName(...)`` somewhere in the analyzed set, which is
what keeps ELS703–ELS705 free of false positives at the price of
missing exotic escapes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..dataflow.summaries import ModuleInfo, Program

__all__ = [
    "ExceptionHierarchy",
    "collect_hierarchy",
    "compute_raise_summaries",
    "direct_raises",
    "handler_is_broad",
    "handler_is_silent",
    "summary_key",
    "try_body_raises",
]

#: Partial parent map of the builtin exception tree — enough to filter
#: ``except`` clauses over the exceptions this codebase actually raises.
_BUILTIN_PARENTS: Dict[str, str] = {
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "PermissionError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "JSONDecodeError": "ValueError",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
}

#: Summary key: stable across re-analysis of the same file set.
SummaryKey = Tuple[str, str]

#: The summaries table threaded through the walkers.
Summaries = Dict[SummaryKey, FrozenSet[str]]


def summary_key(path: str, qualname: str) -> SummaryKey:
    """The table key of one analyzed function."""
    return (path, qualname)


@dataclass(frozen=True)
class ExceptionHierarchy:
    """Name-level class hierarchy: builtins plus analyzed ``ClassDef``s.

    Attributes:
        parents: child class name -> first-base class name.
        analyzed: names defined by a ``ClassDef`` in the analyzed set.
    """

    parents: Dict[str, str]
    analyzed: FrozenSet[str]

    def is_subclass(self, name: str, ancestor: str) -> bool:
        """Whether ``name`` is ``ancestor`` or a (known) descendant."""
        seen: Set[str] = set()
        current: Optional[str] = name
        while current is not None and current not in seen:
            if current == ancestor:
                return True
            seen.add(current)
            current = self.parents.get(current)
        return False

    def is_repro_error(self, name: str) -> bool:
        """Whether ``name`` descends from the package's ``ReproError``."""
        return self.is_subclass(name, "ReproError")

    def is_analyzed_class(self, name: str) -> bool:
        """Whether the analyzed file set defines a class called ``name``."""
        return name in self.analyzed


def collect_hierarchy(program: Program) -> ExceptionHierarchy:
    """Merge the builtin parent map with every analyzed ``ClassDef``.

    Only the first base matters (the error taxonomy is single
    inheritance) and builtin entries win on a name collision, so a
    shadowing class cannot silently rewire the builtin tree.
    """
    parents = dict(_BUILTIN_PARENTS)
    analyzed: Set[str] = set()
    for module in program.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            analyzed.add(node.name)
            if not node.bases:
                continue
            base = node.bases[0]
            if isinstance(base, ast.Name):
                parent = module.imports.get(base.id, base.id)
            elif isinstance(base, ast.Attribute):
                parent = base.attr
            else:
                continue
            if node.name not in _BUILTIN_PARENTS:
                parents.setdefault(node.name, parent)
    return ExceptionHierarchy(parents=parents, analyzed=frozenset(analyzed))


# ---------------------------------------------------------------------------
# The raise-set walker
# ---------------------------------------------------------------------------

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: Handler context sentinel: a broad/bare handler — a bare ``raise``
#: under it re-raises something we cannot name, so it contributes
#: nothing (optimistic).
_UNKNOWN_HANDLER = None


@dataclass
class _Context:
    """Everything the walker needs; ``summaries=None`` ignores calls."""

    program: Program
    module: ModuleInfo
    enclosing_class: Optional[str]
    summaries: Optional[Summaries]
    hierarchy: ExceptionHierarchy


def _exception_terminal(node: ast.expr, module: ModuleInfo) -> Optional[str]:
    """The class name a ``raise`` operand denotes, or ``None``.

    ``raise E``, ``raise E(...)``, ``raise errors.E`` and
    ``raise errors.E(...)`` all resolve to the terminal ``E``; anything
    dynamic (``raise make_error()``, ``raise exc_var``) stays unknown.
    """
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        name = module.imports.get(node.id, node.id)
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    if not name or not name[0].isupper():
        return None
    return name


def _handler_type_names(
    handler: ast.ExceptHandler, module: ModuleInfo
) -> Optional[Tuple[str, ...]]:
    """Declared exception names of a handler; ``None`` when it is broad.

    Broad means bare ``except:``, ``except Exception``/``BaseException``
    (possibly inside a tuple), or an undecipherable type expression —
    all of which catch more than any specific name set can describe.
    """
    if handler.type is None:
        return _UNKNOWN_HANDLER
    elements: Sequence[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        elements = handler.type.elts
    else:
        elements = [handler.type]
    names: List[str] = []
    for element in elements:
        name = _exception_terminal(element, module)
        if name is None:
            return _UNKNOWN_HANDLER
        if name in ("Exception", "BaseException"):
            return _UNKNOWN_HANDLER
        names.append(name)
    return tuple(names)


def handler_is_broad(handler: ast.ExceptHandler, module: ModuleInfo) -> bool:
    """Whether the handler catches ``Exception``-or-wider."""
    return _handler_type_names(handler, module) is _UNKNOWN_HANDLER


def handler_is_silent(handler: ast.ExceptHandler) -> bool:
    """Whether the handler discards the exception it caught.

    Silent means the body never re-``raise``s and, when the exception is
    bound (``as exc``), never reads the bound name — so the caught error
    cannot influence anything downstream.
    """
    for stmt in handler.body:
        for node in _walk_skipping_defs(stmt):
            if isinstance(node, ast.Raise):
                return False
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
            ):
                return False
    return True


def _walk_skipping_defs(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs or lambdas."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _DEF_NODES + (ast.Lambda,)):
                continue
            stack.append(child)


def _calls_in_expression(node: ast.AST) -> Iterator[ast.Call]:
    for child in _walk_skipping_defs(node):
        if isinstance(child, ast.Call):
            yield child


def _raised_by_calls(node: ast.AST, ctx: _Context) -> Set[str]:
    if ctx.summaries is None:
        return set()
    raised: Set[str] = set()
    for call in _calls_in_expression(node):
        callee = ctx.program.resolve_call(call, ctx.module, ctx.enclosing_class)
        if callee is not None:
            key = summary_key(callee.module.path, callee.qualname)
            raised |= ctx.summaries.get(key, frozenset())
    return raised


def _handler_catches(
    handler: ast.ExceptHandler, name: str, ctx: _Context
) -> bool:
    declared = _handler_type_names(handler, ctx.module)
    if declared is _UNKNOWN_HANDLER:
        return True
    return any(ctx.hierarchy.is_subclass(name, caught) for caught in declared)


def _raised_in_try(
    node: ast.Try,
    ctx: _Context,
    handler_types: Optional[Tuple[str, ...]],
) -> Set[str]:
    body_raised = _raised_in_statements(node.body, ctx, handler_types)
    escaping = {
        name
        for name in body_raised
        if not any(_handler_catches(handler, name, ctx) for handler in node.handlers)
    }
    for handler in node.handlers:
        declared = _handler_type_names(handler, ctx.module)
        escaping |= _raised_in_statements(handler.body, ctx, declared)
    # ``else`` and ``finally`` raise past the handlers of this ``try``.
    escaping |= _raised_in_statements(node.orelse, ctx, handler_types)
    escaping |= _raised_in_statements(node.finalbody, ctx, handler_types)
    return escaping


def _raised_in_statements(
    stmts: Sequence[ast.stmt],
    ctx: _Context,
    handler_types: Optional[Tuple[str, ...]],
) -> Set[str]:
    """Escaping raise-set of a statement block.

    ``handler_types`` is the declared type tuple of the innermost
    enclosing ``except`` clause (for resolving bare ``raise``), or
    ``None`` outside handlers and under broad ones.
    """
    raised: Set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, _DEF_NODES):
            continue
        if isinstance(stmt, ast.Try):
            raised |= _raised_in_try(stmt, ctx, handler_types)
            continue
        if isinstance(stmt, ast.Raise):
            if stmt.exc is None:
                if handler_types is not _UNKNOWN_HANDLER:
                    raised.update(handler_types)
            else:
                name = _exception_terminal(stmt.exc, ctx.module)
                if name is not None:
                    raised.add(name)
                raised |= _raised_by_calls(stmt.exc, ctx)
            continue
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                raised |= _raised_in_statements(value, ctx, handler_types)
            elif isinstance(value, ast.ExceptHandler):  # pragma: no cover
                continue
            elif isinstance(value, ast.AST):
                raised |= _raised_by_calls(value, ctx)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.AST):
                        raised |= _raised_by_calls(item, ctx)
    return raised


# ---------------------------------------------------------------------------
# Fixpoint driver and rule-facing helpers
# ---------------------------------------------------------------------------


def compute_raise_summaries(
    program: Program,
    hierarchy: ExceptionHierarchy,
    max_passes: int = 8,
) -> Summaries:
    """Iterate per-function raise-sets to a fixpoint.

    Summaries only grow, so convergence is guaranteed; ``max_passes``
    merely bounds pathological call-chain depth the same way the
    quantity fixpoint does.
    """
    summaries: Summaries = {}
    for module in program.modules:
        for function in module.functions:
            summaries[summary_key(module.path, function.qualname)] = frozenset()
    for _ in range(max_passes):
        changed = False
        for module in program.modules:
            for function in module.functions:
                enclosing = (
                    function.qualname.rsplit(".", 1)[0]
                    if "." in function.qualname
                    else None
                )
                ctx = _Context(program, module, enclosing, summaries, hierarchy)
                raised = frozenset(
                    _raised_in_statements(function.node.body, ctx, _UNKNOWN_HANDLER)
                )
                key = summary_key(module.path, function.qualname)
                if raised != summaries[key]:
                    summaries[key] = raised
                    changed = True
        if not changed:
            break
    return summaries


def direct_raises(
    function_node: ast.AST,
    module: ModuleInfo,
    hierarchy: ExceptionHierarchy,
) -> Set[str]:
    """Exception names the function itself raises *and lets escape*.

    Callee propagation is deliberately excluded: this is the set the
    docstring rule (ELS705) holds the author responsible for
    documenting.
    """
    ctx = _Context(
        program=Program(modules=[]),
        module=module,
        enclosing_class=None,
        summaries=None,
        hierarchy=hierarchy,
    )
    return _raised_in_statements(function_node.body, ctx, _UNKNOWN_HANDLER)


def try_body_raises(
    node: ast.Try,
    program: Program,
    module: ModuleInfo,
    enclosing_class: Optional[str],
    summaries: Summaries,
    hierarchy: ExceptionHierarchy,
) -> Set[str]:
    """The computed raise-set of one ``try`` body (for ELS704)."""
    ctx = _Context(program, module, enclosing_class, summaries, hierarchy)
    return _raised_in_statements(node.body, ctx, _UNKNOWN_HANDLER)
