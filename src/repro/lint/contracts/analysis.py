"""The ELS7xx contract-and-architecture diagnostics.

The driver mirrors the ELS3xx–ELS6xx layers (parse directives, index
functions with :func:`repro.lint.dataflow.summaries.collect_program`,
iterate summaries to a fixpoint, walk bodies once) but splits into two
halves so the incremental cache stays sound:

* :func:`analyze_modules_local` — everything decidable from one
  dependency component plus the committed data files: directive
  hygiene (ELS700), the exception-contract rules (ELS703–ELS705),
  per-file layering edges (ELS706), and per-module API drift (ELS707).
* :func:`analyze_modules_global` — everything that must see the whole
  file set at once: protocol conformance (ELS701/ELS702, because the
  ``registers=`` directive is invisible to the component graph),
  import-cycle detection (ELS706), removed-module drift (ELS707), and
  unreadable manifest/baseline files (ELS700).

========  ==========================================================
ELS700    malformed/misplaced ``registers=`` directive, or an
          unreadable ``layers.toml`` / ``api-baseline.json``
ELS701    registered class missing protocol methods
ELS702    implementation incompatible with its protocol (parameters,
          defaults, or ``# els: quantity=`` return contradiction)
ELS703    non-``ReproError`` exception escaping a public API function
ELS704    broad handler silently swallowing a structured ``ReproError``
ELS705    docstring ``Raises:`` section drifting from raise behavior
          (warning)
ELS706    import-layering violation or module-level import cycle
ELS707    unacknowledged public-API change against the baseline
========  ==========================================================

Like every interprocedural layer the analysis is optimistic: rules fire
only on facts the walkers prove (a literal raise, a resolved call, a
static ``__all__``), so dynamic constructs silence a rule rather than
guessing.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dataflow.annotations import parse_directives
from ..dataflow.summaries import ModuleInfo, Program, collect_program
from ..diagnostics import Diagnostic, Severity
from .architecture import (
    DEFAULT_MANIFEST_PATH,
    LayerManifest,
    ManifestError,
    check_layering,
    find_cycles,
    load_manifest,
    module_name_of,
)
from .baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineError,
    compare_module,
    extract_api,
    load_baseline,
)
from .exceptions import (
    ExceptionHierarchy,
    Summaries,
    collect_hierarchy,
    compute_raise_summaries,
    direct_raises,
    handler_is_broad,
    handler_is_silent,
    summary_key,
    try_body_raises,
)
from .protocols import check_protocols

__all__ = [
    "CONTRACT_CODES",
    "analyze_modules",
    "analyze_modules_global",
    "analyze_modules_local",
    "analyze_source",
]

#: Code -> (summary, severity) for every diagnostic this layer can emit.
CONTRACT_CODES: Dict[str, Tuple[str, Severity]] = {
    "ELS700": (
        "malformed contract directive or unreadable contract data file",
        Severity.ERROR,
    ),
    "ELS701": (
        "registered class does not implement its protocol",
        Severity.ERROR,
    ),
    "ELS702": (
        "implementation incompatible with its protocol contract",
        Severity.ERROR,
    ),
    "ELS703": (
        "non-ReproError exception escapes a public API function",
        Severity.ERROR,
    ),
    "ELS704": (
        "broad handler silently swallows a structured ReproError",
        Severity.ERROR,
    ),
    "ELS705": (
        "docstring 'Raises:' section drifts from raise behavior",
        Severity.WARNING,
    ),
    "ELS706": (
        "import-layering violation or module-level import cycle",
        Severity.ERROR,
    ),
    "ELS707": (
        "unacknowledged public API change against api-baseline.json",
        Severity.ERROR,
    ),
}

#: Module stems whose broad handlers are legitimate last-resort borders.
_CLI_STEMS = frozenset({"cli", "__main__"})


def _eligible(modules: Sequence) -> List:
    return [m for m in modules if not m.is_test_file and m.tree is not None]


def _build_program(modules: Sequence) -> Tuple[Program, Dict[str, Tuple]]:
    parsed = []
    directive_index: Dict[str, Tuple] = {}
    for module in modules:
        directives, malformed = parse_directives(module.source)
        directive_index[module.path] = (directives, malformed)
        parsed.append((module.path, module.tree, directives))
    return collect_program(parsed), directive_index


# ---------------------------------------------------------------------------
# The component-local half
# ---------------------------------------------------------------------------


def analyze_modules_local(
    modules: Sequence,
    max_passes: int = 8,
    summary_sink: Optional[Dict[str, Dict[str, Dict[str, object]]]] = None,
    manifest_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Component-sound contract diagnostics over parsed modules.

    ``modules`` is duck-typed (``path`` / ``source`` / ``tree`` /
    ``is_test_file``).  Test and bench files are skipped — their raise
    behavior and imports are fixture plumbing, not contracts.  When
    ``summary_sink`` is given, the escaping-exception sets are recorded
    as ``sink[path][qualname]["raises"]`` so the incremental cache can
    persist them.
    """
    findings: List[Diagnostic] = []
    eligible = _eligible(modules)
    if not eligible:
        return findings
    program, directive_index = _build_program(eligible)
    hierarchy = collect_hierarchy(program)
    summaries = compute_raise_summaries(program, hierarchy, max_passes)
    if summary_sink is not None:
        for minfo in program.modules:
            for function in minfo.functions:
                key = summary_key(minfo.path, function.qualname)
                summary_sink.setdefault(minfo.path, {}).setdefault(
                    function.qualname, {}
                )["raises"] = sorted(summaries.get(key, frozenset()))
    manifest: Optional[LayerManifest] = None
    try:
        manifest = load_manifest(manifest_path)
    except ManifestError:
        manifest = None  # the global half reports ELS700 once
    try:
        baseline = load_baseline(baseline_path)
    except BaselineError:
        baseline = None  # the global half reports ELS700 once
    for minfo in program.modules:
        directives, malformed = directive_index[minfo.path]
        _report_directives(minfo, directives, malformed, findings)
        module_name = module_name_of(minfo.path)
        if module_name is None:
            continue
        public = _public_functions(minfo)
        _report_escapes(minfo, public, summaries, hierarchy, findings)
        _report_swallows(
            minfo, module_name, program, summaries, hierarchy, findings
        )
        _report_docstrings(minfo, public, summaries, hierarchy, findings)
        if manifest is not None:
            for lineno, message in check_layering(
                module_name, minfo.path, minfo.tree, manifest
            ):
                findings.append(
                    Diagnostic(
                        file=minfo.path,
                        line=lineno,
                        col=0,
                        code="ELS706",
                        severity=Severity.ERROR,
                        message=message,
                        hint=(
                            "move the import into the function that needs it "
                            "or restructure the tiers in layers.toml"
                        ),
                    )
                )
        if baseline is not None:
            _report_drift(minfo, module_name, baseline, findings)
    return findings


def _report_directives(
    minfo: ModuleInfo, directives, malformed, findings: List[Diagnostic]
) -> None:
    """ELS700: malformed or misplaced ``registers=`` directives."""
    for bad in malformed:
        if bad.family != "contracts":
            continue  # the other layers own their families
        findings.append(
            Diagnostic(
                file=minfo.path,
                line=bad.line,
                col=bad.col,
                code="ELS700",
                severity=Severity.ERROR,
                message=f"malformed '# els:' directive: {bad.reason}",
                hint=(
                    "use '# els: registers=<ProtocolName>' on the registry "
                    "decorator's def line"
                ),
            )
        )
    def_lines = {
        node.lineno
        for node in ast.walk(minfo.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for directive in directives:
        if directive.kind != "registers":
            continue
        if directive.line not in def_lines:
            findings.append(
                Diagnostic(
                    file=minfo.path,
                    line=directive.line,
                    col=0,
                    code="ELS700",
                    severity=Severity.ERROR,
                    message=(
                        "misplaced '# els: registers=' directive: registry "
                        "declarations attach to a 'def' line"
                    ),
                    hint="move the directive onto the decorator function's def line",
                )
            )


def _public_functions(minfo: ModuleInfo) -> List:
    """Module-level functions exported through a static ``__all__``."""
    entry = extract_api(minfo.tree)
    if entry is None:
        return []
    exported = set(entry.all_names)
    return [
        function
        for function in minfo.functions
        if "." not in function.qualname and function.name in exported
    ]


def _report_escapes(
    minfo: ModuleInfo,
    public: List,
    summaries: Summaries,
    hierarchy: ExceptionHierarchy,
    findings: List[Diagnostic],
) -> None:
    """ELS703: unstructured exceptions escaping the public API."""
    for function in public:
        escaping = summaries.get(
            summary_key(minfo.path, function.qualname), frozenset()
        )
        offending = sorted(
            name
            for name in escaping
            if name in ("Exception", "BaseException")
            or (
                hierarchy.is_analyzed_class(name)
                and not hierarchy.is_repro_error(name)
            )
        )
        if not offending:
            continue
        findings.append(
            Diagnostic(
                file=minfo.path,
                line=function.node.lineno,
                col=0,
                code="ELS703",
                severity=Severity.ERROR,
                message=(
                    f"public function '{function.qualname}' lets "
                    f"{', '.join(offending)} escape; the public API raises "
                    "ReproError subtypes"
                ),
                hint=(
                    "wrap the failure in the matching repro.errors type or "
                    "catch it internally"
                ),
            )
        )


def _report_swallows(
    minfo: ModuleInfo,
    module_name: str,
    program: Program,
    summaries: Summaries,
    hierarchy: ExceptionHierarchy,
    findings: List[Diagnostic],
) -> None:
    """ELS704: broad, silent handlers over provably structured failures."""
    if Path(minfo.path).stem in _CLI_STEMS:
        return
    for function in minfo.functions:
        enclosing = (
            function.qualname.rsplit(".", 1)[0]
            if "." in function.qualname
            else None
        )
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Try):
                continue
            raised = None
            for handler in node.handlers:
                if not handler_is_broad(handler, minfo):
                    continue
                if not handler_is_silent(handler):
                    continue
                if raised is None:
                    raised = try_body_raises(
                        node, program, minfo, enclosing, summaries, hierarchy
                    )
                swallowed = sorted(
                    name for name in raised if hierarchy.is_repro_error(name)
                )
                if not swallowed:
                    continue
                findings.append(
                    Diagnostic(
                        file=minfo.path,
                        line=handler.lineno,
                        col=0,
                        code="ELS704",
                        severity=Severity.ERROR,
                        message=(
                            f"broad handler in '{function.qualname}' silently "
                            f"swallows {', '.join(swallowed)}"
                        ),
                        hint=(
                            "catch the specific ReproError, or use/propagate "
                            "the bound exception"
                        ),
                    )
                )


_RAISES_ENTRY = re.compile(r"^\s+([A-Za-z_][\w.]*):")


def _documented_raises(node: ast.AST) -> Optional[List[str]]:
    """Terminal names of the docstring's ``Raises:`` entries.

    Returns ``None`` when the docstring has no ``Raises:`` section at
    all (which is different from an empty one).
    """
    docstring = ast.get_docstring(node)
    if docstring is None:
        return None
    lines = docstring.splitlines()
    for index, line in enumerate(lines):
        if line.strip() != "Raises:":
            continue
        names: List[str] = []
        for follower in lines[index + 1:]:
            if follower.strip() and not follower[0].isspace():
                break  # a new top-level section
            match = _RAISES_ENTRY.match(follower)
            if match:
                names.append(match.group(1).rsplit(".", 1)[-1])
        return names
    return None


def _report_docstrings(
    minfo: ModuleInfo,
    public: List,
    summaries: Summaries,
    hierarchy: ExceptionHierarchy,
    findings: List[Diagnostic],
) -> None:
    """ELS705 (warning): ``Raises:`` sections vs. computed behavior."""
    for function in public:
        raised_direct = sorted(
            name
            for name in direct_raises(function.node, minfo, hierarchy)
            if hierarchy.is_repro_error(name)
        )
        documented = _documented_raises(function.node)
        problems: List[str] = []
        if documented is None:
            if raised_direct:
                problems.append(
                    "raises " + ", ".join(raised_direct) + " but the "
                    "docstring has no 'Raises:' section"
                )
        else:
            for name in raised_direct:
                if not any(
                    hierarchy.is_subclass(name, doc) for doc in documented
                ):
                    problems.append(f"raises {name} which 'Raises:' omits")
            escaping = summaries.get(
                summary_key(minfo.path, function.qualname), frozenset()
            )
            for doc in documented:
                if not hierarchy.is_repro_error(doc):
                    continue
                if not any(
                    hierarchy.is_subclass(name, doc)
                    or hierarchy.is_subclass(doc, name)
                    for name in escaping
                ):
                    problems.append(
                        f"documents {doc} which the analysis never sees "
                        "escape"
                    )
        if not problems:
            continue
        findings.append(
            Diagnostic(
                file=minfo.path,
                line=function.node.lineno,
                col=0,
                code="ELS705",
                severity=Severity.WARNING,
                message=(
                    f"docstring drift on '{function.qualname}': "
                    + "; ".join(problems)
                ),
                hint="update the 'Raises:' section to match the code",
            )
        )


def _report_drift(
    minfo: ModuleInfo,
    module_name: str,
    baseline: Dict[str, Dict[str, object]],
    findings: List[Diagnostic],
) -> None:
    """ELS707 (per module): the surface vs. the committed baseline."""
    entry = extract_api(minfo.tree)
    if entry is None and module_name not in baseline:
        return
    drifts = compare_module(module_name, entry, baseline)
    if not drifts:
        return
    findings.append(
        Diagnostic(
            file=minfo.path,
            line=entry.all_line if entry is not None else 1,
            col=0,
            code="ELS707",
            severity=Severity.ERROR,
            message=(
                f"public API of '{module_name}' drifted from the baseline: "
                + "; ".join(drifts)
            ),
            hint=(
                "acknowledge intentional changes with "
                "'python -m repro.lint.contracts.baseline'"
            ),
        )
    )


# ---------------------------------------------------------------------------
# The whole-set half
# ---------------------------------------------------------------------------


def analyze_modules_global(
    modules: Sequence,
    max_passes: int = 8,
    manifest_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Contract diagnostics that must see the whole file set at once."""
    del max_passes  # conformance and cycles need no fixpoint
    findings: List[Diagnostic] = []
    eligible = _eligible(modules)
    if not eligible:
        return findings
    program, _ = _build_program(eligible)
    manifest_file = (
        str(DEFAULT_MANIFEST_PATH) if manifest_path is None else manifest_path
    )
    try:
        load_manifest(manifest_path)
    except ManifestError as exc:
        findings.append(
            Diagnostic(
                file=manifest_file,
                line=1,
                col=0,
                code="ELS700",
                severity=Severity.ERROR,
                message=f"unusable layering manifest: {exc}",
                hint="fix layers.toml; see docs/ARCHITECTURE.md for the format",
            )
        )
    baseline = None
    baseline_file = (
        str(DEFAULT_BASELINE_PATH) if baseline_path is None else baseline_path
    )
    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as exc:
        findings.append(
            Diagnostic(
                file=baseline_file,
                line=1,
                col=0,
                code="ELS700",
                severity=Severity.ERROR,
                message=f"unusable API baseline: {exc}",
                hint=(
                    "regenerate it with "
                    "'python -m repro.lint.contracts.baseline'"
                ),
            )
        )
    findings.extend(check_protocols(program))
    named = [
        (name, minfo.path, minfo.tree)
        for minfo in program.modules
        for name in [module_name_of(minfo.path)]
        if name is not None
    ]
    for cycle in find_cycles(named):
        anchor = min(
            path for name, path, _tree in named if name in set(cycle)
        )
        findings.append(
            Diagnostic(
                file=anchor,
                line=1,
                col=0,
                code="ELS706",
                severity=Severity.ERROR,
                message=(
                    "module-level import cycle: " + " -> ".join(cycle)
                ),
                hint="break the cycle with a function-level import",
            )
        )
    if baseline is not None:
        analyzed_names = {name for name, _path, _tree in named}
        if _PACKAGE_NAME in analyzed_names:
            missing = sorted(set(baseline) - analyzed_names)
            if missing:
                anchor = next(
                    path
                    for name, path, _tree in named
                    if name == _PACKAGE_NAME
                )
                findings.append(
                    Diagnostic(
                        file=anchor,
                        line=1,
                        col=0,
                        code="ELS707",
                        severity=Severity.ERROR,
                        message=(
                            "api-baseline.json records modules the package "
                            "no longer contains: " + ", ".join(missing)
                        ),
                        hint=(
                            "acknowledge removals with "
                            "'python -m repro.lint.contracts.baseline'"
                        ),
                    )
                )
    return findings


_PACKAGE_NAME = "repro"


# ---------------------------------------------------------------------------
# Convenience wrappers
# ---------------------------------------------------------------------------


def analyze_modules(
    modules: Sequence,
    max_passes: int = 8,
    summary_sink: Optional[Dict[str, Dict[str, Dict[str, object]]]] = None,
    manifest_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
) -> List[Diagnostic]:
    """The full contract layer: the local and global halves combined."""
    findings = analyze_modules_local(
        modules,
        max_passes=max_passes,
        summary_sink=summary_sink,
        manifest_path=manifest_path,
        baseline_path=baseline_path,
    )
    findings.extend(
        analyze_modules_global(
            modules,
            max_passes=max_passes,
            manifest_path=manifest_path,
            baseline_path=baseline_path,
        )
    )
    return findings


def analyze_source(
    source: str,
    path: str = "<memory>",
    manifest_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Convenience wrapper: analyze one in-memory module."""

    class _SourceModule:
        def __init__(self) -> None:
            self.path = path
            self.source = source
            self.is_test_file = False
            try:
                self.tree: Optional[ast.Module] = ast.parse(source)
            except SyntaxError:
                self.tree = None

    return analyze_modules(
        [_SourceModule()],
        manifest_path=manifest_path,
        baseline_path=baseline_path,
    )
