"""Structural protocol conformance — the ELS701/ELS702 core.

A ``typing.Protocol`` class declares an interface; a registry decorator
carrying ``# els: registers=<Protocol>`` declares which classes promise
to satisfy it.  This module resolves both declarations over the analyzed
file set and checks every registered class structurally:

* a protocol method with no implementation anywhere along the class's
  base chain is ELS701;
* an implementation whose parameter list is incompatible (wrong name or
  order, a protocol default the implementation refuses, a new required
  parameter) — or whose declared return quantity contradicts the
  protocol's ``# els: quantity=`` pin — is ELS702.

The quantity check ties this layer into the ELS3xx lattice: a protocol
that pins ``quantity=cardinality`` on ``estimate`` makes every
conforming implementation answer in rows, and a class declaring
``selectivity`` is caught at lint time, not after a silent unit mix-up.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dataflow.summaries import FunctionInfo, ModuleInfo, Program
from ..diagnostics import Diagnostic, Severity

__all__ = [
    "ProtocolIndex",
    "check_protocols",
    "index_protocols",
]


def _terminal(node: ast.expr, module: ModuleInfo) -> Optional[str]:
    """The terminal name an expression denotes, via the import table."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return module.imports.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_protocol_class(node: ast.ClassDef, module: ModuleInfo) -> bool:
    return any(_terminal(base, module) == "Protocol" for base in node.bases)


@dataclass
class _ClassInfo:
    """One analyzed top-level class with its resolved base names."""

    node: ast.ClassDef
    module: ModuleInfo
    bases: Tuple[str, ...]


@dataclass
class _Registrar:
    """A decorator function declared with ``# els: registers=``."""

    name: str
    protocol: str
    module: ModuleInfo
    line: int


@dataclass
class ProtocolIndex:
    """Protocols, registrars, and classes resolved over one file set."""

    protocols: Dict[str, _ClassInfo] = field(default_factory=dict)
    registrars: List[_Registrar] = field(default_factory=list)
    classes: Dict[str, _ClassInfo] = field(default_factory=dict)


def index_protocols(program: Program) -> ProtocolIndex:
    """Collect protocol classes, ``registers=`` registrars, and classes."""
    index = ProtocolIndex()
    for module in program.modules:
        registers_lines = {
            directive.line: directive.protocol
            for directive in module.directives
            if directive.kind == "registers" and directive.protocol is not None
        }
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                info = _ClassInfo(
                    node=node,
                    module=module,
                    bases=tuple(
                        name
                        for name in (
                            _terminal(base, module) for base in node.bases
                        )
                        if name is not None
                    ),
                )
                index.classes.setdefault(node.name, info)
                if _is_protocol_class(node, module):
                    index.protocols.setdefault(node.name, info)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                protocol = registers_lines.get(node.lineno)
                if protocol is not None:
                    index.registrars.append(
                        _Registrar(
                            name=node.name,
                            protocol=protocol,
                            module=module,
                            line=node.lineno,
                        )
                    )
    return index


def _decorator_terminal(node: ast.expr, module: ModuleInfo) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    return _terminal(node, module)


def _registered_classes(
    program: Program, index: ProtocolIndex
) -> List[Tuple[_ClassInfo, _Registrar]]:
    registrar_by_name = {r.name: r for r in index.registrars}
    registered: List[Tuple[_ClassInfo, _Registrar]] = []
    for module in program.modules:
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                name = _decorator_terminal(decorator, module)
                registrar = registrar_by_name.get(name) if name else None
                if registrar is not None:
                    info = index.classes.get(node.name)
                    if info is not None and info.node is node:
                        registered.append((info, registrar))
                    else:
                        registered.append(
                            (
                                _ClassInfo(node=node, module=module, bases=()),
                                registrar,
                            )
                        )
                    break
    return registered


def _resolve_method(
    program: Program,
    index: ProtocolIndex,
    cls: _ClassInfo,
    method: str,
) -> Optional[FunctionInfo]:
    """MRO-lite lookup: the class, then its base chain, breadth-first."""
    queue: List[_ClassInfo] = [cls]
    seen = set()
    while queue:
        current = queue.pop(0)
        if current.node.name in seen:
            continue
        seen.add(current.node.name)
        qualname = f"{current.node.name}.{method}"
        for function in current.module.functions:
            if function.qualname == qualname:
                return function
        for base in current.bases:
            base_info = index.classes.get(base)
            if base_info is not None:
                queue.append(base_info)
    return None


# ---------------------------------------------------------------------------
# Parameter compatibility
# ---------------------------------------------------------------------------


def _parameters(node: ast.AST) -> Tuple[List[Tuple[str, bool]], bool, bool]:
    """Non-self parameters as (name, has_default), plus *args/**kwargs."""
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    defaults = [False] * (len(positional) - len(args.defaults)) + [True] * len(
        args.defaults
    )
    params = [
        (arg.arg, has_default)
        for arg, has_default in zip(positional, defaults)
        if arg.arg not in ("self", "cls")
    ]
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        params.append((arg.arg, default is not None))
    return params, args.vararg is not None, args.kwarg is not None


def _parameter_problems(
    protocol_fn: FunctionInfo, impl_fn: FunctionInfo
) -> List[str]:
    """Mismatch messages between a protocol method and an implementation."""
    proto_params, _, _ = _parameters(protocol_fn.node)
    impl_params, impl_vararg, impl_kwarg = _parameters(impl_fn.node)
    flexible_tail = impl_vararg and impl_kwarg
    problems: List[str] = []
    for position, (name, has_default) in enumerate(proto_params):
        if position >= len(impl_params):
            if not flexible_tail:
                problems.append(f"missing parameter '{name}'")
            continue
        impl_name, impl_default = impl_params[position]
        if impl_name != name:
            problems.append(
                f"parameter {position + 1} is '{impl_name}', protocol "
                f"requires '{name}'"
            )
        elif has_default and not impl_default:
            problems.append(
                f"parameter '{name}' must accept a default as the "
                "protocol declares"
            )
    for impl_name, impl_default in impl_params[len(proto_params):]:
        if not impl_default:
            problems.append(
                f"extra parameter '{impl_name}' must have a default"
            )
    return problems


def _quantity_problem(
    protocol_fn: FunctionInfo, impl_fn: FunctionInfo
) -> Optional[str]:
    declared = protocol_fn.expected_return
    actual = impl_fn.expected_return
    if declared is None or actual is None or declared == actual:
        return None
    return (
        f"returns quantity '{actual.value}' but the protocol pins "
        f"'{declared.value}'"
    )


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------


def _protocol_methods(
    program: Program, protocol: _ClassInfo
) -> List[FunctionInfo]:
    prefix = f"{protocol.node.name}."
    return [
        function
        for function in protocol.module.functions
        if function.qualname.startswith(prefix)
        and not function.name.startswith("_")
    ]


def check_protocols(program: Program) -> List[Diagnostic]:
    """ELS700 (unknown protocol), ELS701, and ELS702 over a file set."""
    index = index_protocols(program)
    findings: List[Diagnostic] = []
    known_registrars = []
    for registrar in index.registrars:
        if registrar.protocol not in index.protocols:
            findings.append(
                Diagnostic(
                    file=registrar.module.path,
                    line=registrar.line,
                    col=0,
                    code="ELS700",
                    severity=Severity.ERROR,
                    message=(
                        f"'# els: registers={registrar.protocol}' names a "
                        "protocol the analyzed files do not define"
                    ),
                    hint=(
                        "declare a typing.Protocol class with that name or "
                        "fix the directive"
                    ),
                )
            )
        else:
            known_registrars.append(registrar)
    index.registrars = known_registrars
    for cls, registrar in _registered_classes(program, index):
        protocol = index.protocols[registrar.protocol]
        missing: List[str] = []
        local_problems: Dict[int, List[str]] = {}
        inherited_problems: List[str] = []
        for protocol_fn in _protocol_methods(program, protocol):
            impl_fn = _resolve_method(program, index, cls, protocol_fn.name)
            if impl_fn is None:
                missing.append(protocol_fn.name)
                continue
            problems = _parameter_problems(protocol_fn, impl_fn)
            quantity = _quantity_problem(protocol_fn, impl_fn)
            if quantity is not None:
                problems.append(quantity)
            if not problems:
                continue
            detail = f"method '{protocol_fn.name}': " + "; ".join(problems)
            if impl_fn.module is cls.module and impl_fn.qualname.startswith(
                f"{cls.node.name}."
            ):
                local_problems.setdefault(impl_fn.node.lineno, []).append(detail)
            else:
                inherited_problems.append(
                    f"inherited {detail} (defined on '{impl_fn.qualname}')"
                )
        if missing:
            findings.append(
                Diagnostic(
                    file=cls.module.path,
                    line=cls.node.lineno,
                    col=0,
                    code="ELS701",
                    severity=Severity.ERROR,
                    message=(
                        f"class '{cls.node.name}' is registered against "
                        f"protocol '{protocol.node.name}' but does not "
                        "implement: " + ", ".join(sorted(missing))
                    ),
                    hint="implement the missing methods or unregister the class",
                )
            )
        for line, details in sorted(local_problems.items()):
            findings.append(
                Diagnostic(
                    file=cls.module.path,
                    line=line,
                    col=0,
                    code="ELS702",
                    severity=Severity.ERROR,
                    message=(
                        f"class '{cls.node.name}' violates protocol "
                        f"'{protocol.node.name}': " + "; ".join(details)
                    ),
                    hint="match the protocol's parameters and quantity pins",
                )
            )
        if inherited_problems:
            findings.append(
                Diagnostic(
                    file=cls.module.path,
                    line=cls.node.lineno,
                    col=0,
                    code="ELS702",
                    severity=Severity.ERROR,
                    message=(
                        f"class '{cls.node.name}' violates protocol "
                        f"'{protocol.node.name}': "
                        + "; ".join(inherited_problems)
                    ),
                    hint="match the protocol's parameters and quantity pins",
                )
            )
    return findings
