"""Architecture enforcement: the layering manifest and the import graph.

The repository's dependency architecture is *declared* in
``layers.toml`` (shipped next to this module) as an ordered list of
tiers.  The contract is deliberately strict and simple:

* a module may import freely within its own subpackage;
* across subpackages it may import only from **strictly lower** tiers;
* the package facade (``repro/__init__``) is exempt as an importer —
  re-exporting the world is its job — but importing *it* from a
  subpackage is always a violation;
* only module-level imports count.  A function-level import is the
  sanctioned escape hatch for acyclic-but-awkward edges, exactly
  because it cannot create an import cycle at module load time.

:func:`check_layering` verifies the real module-level import graph
against the manifest (ELS706, per file), and :func:`find_cycles`
detects module-level import cycles over the whole analyzed set (also
ELS706, reported once per cycle).  The manifest is parsed with a small
TOML-subset reader (:func:`parse_toml_subset`) because the supported
interpreters include 3.10, which lacks :mod:`tomllib`, and the
repository vendors no third-party dependencies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import LintError

__all__ = [
    "DEFAULT_MANIFEST_PATH",
    "LayerManifest",
    "ManifestError",
    "check_layering",
    "find_cycles",
    "load_manifest",
    "module_imports",
    "module_name_of",
    "parse_toml_subset",
]

#: The committed layering manifest, shipped as package data.
DEFAULT_MANIFEST_PATH = Path(__file__).resolve().parent / "layers.toml"

#: The distribution package whose layout the manifest governs.
_PACKAGE = "repro"


class ManifestError(LintError):
    """An unusable manifest file (surfaced as ELS700 by the driver)."""


# ---------------------------------------------------------------------------
# TOML subset
# ---------------------------------------------------------------------------


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment, honoring (single-line) string quoting."""
    quote: Optional[str] = None
    for index, char in enumerate(line):
        if quote is not None:
            if char == quote:
                quote = None
        elif char in ('"', "'"):
            quote = char
        elif char == "#":
            return line[:index]
    return line


def _parse_value(raw: str, lineno: int):
    """Parse one scalar or array value of the supported TOML subset."""
    raw = raw.strip()
    if not raw:
        raise ManifestError(f"line {lineno}: empty value")
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        items = []
        for part in inner.split(","):
            part = part.strip()
            if not part:
                continue
            items.append(_parse_value(part, lineno))
        return items
    if (raw.startswith('"') and raw.endswith('"') and len(raw) >= 2) or (
        raw.startswith("'") and raw.endswith("'") and len(raw) >= 2
    ):
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw)
    except ValueError:
        raise ManifestError(
            f"line {lineno}: unsupported value {raw!r} (expected a quoted "
            "string, an array, a boolean, or an integer)"
        ) from None


def parse_toml_subset(text: str) -> Dict[str, object]:
    """Parse the TOML subset the layering manifest uses.

    Supported: comments, ``[table]`` headers, ``[[array-of-tables]]``
    headers, and single-line ``key = value`` pairs whose value is a
    quoted string, an array of such scalars, a boolean, or an integer.
    This is all ``layers.toml`` needs, stdlib-only on every supported
    interpreter.

    Raises:
        ManifestError: on anything outside the subset — a silently
            misread manifest would be worse than none.
    """
    data: Dict[str, object] = {}
    current: Dict[str, object] = data
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise ManifestError(f"line {lineno}: unterminated table array header")
            name = line[2:-2].strip()
            if not name:
                raise ManifestError(f"line {lineno}: empty table array name")
            tables = data.setdefault(name, [])
            if not isinstance(tables, list):
                raise ManifestError(
                    f"line {lineno}: {name!r} is both a table and a table array"
                )
            current = {}
            tables.append(current)
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ManifestError(f"line {lineno}: unterminated table header")
            name = line[1:-1].strip()
            if not name:
                raise ManifestError(f"line {lineno}: empty table name")
            table = data.setdefault(name, {})
            if not isinstance(table, dict):
                raise ManifestError(
                    f"line {lineno}: {name!r} is both a table and a table array"
                )
            current = table
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise ManifestError(
                f"line {lineno}: expected 'key = value', got {line!r}"
            )
        key = key.strip()
        if not key:
            raise ManifestError(f"line {lineno}: empty key")
        current[key] = _parse_value(value, lineno)
    return data


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LayerManifest:
    """The declared layering: ordered tiers of top-level subpackages.

    Attributes:
        path: The manifest file the tiers were read from.
        tiers: ``(name, modules)`` pairs, lowest tier first.
        tier_of: Subpackage segment -> tier index (derived).
    """

    path: str
    tiers: Tuple[Tuple[str, Tuple[str, ...]], ...]
    tier_of: Dict[str, int]

    def tier_name(self, index: int) -> str:
        """The declared name of one tier index."""
        return self.tiers[index][0]


def load_manifest(path: Optional[str] = None) -> LayerManifest:
    """Load and validate the layering manifest.

    Raises:
        ManifestError: when the file is unreadable, outside the TOML
            subset, or structurally invalid (missing fields, a module
            assigned to two tiers, no tiers at all).
    """
    manifest_path = Path(path) if path is not None else DEFAULT_MANIFEST_PATH
    try:
        text = manifest_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ManifestError(f"cannot read manifest: {exc}") from exc
    data = parse_toml_subset(text)
    raw_tiers = data.get("tier")
    if not isinstance(raw_tiers, list) or not raw_tiers:
        raise ManifestError("manifest declares no [[tier]] entries")
    tiers: List[Tuple[str, Tuple[str, ...]]] = []
    tier_of: Dict[str, int] = {}
    for index, entry in enumerate(raw_tiers):
        name = entry.get("name") if isinstance(entry, dict) else None
        modules = entry.get("modules") if isinstance(entry, dict) else None
        if not isinstance(name, str) or not name:
            raise ManifestError(f"[[tier]] #{index + 1} lacks a 'name' string")
        if not isinstance(modules, list) or not modules or not all(
            isinstance(m, str) and m for m in modules
        ):
            raise ManifestError(
                f"tier {name!r} lacks a non-empty 'modules' string array"
            )
        for module in modules:
            if module in tier_of:
                raise ManifestError(
                    f"module {module!r} assigned to two tiers "
                    f"({tiers[tier_of[module]][0]!r} and {name!r})"
                )
            tier_of[module] = index
        tiers.append((name, tuple(modules)))
    return LayerManifest(
        path=str(manifest_path), tiers=tuple(tiers), tier_of=tier_of
    )


# ---------------------------------------------------------------------------
# Module naming and the import graph
# ---------------------------------------------------------------------------


def module_name_of(path: str) -> Optional[str]:
    """Dotted module name of a source path, or ``None`` outside the package.

    ``src/repro/core/estimator.py`` -> ``repro.core.estimator``;
    ``src/repro/__init__.py`` -> ``repro``; paths with no ``repro``
    directory component (tests, examples, synthetic names) -> ``None``.
    """
    parts = Path(path).parts
    anchor = None
    for index, part in enumerate(parts):
        if part == _PACKAGE:
            anchor = index
    if anchor is None:
        return None
    tail = list(parts[anchor:])
    if not tail[-1].endswith(".py"):
        return None
    tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__":
        tail.pop()
    return ".".join(tail)


def _is_package_init(path: str) -> bool:
    return Path(path).name == "__init__.py"


def _resolve_relative(
    module_name: str, is_package: bool, level: int, target: Optional[str]
) -> Optional[str]:
    """Resolve a relative import to a dotted module name, or ``None``."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    up = level - 1
    if up > len(parts):
        return None
    if up:
        parts = parts[:-up]
    if target:
        parts.extend(target.split("."))
    return ".".join(parts) if parts else None


def module_imports(
    module_name: str, path: str, tree: ast.Module
) -> List[Tuple[int, str, Tuple[str, ...]]]:
    """Module-level in-package imports of one module.

    Returns ``(lineno, target-module, imported-names)`` rows for every
    import in ``tree.body`` that lands inside the package; imports of
    the stdlib and other packages are ignored.  Only top-level
    statements count — a function-level import is the sanctioned way to
    take an edge the layering forbids.
    """
    is_package = _is_package_init(path)
    rows: List[Tuple[int, str, Tuple[str, ...]]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == _PACKAGE or alias.name.startswith(
                    _PACKAGE + "."
                ):
                    rows.append((node.lineno, alias.name, ()))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                target = _resolve_relative(
                    module_name, is_package, node.level, node.module
                )
            else:
                target = node.module
            if target is None:
                continue
            if target != _PACKAGE and not target.startswith(_PACKAGE + "."):
                continue
            names = tuple(alias.name for alias in node.names)
            rows.append((node.lineno, target, names))
    return rows


def _segment_of(module_name: str) -> Optional[str]:
    """Top-level subpackage segment (``None`` for the facade itself)."""
    parts = module_name.split(".")
    if len(parts) < 2:
        return None
    return parts[1]


def check_layering(
    module_name: str,
    path: str,
    tree: ast.Module,
    manifest: LayerManifest,
) -> List[Tuple[int, str]]:
    """Layering violations of one module: ``(lineno, message)`` rows.

    Purely file-local given the manifest, so the incremental cache can
    replay it per dependency component.
    """
    violations: List[Tuple[int, str]] = []
    importer_segment = _segment_of(module_name)
    if importer_segment is None:
        return []  # the facade (repro/__init__) is exempt as an importer
    importer_tier = manifest.tier_of.get(importer_segment)
    imports = module_imports(module_name, path, tree)
    if importer_tier is None:
        violations.append(
            (
                1,
                f"module '{module_name}' belongs to subpackage "
                f"'{importer_segment}', which no tier of layers.toml "
                "declares",
            )
        )
        return violations
    for lineno, target, _names in imports:
        target_segment = _segment_of(target)
        if target_segment is None:
            violations.append(
                (
                    lineno,
                    f"'{module_name}' imports the package facade "
                    f"'{_PACKAGE}' at module level; import the concrete "
                    "submodule instead",
                )
            )
            continue
        if target_segment == importer_segment:
            continue
        target_tier = manifest.tier_of.get(target_segment)
        if target_tier is None:
            violations.append(
                (
                    lineno,
                    f"'{module_name}' imports '{target}', whose subpackage "
                    f"'{target_segment}' no tier of layers.toml declares",
                )
            )
            continue
        if target_tier >= importer_tier:
            relation = (
                "its own tier"
                if target_tier == importer_tier
                else "a higher tier"
            )
            violations.append(
                (
                    lineno,
                    f"layering violation: '{module_name}' (tier "
                    f"'{manifest.tier_name(importer_tier)}') imports "
                    f"'{target}' (tier "
                    f"'{manifest.tier_name(target_tier)}') — imports must "
                    f"target a strictly lower tier, not {relation}",
                )
            )
    return violations


def find_cycles(
    modules: Sequence[Tuple[str, str, ast.Module]],
) -> List[List[str]]:
    """Module-level import cycles over the analyzed set.

    ``modules`` holds ``(module_name, path, tree)`` rows.  Returns each
    strongly connected component of size > 1 (or with a self-edge) as a
    sorted list of module names; the result list is itself sorted, so
    reports are deterministic.
    """
    names = {name for name, _, _ in modules}
    graph: Dict[str, List[str]] = {name: [] for name, _, _ in modules}
    for name, path, tree in modules:
        targets = set()
        for _lineno, target, imported in module_imports(name, path, tree):
            if target in names:
                targets.add(target)
            for item in imported:
                dotted = f"{target}.{item}"
                if dotted in names:
                    targets.add(dotted)
        graph[name] = sorted(targets)
    # Tarjan's SCC, iteratively, over the (small) module graph.
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph[root]))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, edges = work[-1]
            advanced = False
            for succ in edges:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if on_stack.get(succ):
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph[node]:
                    sccs.append(sorted(component))

    for name in sorted(graph):
        if name not in index_of:
            strongconnect(name)
    return sorted(sccs)
