"""Layer 7: contract and architecture enforcement (ELS7xx).

Three analyses share one driver:

* **Protocol conformance** — ``typing.Protocol`` declarations linked to
  registry decorators via ``# els: registers=`` are checked
  structurally against every registered class (ELS701/ELS702).
* **Exception contracts** — a bottom-up raised-exception fixpoint
  catches unstructured escapes from the public API (ELS703), silent
  broad-handler swallows of ``ReproError`` (ELS704), and docstring
  ``Raises:`` drift (ELS705).
* **Architecture** — the committed ``layers.toml`` tier manifest is
  enforced against the real module-level import graph, plus cycle
  detection (ELS706), and the committed ``api-baseline.json`` turns
  unacknowledged public-API changes into ELS707.

The layer is split into a component-local and a whole-set half
(:func:`analyze_modules_local` / :func:`analyze_modules_global`) so the
incremental cache can replay the local half per dependency component
and the global half once per file set.
"""

from .analysis import (
    CONTRACT_CODES,
    analyze_modules,
    analyze_modules_global,
    analyze_modules_local,
    analyze_source,
)
from .architecture import (
    DEFAULT_MANIFEST_PATH,
    LayerManifest,
    ManifestError,
    load_manifest,
    module_name_of,
)
from .baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineError,
    generate_baseline,
    load_baseline,
    render_baseline,
)

__all__ = [
    "CONTRACT_CODES",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_MANIFEST_PATH",
    "BaselineError",
    "LayerManifest",
    "ManifestError",
    "analyze_modules",
    "analyze_modules_global",
    "analyze_modules_local",
    "analyze_source",
    "generate_baseline",
    "load_baseline",
    "load_manifest",
    "module_name_of",
    "render_baseline",
]
