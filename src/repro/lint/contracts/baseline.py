"""The committed public-API baseline behind ELS707.

``api-baseline.json`` (shipped next to this module) records, for every
package module that declares ``__all__``, the exported names and a
canonical signature string per name.  The contract layer recomputes the
same record from the analyzed ASTs and reports any *unacknowledged*
drift — a deleted public function, a renamed parameter, a new export —
as ELS707.  Acknowledging an intentional change is one command::

    python -m repro.lint.contracts.baseline

which regenerates the file from the current tree (``--check`` verifies
it instead, for CI).  The baseline is part of the lint rule-set
fingerprint, so editing it invalidates the incremental cache exactly
like editing a rule would.
"""

from __future__ import annotations

import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import LintError

__all__ = [
    "ApiEntry",
    "BaselineError",
    "DEFAULT_BASELINE_PATH",
    "compare_module",
    "entry_payload",
    "extract_api",
    "generate_baseline",
    "load_baseline",
    "main",
    "render_baseline",
]

#: The committed baseline, shipped as package data.
DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "api-baseline.json"

#: Signature recorded for an ``__all__`` name not defined in the module.
_REEXPORT = "re-export"

#: Signature recorded for a module-level constant export.
_CONSTANT = "constant"


class BaselineError(LintError):
    """An unusable baseline file (surfaced as ELS700 by the driver)."""


@dataclass(frozen=True)
class ApiEntry:
    """The statically extracted public surface of one module.

    Attributes:
        all_names: Sorted ``__all__`` contents.
        signatures: Name -> canonical signature string.
        all_line: Line of the ``__all__`` assignment (diagnostic anchor).
    """

    all_names: Tuple[str, ...]
    signatures: Dict[str, str]
    all_line: int


def _static_all(tree: ast.Module) -> Optional[Tuple[int, List[str]]]:
    """The literal ``__all__`` list of a module, or ``None`` if absent.

    Only a single module-level assignment of a list/tuple of string
    constants counts; a module computing ``__all__`` dynamically is
    skipped entirely (by the generator *and* the checker, so the two
    always agree).
    """
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if not isinstance(value, (ast.List, ast.Tuple)):
                    return None
                names = []
                for element in value.elts:
                    if not (
                        isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ):
                        return None
                    names.append(element.value)
                return node.lineno, names
    return None


def _unparse(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    return ast.unparse(node)


def _format_signature(node: ast.AST) -> str:
    """Canonical one-line signature of a function definition."""
    args = node.args
    parts: List[str] = []

    def piece(arg: ast.arg, default: Optional[ast.expr]) -> str:
        text = arg.arg
        annotation = _unparse(arg.annotation)
        if annotation is not None:
            text += f": {annotation}"
        if default is not None:
            text += f"={ast.unparse(default)}"
        return text

    positional = list(args.posonlyargs) + list(args.args)
    defaults: List[Optional[ast.expr]] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for index, arg in enumerate(positional):
        parts.append(piece(arg, defaults[index]))
        if args.posonlyargs and index == len(args.posonlyargs) - 1:
            parts.append("/")
    if args.vararg is not None:
        parts.append("*" + args.vararg.arg)
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(piece(arg, default))
    if args.kwarg is not None:
        parts.append("**" + args.kwarg.arg)
    prefix = "async def" if isinstance(node, ast.AsyncFunctionDef) else "def"
    signature = f"{prefix}({', '.join(parts)})"
    returns = _unparse(node.returns)
    if returns is not None:
        signature += f" -> {returns}"
    return signature


def _drop_self(signature: str) -> str:
    for marker in ("(self, ", "(self)"):
        if marker in signature:
            return signature.replace(marker, "(" + marker[len("(self, "):], 1)
    return signature


def _class_signature(node: ast.ClassDef) -> str:
    for child in node.body:
        if (
            isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child.name == "__init__"
        ):
            inner = _drop_self(_format_signature(child))
            return "class" + inner[len("def"):]
    return "class()"


def extract_api(tree: ast.Module) -> Optional[ApiEntry]:
    """The public surface of one parsed module, or ``None`` without one."""
    found = _static_all(tree)
    if found is None:
        return None
    all_line, names = found
    definitions: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            definitions[node.name] = _format_signature(node)
        elif isinstance(node, ast.ClassDef):
            definitions[node.name] = _class_signature(node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    definitions.setdefault(target.id, _CONSTANT)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            definitions.setdefault(node.target.id, _CONSTANT)
    signatures = {
        name: definitions.get(name, _REEXPORT) for name in names
    }
    return ApiEntry(
        all_names=tuple(sorted(names)),
        signatures=signatures,
        all_line=all_line,
    )


# ---------------------------------------------------------------------------
# Baseline IO
# ---------------------------------------------------------------------------


def load_baseline(path: Optional[str] = None) -> Dict[str, Dict[str, object]]:
    """Load the committed baseline.

    Raises:
        BaselineError: when the file is unreadable, not JSON, or not the
            expected module -> {"all", "signatures"} mapping.
    """
    baseline_path = Path(path) if path is not None else DEFAULT_BASELINE_PATH
    try:
        raw = baseline_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise BaselineError(f"cannot read baseline: {exc}") from exc
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise BaselineError(f"baseline is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise BaselineError("baseline must be a JSON object of modules")
    for module, entry in data.items():
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("all"), list)
            or not isinstance(entry.get("signatures"), dict)
        ):
            raise BaselineError(
                f"baseline entry for {module!r} must have 'all' (list) "
                "and 'signatures' (object)"
            )
    return data


def entry_payload(entry: ApiEntry) -> Dict[str, object]:
    """The JSON shape of one module's extracted surface."""
    return {
        "all": list(entry.all_names),
        "signatures": {
            name: entry.signatures[name] for name in sorted(entry.signatures)
        },
    }


def generate_baseline(package_root: Path) -> Dict[str, Dict[str, object]]:
    """Recompute the full baseline from a package source tree."""
    from .architecture import module_name_of

    baseline: Dict[str, Dict[str, object]] = {}
    for source in sorted(package_root.rglob("*.py")):
        module = module_name_of(str(source))
        if module is None:
            continue
        try:
            tree = ast.parse(source.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        entry = extract_api(tree)
        if entry is not None:
            baseline[module] = entry_payload(entry)
    return baseline


def render_baseline(baseline: Dict[str, Dict[str, object]]) -> str:
    """The canonical on-disk text of a baseline (stable, newline-final)."""
    return json.dumps(baseline, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# Per-module comparison (the ELS707 core)
# ---------------------------------------------------------------------------


def compare_module(
    module: str,
    entry: Optional[ApiEntry],
    baseline: Dict[str, Dict[str, object]],
) -> List[str]:
    """Drift messages for one module against the committed baseline."""
    recorded = baseline.get(module)
    if entry is None:
        if recorded is None:
            return []
        return [
            f"baseline records a public API for '{module}' but the module "
            "no longer declares a static '__all__'"
        ]
    if recorded is None:
        return [
            f"module '{module}' exports a public API that api-baseline.json "
            "does not record"
        ]
    drifts: List[str] = []
    recorded_names = sorted(str(n) for n in recorded["all"])
    current_names = list(entry.all_names)
    for name in sorted(set(current_names) - set(recorded_names)):
        drifts.append(f"unacknowledged new public name '{name}'")
    for name in sorted(set(recorded_names) - set(current_names)):
        drifts.append(f"public name '{name}' removed from '__all__'")
    recorded_signatures = recorded["signatures"]
    for name in sorted(set(current_names) & set(recorded_names)):
        old = recorded_signatures.get(name)
        new = entry.signatures.get(name)
        if old is not None and new is not None and old != new:
            drifts.append(
                f"signature of '{name}' changed: recorded {old!r}, "
                f"now {new!r}"
            )
    return drifts


# ---------------------------------------------------------------------------
# Console entry point
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Regenerate (default) or verify (``--check``) the baseline.

    The generator walks the installed ``repro`` package sources, so it
    reflects exactly what the linter will see.  Returns 0 on success or
    an up-to-date check, 1 when ``--check`` finds drift.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.contracts.baseline",
        description="Regenerate or verify the committed public-API baseline.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        default=False,
        help="verify the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file to write/verify (default: the committed one)",
    )
    args = parser.parse_args(argv)
    package_root = Path(__file__).resolve().parents[2]
    generated = generate_baseline(package_root)
    text = render_baseline(generated)
    target = Path(args.baseline) if args.baseline else DEFAULT_BASELINE_PATH
    if args.check:
        try:
            committed = target.read_text(encoding="utf-8")
        except OSError as exc:
            print(f"cannot read {target}: {exc}", file=sys.stderr)
            return 1
        if committed != text:
            print(
                f"{target} is stale; regenerate with "
                "'python -m repro.lint.contracts.baseline'",
                file=sys.stderr,
            )
            return 1
        print(f"{target} is up to date ({len(generated)} modules)")
        return 0
    target.write_text(text, encoding="utf-8")
    print(f"wrote {target} ({len(generated)} modules)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console
    sys.exit(main())
