"""Per-function concurrency facts and interprocedural lock/blocking summaries.

One :class:`ConcurrencyScan` walks a single function body in textual
order, threading the set of *currently held locks* through every
statement, and records what the ELS5xx rules need:

* **acquisitions** — every lock acquisition (``with lock:`` items,
  ``lock.acquire()`` statements) together with the locks already held at
  that point — the edges of the lock-order graph (ELS502).
* **blocking sites** — calls that block the calling thread
  (``time.sleep``, ``open``/``Path`` I/O, ``subprocess``, ``os.system``,
  pool ``map``/``join``), each with the locks held at the site (ELS503,
  ELS504).
* **await sites** — every ``await`` with the *synchronous* locks held
  across it; holding an ``async with`` lock across an await is that
  lock's purpose and is never recorded here (ELS504).
* **shared mutations** — in-place mutations rooted at a ``self``
  attribute or a module-level global, with the locks held at the site
  (ELS501, ELS507).
* **calls** — every call site with its held-lock snapshot, for the
  interprocedural propagation.
* **busy waits** — ``while`` loops inside ``async def`` bodies that spin
  on a deadline without awaiting (ELS503).

Lock identity is *qualified*: ``self._lock`` inside class ``C`` becomes
``"C._lock"`` so two classes with a ``_lock`` attribute never share a
graph node; module-level locks keep their bare name.  A name counts as a
lock when it contains ``lock`` or ``mutex`` — the same optimistic
philosophy as the effect layer: an expression the scan cannot prove to
be a lock contributes nothing, so every report rests on an established
chain.

Two fixpoints then run over the resolved call graph:

* :func:`collect_concurrency_summaries` — bottom-up: a function is
  *blocking* when it (transitively) reaches a blocking site, and its
  *acquires* set is the union of every lock it may (transitively)
  acquire.  A ``# els: blocking=yes|no`` directive on the ``def`` line
  pins the blocking component.
* :func:`collect_inherited_locks` — top-down: the locks a function is
  *guaranteed* to be called with (the intersection over all resolved
  call sites of held-at-site ∪ caller's own guarantee), so a private
  helper that is only ever invoked under the cache lock is not flagged
  for mutating guarded state (ELS501).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..dataflow.summaries import FunctionInfo, ModuleInfo, Program

__all__ = [
    "AcquisitionSite",
    "AwaitSite",
    "BlockingSite",
    "CallSite",
    "ConcurrencyScan",
    "ConcurrencySummary",
    "SharedMutation",
    "collect_concurrency_summaries",
    "collect_inherited_locks",
    "is_lock_name",
    "resolve_confident",
    "scan_function",
]


def resolve_confident(
    program: Program,
    call: ast.Call,
    module: ModuleInfo,
    enclosing_class: Optional[str],
) -> Optional[FunctionInfo]:
    """Resolve a call only when the receiver cannot be a plain object.

    The dataflow resolver falls back to a globally *unique* terminal name
    for any attribute call — fine for quantity summaries (an unknown
    summary is TOP), but poisonous for lock inheritance: ``entries.get``
    must never resolve to a method that happens to be named ``get``, or
    the phantom edge turns the inheritance lattice cyclic and silences
    real reports.  Attribute calls resolve only on ``self``/``cls`` or a
    module-level import alias; bare-name calls resolve as usual.
    """
    func = call.func
    if isinstance(func, ast.Attribute):
        receiver = func.value
        if not (
            isinstance(receiver, ast.Name)
            and (
                receiver.id in ("self", "cls")
                or receiver.id in module.imports
            )
        ):
            return None
    return program.resolve_call(call, module, enclosing_class)

#: Methods that mutate their receiver in place (mirrors the effect layer).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "difference_update",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "intersection_update",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "symmetric_difference_update",
        "update",
    }
)

#: ``subprocess`` members that block on a child process.
_SUBPROCESS_CALLS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen"}
)

#: ``pathlib.Path`` convenience I/O methods (blocking file access).
_PATH_IO_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)

#: Pool/executor methods that block until workers deliver.
_POOL_BLOCKING_METHODS = frozenset(
    {"apply", "imap", "imap_unordered", "join", "map", "starmap"}
)

#: Pool/executor methods that ship a callable to worker processes.
_POOL_SHIP_METHODS = frozenset(
    {
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
        "map",
        "map_async",
        "starmap",
        "starmap_async",
        "submit",
    }
)

#: Constructors whose result is a pool/executor handle.
POOL_CONSTRUCTORS = frozenset(
    {"Pool", "ThreadPool", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)

#: Deadline-observing calls that turn an await-free ``while`` into a spin
#: wait when polled from an ``async def`` (ELS503).
_DEADLINE_POLL_METHODS = frozenset({"check", "expired", "remaining_s"})


def is_lock_name(name: str) -> bool:
    """Heuristic: does this identifier denote a lock object?"""
    lowered = name.lower()
    return "lock" in lowered or "mutex" in lowered


@dataclass(frozen=True)
class AcquisitionSite:
    """One lock acquisition with the locks already held at that point."""

    lock: str
    held_before: FrozenSet[str]
    node: ast.AST
    is_async: bool = False


@dataclass(frozen=True)
class BlockingSite:
    """One call that blocks the calling thread."""

    node: ast.AST
    description: str
    held: FrozenSet[str]


@dataclass(frozen=True)
class AwaitSite:
    """One ``await`` expression with the sync locks held across it."""

    node: ast.AST
    held: FrozenSet[str]


@dataclass(frozen=True)
class SharedMutation:
    """One in-place mutation rooted at shared state.

    ``root`` is ``("selfattr", attr)`` or ``("global", name)``; ``depth``
    0 mutates the container itself, >= 1 a value reached through it.
    """

    root: Tuple[str, str]
    depth: int
    op: str
    node: ast.AST
    held: FrozenSet[str]


@dataclass(frozen=True)
class CallSite:
    """One call site with the sync locks held around it."""

    call: ast.Call
    held: FrozenSet[str]


@dataclass
class ConcurrencyScan:
    """Everything one pass over a function body collected."""

    function: FunctionInfo
    acquisitions: List[AcquisitionSite] = field(default_factory=list)
    blocking_sites: List[BlockingSite] = field(default_factory=list)
    await_sites: List[AwaitSite] = field(default_factory=list)
    mutations: List[SharedMutation] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: ``while`` loops in an ``async def`` that poll a deadline with no
    #: ``await`` anywhere in the loop.
    busy_waits: List[ast.AST] = field(default_factory=list)
    #: Self attributes assigned anywhere in the body (lock existence check).
    attr_stores: Set[str] = field(default_factory=set)
    #: Callable expressions shipped to a pool/executor (ELS507 roots).
    shipments: List[ast.expr] = field(default_factory=list)

    @property
    def is_async(self) -> bool:
        return isinstance(self.function.node, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class ConcurrencySummary:
    """The caller-visible concurrency behaviour of one function.

    Attributes:
        blocking: The function (transitively) reaches a blocking call.
        acquires: Locks the function may (transitively) acquire.
        declared: ``# els: blocking=`` pin on the ``def`` line, if any.
    """

    blocking: bool = False
    acquires: FrozenSet[str] = frozenset()
    declared: Optional[bool] = None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable mapping (for the incremental lint cache)."""
        return {
            "blocking": self.blocking,
            "acquires": sorted(self.acquires),
            "declared": self.declared,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "ConcurrencySummary":
        """Rebuild a summary from :meth:`to_dict` (inverse round-trip).

        Raises:
            KeyError, ValueError, TypeError: on a malformed mapping (the
                cache treats these as a corrupt entry = cold miss).
        """
        declared = row.get("declared")
        return cls(
            blocking=bool(row["blocking"]),
            acquires=frozenset(
                str(name) for name in row["acquires"]  # type: ignore[union-attr]
            ),
            declared=None if declared is None else bool(declared),
        )


class _Scanner:
    """Textual-order walker threading the held-lock set through a body."""

    def __init__(
        self,
        function: FunctionInfo,
        module: ModuleInfo,
        module_globals: FrozenSet[str],
    ) -> None:
        self.function = function
        self.module = module
        self.module_globals = module_globals
        self.scan = ConcurrencyScan(function)
        enclosing = function.qualname.rsplit(".", 1)
        self.enclosing_class = enclosing[0] if len(enclosing) == 2 else None
        self._held: Set[str] = set()
        self._async_held: Set[str] = set()
        self._pool_names: Set[str] = set()
        #: Local name -> shared root it aliases (one level, optimistic).
        self._aliases: Dict[str, Tuple[Tuple[str, str], int]] = {}

    # -- lock identity -------------------------------------------------------

    def _lock_target(self, node: ast.expr) -> Optional[str]:
        """The qualified lock name an expression denotes, or ``None``."""
        if isinstance(node, ast.Name) and is_lock_name(node.id):
            return node.id
        if isinstance(node, ast.Attribute) and is_lock_name(node.attr):
            if isinstance(node.value, ast.Name):
                if node.value.id in ("self", "cls"):
                    if self.enclosing_class is not None:
                        return f"{self.enclosing_class}.{node.attr}"
                    return node.attr
                # module.LOCK / shard.lock: keep the terminal name.
                return node.attr
        return None

    def qualify_lock(self, lock: str) -> str:
        """Qualify a bare directive lock name against the enclosing class."""
        if "." in lock or self.enclosing_class is None:
            return lock
        return f"{self.enclosing_class}.{lock}"

    # -- shared roots --------------------------------------------------------

    def _root_of(self, node: ast.expr) -> Optional[Tuple[Tuple[str, str], int]]:
        if isinstance(node, ast.Name):
            if node.id in self._aliases:
                return self._aliases[node.id]
            if node.id in self.module_globals:
                return (("global", node.id), 0)
            return None
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
                return (("selfattr", node.attr), 0)
            inner = self._root_of(node.value)
            if inner is not None:
                return (inner[0], inner[1] + 1)
            return None
        if isinstance(node, ast.Subscript):
            inner = self._root_of(node.value)
            if inner is not None:
                return (inner[0], inner[1] + 1)
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ("get", "setdefault"):
                inner = self._root_of(func.value)
                if inner is not None:
                    return (inner[0], inner[1] + 1)
            return None
        return None

    def _held_now(self) -> FrozenSet[str]:
        return frozenset(self._held)

    def _ordering_held(self) -> FrozenSet[str]:
        """Locks relevant to acquisition ordering (sync and async)."""
        return frozenset(self._held | self._async_held)

    # -- driver --------------------------------------------------------------

    def run(self) -> ConcurrencyScan:
        self._visit_statements(getattr(self.function.node, "body", []))
        return self.scan

    def _visit_statements(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self._visit_statement(statement)

    def _visit_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested scopes run later, under unknown locks
        if isinstance(statement, ast.ClassDef):
            return
        if isinstance(statement, ast.Assign):
            self._scan_expression(statement.value)
            for target in statement.targets:
                self._bind_target(target, statement.value, statement)
            return
        if isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._scan_expression(statement.value)
                self._bind_target(statement.target, statement.value, statement)
            return
        if isinstance(statement, ast.AugAssign):
            self._scan_expression(statement.value)
            target = statement.target
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                rooted = self._root_of(target)
                if rooted is not None:
                    # Augmented assignment through an attribute/subscript
                    # rewrites shared state in place.
                    self._record_mutation(rooted, "augassign", statement)
            return
        if isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Subscript):
                    rooted = self._root_of(target.value)
                    if rooted is not None:
                        self._record_mutation(rooted, "subscript-delete", statement)
                elif isinstance(target, ast.Name):
                    self._aliases.pop(target.id, None)
            return
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                self._scan_expression(statement.value)
            return
        if isinstance(statement, ast.Expr):
            self._scan_expression(statement.value)
            self._track_acquire_release(statement.value)
            return
        if isinstance(statement, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self._scan_expression(child)
            return
        if isinstance(statement, (ast.If, ast.While)):
            self._scan_expression(statement.test)
            if isinstance(statement, ast.While):
                self._check_busy_wait(statement)
            self._visit_branch(statement.body)
            self._visit_branch(statement.orelse)
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._scan_expression(statement.iter)
            self._visit_branch(statement.body)
            self._visit_branch(statement.orelse)
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            self._visit_with(statement)
            return
        if isinstance(statement, ast.Try):
            self._visit_branch(statement.body)
            for handler in statement.handlers:
                self._visit_branch(handler.body)
            self._visit_branch(statement.orelse)
            self._visit_branch(statement.finalbody)
            return
        # pass / break / continue / global / import: no concurrency facts.

    def _visit_branch(self, statements: Sequence[ast.stmt]) -> None:
        """Visit a conditional body, restoring the held set afterwards.

        Acquire/release tracked inside one branch never leaks past it —
        optimistic for ELS501 (a leaked "held" would hide reports is the
        direction we refuse) and conservative against false ELS504 fires.
        """
        saved_held = set(self._held)
        saved_async = set(self._async_held)
        self._visit_statements(statements)
        self._held = saved_held
        self._async_held = saved_async

    def _visit_with(self, statement: ast.stmt) -> None:
        is_async = isinstance(statement, ast.AsyncWith)
        entered: List[Tuple[str, bool]] = []
        for item in statement.items:
            self._scan_expression(item.context_expr)
            lock = self._lock_target(item.context_expr)
            if lock is not None:
                self.scan.acquisitions.append(
                    AcquisitionSite(
                        lock, self._ordering_held(), item.context_expr, is_async
                    )
                )
                if is_async:
                    self._async_held.add(lock)
                else:
                    self._held.add(lock)
                entered.append((lock, is_async))
            elif isinstance(item.optional_vars, ast.Name):
                if _terminal_call_name(item.context_expr) in POOL_CONSTRUCTORS:
                    self._pool_names.add(item.optional_vars.id)
        self._visit_statements(statement.body)
        for lock, was_async in entered:
            if was_async:
                self._async_held.discard(lock)
            else:
                self._held.discard(lock)

    def _track_acquire_release(self, node: ast.expr) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        lock = self._lock_target(func.value)
        if lock is None:
            return
        if func.attr == "acquire":
            self.scan.acquisitions.append(
                AcquisitionSite(lock, self._ordering_held(), node, False)
            )
            self._held.add(lock)
        elif func.attr == "release":
            self._held.discard(lock)

    # -- binding -------------------------------------------------------------

    def _bind_target(
        self, target: ast.expr, value: ast.expr, statement: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            rooted = self._root_of(value)
            if rooted is not None:
                self._aliases[target.id] = rooted
            else:
                self._aliases.pop(target.id, None)
            if _terminal_call_name(value) in POOL_CONSTRUCTORS:
                self._pool_names.add(target.id)
            else:
                self._pool_names.discard(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self._aliases.pop(element.id, None)
            return
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id in (
                "self",
                "cls",
            ):
                self.scan.attr_stores.add(target.attr)
                self._record_mutation(
                    (("selfattr", target.attr), 0), "attr-store", statement
                )
                return
            rooted = self._root_of(target.value)
            if rooted is not None:
                self._record_mutation(
                    (rooted[0], rooted[1] + 1), "attr-store", statement
                )
            return
        if isinstance(target, ast.Subscript):
            rooted = self._root_of(target.value)
            if rooted is not None:
                self._record_mutation(rooted, "subscript-store", statement)

    def _record_mutation(
        self,
        rooted: Tuple[Tuple[str, str], int],
        op: str,
        node: ast.AST,
    ) -> None:
        (kind, name), depth = rooted
        if op == "attr-store" and kind == "selfattr" and depth == 0:
            # Rebinding self.attr itself is initialization, not container
            # mutation; the guarded contract covers the stored container.
            return
        self.scan.mutations.append(
            SharedMutation((kind, name), depth, op, node, self._held_now())
        )

    # -- expressions ---------------------------------------------------------

    def _scan_expression(self, node: ast.expr) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Await):
                self.scan.await_sites.append(AwaitSite(child, self._held_now()))
            elif isinstance(child, ast.Call):
                self._scan_call(child)

    def _scan_call(self, call: ast.Call) -> None:
        self.scan.calls.append(CallSite(call, self._held_now()))
        self._check_mutator(call)
        description = self._blocking_description(call)
        if description is not None:
            self.scan.blocking_sites.append(
                BlockingSite(call, description, self._held_now())
            )
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_SHIP_METHODS
            and self._is_pool(func.value)
            and call.args
        ):
            self.scan.shipments.append(call.args[0])

    def _check_mutator(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATOR_METHODS:
            return
        rooted = self._root_of(func.value)
        if rooted is not None:
            self._record_mutation(rooted, func.attr, call)

    def _blocking_description(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in ("open", "input"):
                return f"{func.id}()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        owner = _attribute_owner_name(func.value, self.module)
        if owner == "time" and func.attr == "sleep":
            return "time.sleep()"
        if owner == "os" and func.attr == "system":
            return "os.system()"
        if owner == "subprocess" and func.attr in _SUBPROCESS_CALLS:
            return f"subprocess.{func.attr}()"
        if func.attr in _PATH_IO_METHODS:
            return f".{func.attr}() file I/O"
        if func.attr in _POOL_BLOCKING_METHODS and self._is_pool(func.value):
            return f"pool.{func.attr}()"
        return None

    def _is_pool(self, receiver: ast.expr) -> bool:
        if isinstance(receiver, ast.Name):
            if receiver.id in self._pool_names:
                return True
            return "pool" in receiver.id.lower()
        if isinstance(receiver, ast.Attribute):
            return "pool" in receiver.attr.lower()
        return _terminal_call_name(receiver) in POOL_CONSTRUCTORS

    # -- busy waits ----------------------------------------------------------

    def _check_busy_wait(self, loop: ast.While) -> None:
        if not self.scan.is_async:
            return
        for node in ast.walk(loop):
            if isinstance(node, ast.Await):
                return
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DEADLINE_POLL_METHODS
            ):
                self.scan.busy_waits.append(loop)
                return


def scan_function(
    function: FunctionInfo,
    module: ModuleInfo,
    module_globals: FrozenSet[str],
) -> ConcurrencyScan:
    """Scan one function body for concurrency facts."""
    return _Scanner(function, module, module_globals).run()


# ---------------------------------------------------------------------------
# Bottom-up summaries: blocking-ness and acquired locks
# ---------------------------------------------------------------------------


def _declared_blocking(function: FunctionInfo) -> Optional[bool]:
    for directive in function.module.directives:
        if directive.kind == "blocking" and directive.line == function.node.lineno:
            return directive.blocking
    return None


def collect_concurrency_summaries(
    program: Program,
    scans: Dict[int, ConcurrencyScan],
    max_passes: int = 8,
) -> Dict[int, ConcurrencySummary]:
    """Iterate blocking/acquires summaries over the call graph to a fixpoint.

    Keys are ``id(FunctionInfo)``.  A ``blocking=`` directive pins the
    blocking component in both directions; the acquires component always
    accumulates (a pinned-nonblocking function can still take locks).
    """
    summaries: Dict[int, ConcurrencySummary] = {}
    for module in program.modules:
        for function in module.functions:
            scan = scans.get(id(function))
            declared = _declared_blocking(function)
            blocking = (
                declared
                if declared is not None
                else bool(scan and scan.blocking_sites)
            )
            acquires = frozenset(
                site.lock for site in (scan.acquisitions if scan else [])
            )
            summaries[id(function)] = ConcurrencySummary(
                blocking=blocking, acquires=acquires, declared=declared
            )
    for _ in range(max_passes):
        changed = False
        for module in program.modules:
            for function in module.functions:
                scan = scans.get(id(function))
                if scan is None:
                    continue
                current = summaries[id(function)]
                blocking = current.blocking
                acquires = set(current.acquires)
                enclosing = function.qualname.rsplit(".", 1)
                enclosing_class = enclosing[0] if len(enclosing) == 2 else None
                for site in scan.calls:
                    callee = resolve_confident(
                        program, site.call, module, enclosing_class
                    )
                    if callee is None:
                        continue
                    callee_summary = summaries.get(id(callee))
                    if callee_summary is None:
                        continue
                    if callee_summary.blocking and current.declared is None:
                        blocking = True
                    acquires |= callee_summary.acquires
                updated = ConcurrencySummary(
                    blocking=blocking,
                    acquires=frozenset(acquires),
                    declared=current.declared,
                )
                if updated != current:
                    summaries[id(function)] = updated
                    changed = True
        if not changed:
            break
    return summaries


# ---------------------------------------------------------------------------
# Top-down guarantee: locks every resolved caller holds at the call site
# ---------------------------------------------------------------------------


def collect_inherited_locks(
    program: Program,
    scans: Dict[int, ConcurrencyScan],
    max_passes: int = 8,
) -> Dict[int, Optional[FrozenSet[str]]]:
    """The locks each function is *guaranteed* to run under.

    ``inherited(f)`` is the intersection, over every resolved call site
    of ``f``, of the locks held at the site plus the caller's own
    guarantee.  Functions with no resolved caller (entry points) have an
    empty guarantee.  ``None`` means *unconstrained* (the function is
    only reachable through cycles the iteration never grounded) — the
    caller must treat that optimistically and stay silent.
    """
    call_sites: List[Tuple[FunctionInfo, FunctionInfo, FrozenSet[str]]] = []
    for module in program.modules:
        for function in module.functions:
            scan = scans.get(id(function))
            if scan is None:
                continue
            enclosing = function.qualname.rsplit(".", 1)
            enclosing_class = enclosing[0] if len(enclosing) == 2 else None
            for site in scan.calls:
                callee = resolve_confident(
                    program, site.call, module, enclosing_class
                )
                if callee is not None:
                    call_sites.append((function, callee, site.held))
    incoming: Dict[int, int] = {}
    for _, callee, _ in call_sites:
        incoming[id(callee)] = incoming.get(id(callee), 0) + 1
    inherited: Dict[int, Optional[FrozenSet[str]]] = {}
    for module in program.modules:
        for function in module.functions:
            if incoming.get(id(function), 0) == 0:
                inherited[id(function)] = frozenset()
            else:
                inherited[id(function)] = None  # top: not yet constrained
    for _ in range(max_passes):
        changed = False
        meets: Dict[int, Optional[FrozenSet[str]]] = {}
        for caller, callee, held in call_sites:
            caller_guarantee = inherited.get(id(caller))
            if caller_guarantee is None:
                contribution: Optional[FrozenSet[str]] = None  # still top
            else:
                contribution = held | caller_guarantee
            key = id(callee)
            if key not in meets:
                meets[key] = contribution
            elif contribution is not None:
                current = meets[key]
                meets[key] = (
                    contribution if current is None else current & contribution
                )
        for key, value in meets.items():
            if value is not None and inherited.get(key) != value:
                previous = inherited.get(key)
                if previous is None or value < previous:
                    inherited[key] = value
                    changed = True
        if not changed:
            break
    return inherited


# ---------------------------------------------------------------------------
# Shared AST helpers (kept local: the layer must stay import-light)
# ---------------------------------------------------------------------------


def _terminal_call_name(node: ast.expr) -> Optional[str]:
    """The rightmost name of a call expression (``ctx.Pool`` -> ``Pool``)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _attribute_owner_name(node: ast.expr, module: ModuleInfo) -> Optional[str]:
    """Resolve the module an attribute call is made on, via import aliases."""
    if isinstance(node, ast.Name):
        return module.imports.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
