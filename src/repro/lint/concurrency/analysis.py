"""The ELS5xx concurrency-safety diagnostics.

The driver (:func:`analyze_modules`) mirrors the ELS3xx/ELS4xx layers:
parse directives, index every function with
:func:`repro.lint.dataflow.summaries.collect_program`, scan each body
once (:mod:`repro.lint.concurrency.summary`), iterate the blocking/lock
summaries to a fixpoint, then run one reporting pass:

========  ==========================================================
ELS500    malformed or misplaced concurrency directive
ELS501    mutation of ``guarded_by``-declared state without its lock
ELS502    inconsistent lock-acquisition order (potential deadlock)
ELS503    blocking call or deadline busy-wait inside ``async def``
ELS504    lock held across a blocking call or ``await``
ELS505    shared-memory segment not closed/unlinked on every path
ELS506    pool/executor without context manager or terminate+join
ELS507    fork-unsafe module-import state mutated in workers (warning)
========  ==========================================================

Like the other analysis layers the pass is *optimistic*: a report only
fires on a chain the scan actually proved (a declared guard, an
established lock-order edge, a resolved blocking callee), so an
unresolvable expression silences a rule rather than guessing.  The
ELS505/ELS506 lifecycle check walks the statement structure directly —
including ``try/finally`` — so a handle finalized in a ``finally`` block
is clean on *every* exit path, early ``return``s included.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, Severity
from ..dataflow.annotations import parse_directives
from ..dataflow.summaries import FunctionInfo, ModuleInfo, Program, collect_program
from ..effects.summary import provably_mutable
from .summary import (
    POOL_CONSTRUCTORS,
    resolve_confident,
    ConcurrencyScan,
    ConcurrencySummary,
    collect_concurrency_summaries,
    collect_inherited_locks,
    scan_function,
)

__all__ = ["CONCURRENCY_CODES", "analyze_modules", "analyze_source"]

#: Code -> (summary, severity) for every diagnostic this layer can emit.
CONCURRENCY_CODES: Dict[str, Tuple[str, Severity]] = {
    "ELS500": (
        "malformed or misplaced concurrency directive",
        Severity.ERROR,
    ),
    "ELS501": (
        "mutation of guarded shared state without the declared lock",
        Severity.ERROR,
    ),
    "ELS502": (
        "inconsistent lock-acquisition order (potential deadlock)",
        Severity.ERROR,
    ),
    "ELS503": (
        "blocking call or busy-wait inside an async function",
        Severity.ERROR,
    ),
    "ELS504": (
        "lock held across a blocking call or await",
        Severity.ERROR,
    ),
    "ELS505": (
        "shared-memory segment not closed/unlinked on every exit path",
        Severity.ERROR,
    ),
    "ELS506": (
        "pool/executor without context manager or terminate+join on all paths",
        Severity.ERROR,
    ),
    "ELS507": (
        "fork-unsafe module-import state mutated in a pool worker",
        Severity.WARNING,
    ),
}


def analyze_modules(
    modules: Sequence,
    max_passes: int = 8,
    summary_sink: Optional[Dict[str, Dict[str, Dict[str, object]]]] = None,
) -> List[Diagnostic]:
    """Run the concurrency analysis over parsed modules.

    ``modules`` is duck-typed (``path`` / ``source`` / ``tree`` /
    ``is_test_file`` — the engine's ``ModuleUnderLint`` fits).  Test
    files are skipped: they legitimately spin up throwaway pools and
    sleep in fixtures.

    When ``summary_sink`` is given, the fixpoint blocking/acquires
    summaries are recorded into it as
    ``sink[path][qualname]["concurrency"]`` (the
    :meth:`~repro.lint.concurrency.summary.ConcurrencySummary.to_dict`
    shape) — this is how the incremental lint cache persists per-module
    interprocedural summaries.
    """
    findings: List[Diagnostic] = []
    parsed = []
    directive_index = {}
    for module in modules:
        if module.is_test_file or module.tree is None:
            continue
        directives, malformed = parse_directives(module.source)
        directive_index[module.path] = (directives, malformed)
        parsed.append((module.path, module.tree, directives))
    if not parsed:
        return findings
    program = collect_program(parsed)
    global_names: Dict[str, FrozenSet[str]] = {}
    mutable_globals: Dict[str, Set[str]] = {}
    for minfo in program.modules:
        global_names[minfo.path] = _module_global_names(minfo.tree)
        mutable_globals[minfo.path] = _module_mutable_globals(minfo.tree)
    scans: Dict[int, ConcurrencyScan] = {}
    for minfo in program.modules:
        for function in minfo.functions:
            scans[id(function)] = scan_function(
                function, minfo, global_names[minfo.path]
            )
    summaries = collect_concurrency_summaries(program, scans, max_passes=max_passes)
    if summary_sink is not None:
        for minfo in program.modules:
            for function in minfo.functions:
                summary_sink.setdefault(minfo.path, {}).setdefault(
                    function.qualname, {}
                )["concurrency"] = summaries[id(function)].to_dict()
    inherited = collect_inherited_locks(program, scans, max_passes=max_passes)
    guards = _collect_guards(program, directive_index, scans, findings)
    for minfo in program.modules:
        for function in minfo.functions:
            scan = scans[id(function)]
            _report_guarded_mutations(minfo, function, scan, guards, inherited, findings)
            _report_async_blocking(program, minfo, function, scan, summaries, findings)
            _report_lock_across_blocking(
                program, minfo, function, scan, summaries, findings
            )
            _report_lifecycles(minfo, function, findings)
    _report_lock_order(program, scans, summaries, findings)
    _report_worker_mutations(program, scans, mutable_globals, findings)
    return findings


def analyze_source(source: str, path: str = "<memory>") -> List[Diagnostic]:
    """Convenience wrapper: analyze one in-memory module."""

    class _SourceModule:
        def __init__(self) -> None:
            self.path = path
            self.source = source
            self.is_test_file = False
            try:
                self.tree: Optional[ast.Module] = ast.parse(source)
            except SyntaxError:
                self.tree = None

    return analyze_modules([_SourceModule()])


# ---------------------------------------------------------------------------
# Module-level fact collection
# ---------------------------------------------------------------------------


def _module_global_names(tree: ast.Module) -> FrozenSet[str]:
    """Every module-level assigned name (shared-state root candidates)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return frozenset(names)


def _module_mutable_globals(tree: ast.Module) -> Set[str]:
    """Module-level names bound to provably mutable containers (ELS507)."""
    names: Set[str] = set()
    for node in tree.body:
        value = None
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if isinstance(target, ast.Name) and provably_mutable(value):
            names.add(target.id)
    return names


# ---------------------------------------------------------------------------
# ELS500 — directives; guard-declaration collection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Guard:
    """One ``guarded_by`` declaration resolved to its target."""

    #: ("class", class name) or ("module", module path).
    scope: Tuple[str, str]
    #: Attribute name (class scope) or global name (module scope).
    target: str
    #: Qualified lock name mutations must hold ("Cls._lock" or "_LOCK").
    lock: str


def _statement_lines(node: ast.stmt) -> range:
    end = getattr(node, "end_lineno", None) or node.lineno
    return range(node.lineno, end + 1)


def _collect_guards(
    program: Program,
    directive_index,
    scans: Dict[int, ConcurrencyScan],
    findings: List[Diagnostic],
) -> List[_Guard]:
    guards: List[_Guard] = []
    for minfo in program.modules:
        directives, malformed = directive_index[minfo.path]
        for bad in malformed:
            if bad.family != "concurrency":
                continue  # ELS300/ELS400 own the other families
            findings.append(
                _diag(minfo, bad, "ELS500",
                      f"malformed '# els:' directive: {bad.reason}")
            )
        assignment_targets = _assignment_targets_by_line(minfo)
        def_lines = {
            line
            for node in ast.walk(minfo.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            for line in (node.lineno,)
        }
        for directive in directives:
            if directive.kind == "blocking":
                if directive.line not in def_lines:
                    findings.append(
                        _line_diag(
                            minfo, directive.line, "ELS500",
                            "misplaced 'blocking=' directive: it must sit on "
                            "a 'def' line to pin that function's summary",
                        )
                    )
            elif directive.kind == "guarded_by":
                guard = _resolve_guard(
                    minfo, directive, assignment_targets, scans, findings
                )
                if guard is not None:
                    guards.append(guard)
    return guards


def _assignment_targets_by_line(
    minfo: ModuleInfo,
) -> Dict[int, Tuple[str, str, str]]:
    """Line -> (scope kind, scope name, target name) for guardable stores.

    Covers module-level ``NAME = ...``, class-body ``attr = ...``, and
    ``self.attr = ...`` inside any method of a top-level class.
    """
    targets: Dict[int, Tuple[str, str, str]] = {}

    def record(node: ast.stmt, scope: Tuple[str, str], name: str) -> None:
        for line in _statement_lines(node):
            targets.setdefault(line, (scope[0], scope[1], name))

    for node in minfo.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    record(node, ("module", minfo.path), target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            record(node, ("module", minfo.path), node.target.id)
        elif isinstance(node, ast.ClassDef):
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            record(statement, ("class", node.name), target.id)
                elif isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    record(statement, ("class", node.name), statement.target.id)
            for method in ast.walk(node):
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for inner in ast.walk(method):
                    if isinstance(inner, (ast.Assign, ast.AnnAssign)):
                        inner_targets = (
                            inner.targets
                            if isinstance(inner, ast.Assign)
                            else [inner.target]
                        )
                        for target in inner_targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                record(inner, ("class", node.name), target.attr)
    return targets


def _resolve_guard(
    minfo: ModuleInfo,
    directive,
    assignment_targets: Dict[int, Tuple[str, str, str]],
    scans: Dict[int, ConcurrencyScan],
    findings: List[Diagnostic],
) -> Optional[_Guard]:
    resolved = assignment_targets.get(directive.line)
    if resolved is None:
        findings.append(
            _line_diag(
                minfo, directive.line, "ELS500",
                "misplaced 'guarded_by=' directive: it must sit on an "
                "assignment to a self attribute or a module-level name",
            )
        )
        return None
    scope_kind, scope_name, target = resolved
    if scope_kind == "class":
        lock_exists = _class_defines_lock(minfo, scope_name, directive.lock, scans)
        qualified = f"{scope_name}.{directive.lock}"
    else:
        lock_exists = directive.lock in _module_global_names(minfo.tree)
        qualified = directive.lock
    if not lock_exists:
        findings.append(
            _line_diag(
                minfo, directive.line, "ELS500",
                f"'guarded_by={directive.lock}' names a lock that is never "
                f"assigned in this {'class' if scope_kind == 'class' else 'module'}",
            )
        )
        return None
    return _Guard(scope=(scope_kind, scope_name), target=target, lock=qualified)


def _class_defines_lock(
    minfo: ModuleInfo,
    class_name: str,
    lock: str,
    scans: Dict[int, ConcurrencyScan],
) -> bool:
    for function in minfo.functions:
        if not function.qualname.startswith(f"{class_name}."):
            continue
        scan = scans.get(id(function))
        if scan is not None and lock in scan.attr_stores:
            return True
    for node in minfo.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name) and target.id == lock:
                            return True
    return False


# ---------------------------------------------------------------------------
# ELS501 — guarded mutations
# ---------------------------------------------------------------------------


def _report_guarded_mutations(
    minfo: ModuleInfo,
    function: FunctionInfo,
    scan: ConcurrencyScan,
    guards: List[_Guard],
    inherited: Dict[int, Optional[FrozenSet[str]]],
    findings: List[Diagnostic],
) -> None:
    if not guards:
        return
    enclosing = function.qualname.rsplit(".", 1)
    enclosing_class = enclosing[0] if len(enclosing) == 2 else None
    guaranteed = inherited.get(id(function))
    for site in scan.mutations:
        kind, name = site.root
        for guard in guards:
            if kind == "selfattr":
                if guard.scope != ("class", enclosing_class):
                    continue
            elif guard.scope[0] != "module":
                continue
            if guard.target != name:
                continue
            if guard.lock in site.held:
                continue
            if guaranteed is None or guard.lock in guaranteed:
                # Unconstrained (cycle-only reachability) or provably
                # called under the lock at every resolved call site.
                continue
            what = f"self.{name}" if kind == "selfattr" else name
            findings.append(
                _node_diag(
                    minfo, site.node, "ELS501",
                    f"mutation ({site.op}) of '{what}', declared "
                    f"'guarded_by={guard.lock.rsplit('.', 1)[-1]}', without "
                    f"holding the lock",
                    hint="wrap the mutation in 'with <lock>:' or acquire the "
                    "declared lock on every caller path",
                )
            )
            break


# ---------------------------------------------------------------------------
# ELS502 — lock-order graph
# ---------------------------------------------------------------------------


def _report_lock_order(
    program: Program,
    scans: Dict[int, ConcurrencyScan],
    summaries: Dict[int, ConcurrencySummary],
    findings: List[Diagnostic],
) -> None:
    #: (held, acquired) -> earliest witness (path, line, col, message tail).
    edges: Dict[Tuple[str, str], Tuple[str, int, int, str]] = {}

    def witness(
        held: str, acquired: str, minfo: ModuleInfo, node: ast.AST, tail: str
    ) -> None:
        key = (held, acquired)
        site = (
            minfo.path,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            tail,
        )
        if key not in edges or site < edges[key]:
            edges[key] = site

    for minfo in program.modules:
        for function in minfo.functions:
            scan = scans[id(function)]
            enclosing = function.qualname.rsplit(".", 1)
            enclosing_class = enclosing[0] if len(enclosing) == 2 else None
            for acquisition in scan.acquisitions:
                for held in acquisition.held_before:
                    if held != acquisition.lock:
                        witness(
                            held,
                            acquisition.lock,
                            minfo,
                            acquisition.node,
                            f"in '{function.qualname}'",
                        )
            for site in scan.calls:
                if not site.held:
                    continue
                callee = resolve_confident(
                    program, site.call, minfo, enclosing_class
                )
                if callee is None:
                    continue
                for acquired in summaries[id(callee)].acquires:
                    for held in site.held:
                        if held != acquired:
                            witness(
                                held,
                                acquired,
                                minfo,
                                site.call,
                                f"via call to '{callee.qualname}' "
                                f"from '{function.qualname}'",
                            )
    adjacency: Dict[str, Set[str]] = {}
    for held, acquired in edges:
        adjacency.setdefault(held, set()).add(acquired)

    def reaches(start: str, goal: str) -> bool:
        stack, seen = [start], set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return False

    for (held, acquired), (path, line, col, tail) in sorted(edges.items()):
        if not reaches(acquired, held):
            continue
        findings.append(
            Diagnostic(
                code="ELS502",
                message=(
                    f"lock '{acquired}' acquired while holding '{held}' "
                    f"{tail}, but the reverse order also occurs; "
                    "inconsistent acquisition order can deadlock"
                ),
                severity=Severity.ERROR,
                file=path,
                line=line,
                col=col,
                hint="pick one global acquisition order and use it everywhere",
            )
        )


# ---------------------------------------------------------------------------
# ELS503 — blocking inside async def
# ---------------------------------------------------------------------------


def _report_async_blocking(
    program: Program,
    minfo: ModuleInfo,
    function: FunctionInfo,
    scan: ConcurrencyScan,
    summaries: Dict[int, ConcurrencySummary],
    findings: List[Diagnostic],
) -> None:
    if not scan.is_async:
        return
    for site in scan.blocking_sites:
        findings.append(
            _node_diag(
                minfo, site.node, "ELS503",
                f"blocking call {site.description} inside "
                f"'async def {function.name}' stalls the event loop",
                hint="use the asyncio equivalent or run_in_executor",
            )
        )
    for loop in scan.busy_waits:
        findings.append(
            _node_diag(
                minfo, loop, "ELS503",
                f"busy-wait loop polling a deadline inside "
                f"'async def {function.name}' never yields to the event "
                "loop",
                hint="await asyncio.sleep() inside the loop, or await the "
                "condition directly",
            )
        )
    enclosing = function.qualname.rsplit(".", 1)
    enclosing_class = enclosing[0] if len(enclosing) == 2 else None
    reported: Set[int] = {id(site.node) for site in scan.blocking_sites}
    for site in scan.calls:
        if id(site.call) in reported:
            continue
        callee = resolve_confident(program, site.call, minfo, enclosing_class)
        if callee is None or isinstance(callee.node, ast.AsyncFunctionDef):
            continue  # async callees are flagged on their own bodies
        if summaries[id(callee)].blocking:
            findings.append(
                _node_diag(
                    minfo, site.call, "ELS503",
                    f"call to '{callee.qualname}', which (transitively) "
                    f"blocks, inside 'async def {function.name}'",
                    hint="make the helper non-blocking, pin it with "
                    "'# els: blocking=no', or run_in_executor",
                )
            )


# ---------------------------------------------------------------------------
# ELS504 — lock held across blocking / await
# ---------------------------------------------------------------------------


def _report_lock_across_blocking(
    program: Program,
    minfo: ModuleInfo,
    function: FunctionInfo,
    scan: ConcurrencyScan,
    summaries: Dict[int, ConcurrencySummary],
    findings: List[Diagnostic],
) -> None:
    for site in scan.blocking_sites:
        if site.held:
            lock = sorted(site.held)[0]
            findings.append(
                _node_diag(
                    minfo, site.node, "ELS504",
                    f"blocking call {site.description} while holding lock "
                    f"'{lock}' serializes every waiter",
                    hint="move the blocking work outside the critical section",
                )
            )
    for await_site in scan.await_sites:
        if await_site.held:
            lock = sorted(await_site.held)[0]
            findings.append(
                _node_diag(
                    minfo, await_site.node, "ELS504",
                    f"'await' while holding synchronous lock '{lock}'; the "
                    "lock blocks other event-loop tasks for the whole "
                    "suspension",
                    hint="use asyncio.Lock under 'async with', or release "
                    "before awaiting",
                )
            )
    enclosing = function.qualname.rsplit(".", 1)
    enclosing_class = enclosing[0] if len(enclosing) == 2 else None
    reported: Set[int] = {id(site.node) for site in scan.blocking_sites}
    for site in scan.calls:
        if not site.held or id(site.call) in reported:
            continue
        callee = resolve_confident(program, site.call, minfo, enclosing_class)
        if callee is None:
            continue
        if summaries[id(callee)].blocking:
            lock = sorted(site.held)[0]
            findings.append(
                _node_diag(
                    minfo, site.call, "ELS504",
                    f"call to '{callee.qualname}', which (transitively) "
                    f"blocks, while holding lock '{lock}'",
                    hint="move the blocking call outside the critical "
                    "section or pin the helper '# els: blocking=no'",
                )
            )


# ---------------------------------------------------------------------------
# ELS505 / ELS506 — handle lifecycles on every exit path
# ---------------------------------------------------------------------------

#: Finalizer method names the lifecycle walker records.
_FINALIZER_OPS = frozenset({"close", "terminate", "join", "unlink", "shutdown"})

_EXECUTOR_CONSTRUCTORS = frozenset({"ProcessPoolExecutor", "ThreadPoolExecutor"})


@dataclass
class _Handle:
    name: str
    code: str  # "ELS505" or "ELS506"
    label: str
    node: ast.AST
    #: Required op groups: each group needs at least one performed op.
    groups: Tuple[FrozenSet[str], ...]
    escaped: bool = False
    missing: Set[str] = field(default_factory=set)


def _handle_for(name: str, value: ast.expr, node: ast.AST) -> Optional[_Handle]:
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    ctor = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if ctor == "SharedMemory":
        creates = any(
            keyword.arg == "create"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in value.keywords
        )
        groups: Tuple[FrozenSet[str], ...] = (frozenset({"close"}),)
        if creates:
            groups = groups + (frozenset({"unlink"}),)
        label = "created" if creates else "attached"
        return _Handle(name, "ELS505", f"shared-memory segment ({label})", value, groups)
    if ctor in POOL_CONSTRUCTORS and ctor not in _EXECUTOR_CONSTRUCTORS:
        return _Handle(
            name, "ELS506", "worker pool", value,
            (frozenset({"close", "terminate"}), frozenset({"join"})),
        )
    if ctor in _EXECUTOR_CONSTRUCTORS:
        return _Handle(
            name, "ELS506", "executor", value, (frozenset({"shutdown"}),)
        )
    return None


class _LifecycleWalker:
    """Structural all-paths check for handle finalization.

    Tracks, per created handle, the finalizer ops *definitely* performed
    before each exit (``return``, ``raise``, falling off the end).  An
    ``if`` merge keeps only ops both branches performed; a ``finally``
    block's ops count on every exit inside its ``try``.  Handles that
    escape (returned, stored on ``self``, passed to another call) change
    owners and are exempt — the optimistic default.
    """

    def __init__(self) -> None:
        self.handles: List[_Handle] = []
        self.live: Dict[str, _Handle] = {}
        self.ops: Dict[int, Set[str]] = {}
        self.finally_stack: List[Dict[str, Set[str]]] = []

    def run(self, body: Sequence[ast.stmt]) -> List[_Handle]:
        terminated = self._visit_block(body)
        if not terminated:
            self._check_exit()
        return [h for h in self.handles if h.missing and not h.escaped]

    # -- exits ---------------------------------------------------------------

    def _pending_finally_ops(self, name: str) -> Set[str]:
        ops: Set[str] = set()
        for frame in self.finally_stack:
            ops |= frame.get(name, set())
        return ops

    def _check_exit(self) -> None:
        for handle in self.live.values():
            effective = self.ops[id(handle)] | self._pending_finally_ops(handle.name)
            for group in handle.groups:
                if not (group & effective):
                    handle.missing.add("/".join(sorted(group)))

    # -- statement dispatch --------------------------------------------------

    def _visit_block(self, statements: Sequence[ast.stmt]) -> bool:
        for statement in statements:
            if self._visit_statement(statement):
                return True
        return False

    def _visit_statement(self, statement: ast.stmt) -> bool:
        self._note_escapes(statement)
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            if isinstance(target, ast.Name):
                self._bind(target.id, statement.value)
            return False
        if isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name) and statement.value is not None:
                self._bind(statement.target.id, statement.value)
            return False
        if isinstance(statement, ast.Expr):
            self._note_finalizer(statement.value)
            return False
        if isinstance(statement, (ast.Return, ast.Raise)):
            self._check_exit()
            return True
        if isinstance(statement, ast.If):
            return self._visit_branches([statement.body, statement.orelse])
        if isinstance(statement, (ast.For, ast.AsyncFor, ast.While)):
            # Optimistic: ops inside the body count (the loop that creates
            # a handle also runs the statements finalizing it).
            self._visit_block(statement.body)
            self._visit_block(statement.orelse)
            return False
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if isinstance(item.optional_vars, ast.Name):
                    # Context-managed: the with owns the lifecycle.
                    self.live.pop(item.optional_vars.id, None)
            return self._visit_block(statement.body)
        if isinstance(statement, ast.Try):
            frame: Dict[str, Set[str]] = {}
            for node in ast.walk(ast.Module(body=list(statement.finalbody), type_ignores=[])):
                if isinstance(node, ast.Call):
                    self._collect_finalizer(node, frame)
            self.finally_stack.append(frame)
            body_terminated = self._visit_block(statement.body)
            handlers_terminated = bool(statement.handlers)
            for handler in statement.handlers:
                if not self._visit_block(handler.body):
                    handlers_terminated = False
            self._visit_block(statement.orelse)
            self.finally_stack.pop()
            finally_terminated = self._visit_block(statement.finalbody)
            return finally_terminated or (body_terminated and handlers_terminated)
        return False

    def _visit_branches(self, branches: Sequence[Sequence[ast.stmt]]) -> bool:
        snapshot = {key: set(value) for key, value in self.ops.items()}
        deltas: List[Optional[Dict[int, Set[str]]]] = []
        for branch in branches:
            terminated = self._visit_block(branch)
            if terminated:
                deltas.append(None)  # ended paths do not constrain the merge
            else:
                deltas.append(
                    {
                        key: self.ops[key] - snapshot.get(key, set())
                        for key in self.ops
                    }
                )
            for key in list(self.ops):
                if key in snapshot:
                    self.ops[key] = set(snapshot[key])
                # Branch-created handles keep their recorded ops: they only
                # exist on paths through that branch.
        surviving = [delta for delta in deltas if delta is not None]
        if not surviving:
            return True
        for key in snapshot:
            merged = surviving[0].get(key, set())
            for delta in surviving[1:]:
                merged = merged & delta.get(key, set())
            self.ops[key] = snapshot[key] | merged
        return False

    # -- handle bookkeeping --------------------------------------------------

    def _bind(self, name: str, value: ast.expr) -> None:
        previous = self.live.pop(name, None)
        if previous is not None:
            # Rebinding the only reference before finalizing leaks it.
            effective = self.ops[id(previous)] | self._pending_finally_ops(name)
            for group in previous.groups:
                if not (group & effective):
                    previous.missing.add("/".join(sorted(group)))
        handle = _handle_for(name, value, value)
        if handle is not None:
            self.handles.append(handle)
            self.live[name] = handle
            self.ops[id(handle)] = set()
        elif isinstance(value, ast.Name) and value.id in self.live:
            # Aliased away: ownership is ambiguous, stay silent.
            self.live.pop(value.id).escaped = True

    def _note_finalizer(self, node: ast.expr) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _FINALIZER_OPS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.live
        ):
            self.ops[id(self.live[func.value.id])].add(func.attr)

    def _collect_finalizer(self, call: ast.Call, frame: Dict[str, Set[str]]) -> None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _FINALIZER_OPS
            and isinstance(func.value, ast.Name)
        ):
            frame.setdefault(func.value.id, set()).add(func.attr)

    def _note_escapes(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Return) and isinstance(
            statement.value, ast.Name
        ):
            handle = self.live.get(statement.value.id)
            if handle is not None:
                handle.escaped = True
            return
        if isinstance(statement, ast.Assign):
            if isinstance(statement.value, ast.Name):
                target = statement.targets[0] if statement.targets else None
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    handle = self.live.get(statement.value.id)
                    if handle is not None:
                        handle.escaped = True
            return
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call):
            for argument in statement.value.args:
                if isinstance(argument, ast.Name):
                    handle = self.live.get(argument.id)
                    if handle is not None:
                        handle.escaped = True


def _report_lifecycles(
    minfo: ModuleInfo, function: FunctionInfo, findings: List[Diagnostic]
) -> None:
    walker = _LifecycleWalker()
    leaked = walker.run(getattr(function.node, "body", []))
    for handle in leaked:
        missing = ", ".join(sorted(handle.missing))
        if handle.code == "ELS505":
            message = (
                f"{handle.label} '{handle.name}' is not finalized on every "
                f"exit path of '{function.qualname}' (missing: {missing})"
            )
            hint = "close() (and unlink() for the creator) in a finally block"
        else:
            message = (
                f"{handle.label} '{handle.name}' is not shut down on every "
                f"exit path of '{function.qualname}' (missing: {missing})"
            )
            hint = (
                "use a 'with' block, or terminate()+join() (shutdown() for "
                "executors) in a finally block"
            )
        findings.append(
            _node_diag(minfo, handle.node, handle.code, message, hint=hint)
        )


# ---------------------------------------------------------------------------
# ELS507 — fork-unsafe import state mutated in workers
# ---------------------------------------------------------------------------


def _report_worker_mutations(
    program: Program,
    scans: Dict[int, ConcurrencyScan],
    mutable_globals: Dict[str, Set[str]],
    findings: List[Diagnostic],
) -> None:
    workers: List[FunctionInfo] = []
    for minfo in program.modules:
        for function in minfo.functions:
            enclosing = function.qualname.rsplit(".", 1)
            enclosing_class = enclosing[0] if len(enclosing) == 2 else None
            for shipped in scans[id(function)].shipments:
                if isinstance(shipped, ast.Name):
                    target = program.resolve_call(
                        ast.Call(func=shipped, args=[], keywords=[]),
                        minfo,
                        enclosing_class,
                    )
                    if target is not None:
                        workers.append(target)
    if not workers:
        return
    reachable: Dict[int, Tuple[FunctionInfo, str]] = {}
    frontier = [(worker, worker.qualname) for worker in workers]
    while frontier:
        function, entry = frontier.pop()
        if id(function) in reachable:
            continue
        reachable[id(function)] = (function, entry)
        minfo = function.module
        enclosing = function.qualname.rsplit(".", 1)
        enclosing_class = enclosing[0] if len(enclosing) == 2 else None
        for site in scans[id(function)].calls:
            callee = resolve_confident(
                program, site.call, minfo, enclosing_class
            )
            if callee is not None and id(callee) not in reachable:
                frontier.append((callee, entry))
    seen: Set[Tuple[str, int, int]] = set()
    for function, entry in reachable.values():
        minfo = function.module
        module_mutables = mutable_globals.get(minfo.path, set())
        for site in scans[id(function)].mutations:
            kind, name = site.root
            if kind != "global" or name not in module_mutables:
                continue
            line = getattr(site.node, "lineno", function.node.lineno)
            col = getattr(site.node, "col_offset", 0)
            key = (minfo.path, line, col)
            if key in seen:
                continue
            seen.add(key)
            suffix = (
                "" if entry == function.qualname
                else f" (reachable from worker '{entry}')"
            )
            findings.append(
                Diagnostic(
                    code="ELS507",
                    message=(
                        f"pool worker mutates module-import state '{name}'"
                        f"{suffix}; each forked worker mutates its own copy, "
                        "and spawn re-imports, so the update never reaches "
                        "the parent"
                    ),
                    severity=Severity.WARNING,
                    file=minfo.path,
                    line=line,
                    col=col,
                    hint="return the data from the worker instead of "
                    "mutating a global",
                )
            )


# ---------------------------------------------------------------------------
# Diagnostic helpers
# ---------------------------------------------------------------------------


def _diag(minfo: ModuleInfo, bad, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        code=code,
        message=message,
        severity=CONCURRENCY_CODES[code][1],
        file=minfo.path,
        line=bad.line,
        col=bad.col,
    )


def _line_diag(minfo: ModuleInfo, line: int, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        code=code,
        message=message,
        severity=CONCURRENCY_CODES[code][1],
        file=minfo.path,
        line=line,
        col=0,
    )


def _node_diag(
    minfo: ModuleInfo,
    node: ast.AST,
    code: str,
    message: str,
    hint: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        message=message,
        severity=CONCURRENCY_CODES[code][1],
        file=minfo.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        hint=hint,
    )
