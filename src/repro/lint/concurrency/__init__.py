"""Layer 5 — the ELS5xx concurrency-safety lint.

Static lock-discipline, async-blocking, and resource-lifecycle analysis
over the same program index the ELS3xx/ELS4xx layers use.  Entry points:

* :func:`analyze_modules` — the engine-facing driver over parsed modules.
* :func:`analyze_source` — one in-memory module (tests, tools).
* :data:`CONCURRENCY_CODES` — code -> (summary, severity) catalog.

See :mod:`repro.lint.concurrency.analysis` for the rule catalog and
:mod:`repro.lint.concurrency.summary` for the per-function scan and the
interprocedural blocking/held-lock fixpoints.
"""

from .analysis import CONCURRENCY_CODES, analyze_modules, analyze_source
from .summary import (
    AcquisitionSite,
    AwaitSite,
    BlockingSite,
    CallSite,
    ConcurrencyScan,
    ConcurrencySummary,
    SharedMutation,
    collect_concurrency_summaries,
    collect_inherited_locks,
    is_lock_name,
    scan_function,
)

__all__ = [
    "AcquisitionSite",
    "AwaitSite",
    "BlockingSite",
    "CONCURRENCY_CODES",
    "CallSite",
    "ConcurrencyScan",
    "ConcurrencySummary",
    "SharedMutation",
    "analyze_modules",
    "analyze_source",
    "collect_concurrency_summaries",
    "collect_inherited_locks",
    "is_lock_name",
    "scan_function",
]
