"""In-memory row-store table.

Rows are plain tuples laid out in schema order.  The executor scans tables
through :meth:`Table.scan`; the statistics collector reads whole columns via
:meth:`Table.column_values`.  Data is append-only, which is all the paper's
workloads need — there is no update/delete path to complicate statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple, Union

from ..catalog.schema import ColumnType, TableSchema
from ..errors import StorageError

__all__ = ["Row", "Table"]

Scalar = Union[int, float, str]
Row = Tuple[Scalar, ...]


class Table:
    """An append-only, schema-validated in-memory table."""

    def __init__(self, schema: TableSchema) -> None:
        self._schema = schema
        self._rows: List[Row] = []

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def append(self, row: Union[Row, Sequence[Scalar], Mapping[str, Scalar]]) -> None:
        """Append one row, given as a tuple in schema order or as a mapping.

        Raises:
            StorageError: on arity or type mismatch with the schema.
        """
        if isinstance(row, Mapping):
            try:
                row = tuple(row[name] for name in self._schema.column_names)
            except KeyError as exc:
                raise StorageError(
                    f"row is missing column {exc.args[0]!r} for table {self.name!r}"
                ) from None
        else:
            row = tuple(row)
        self._validate(row)
        self._rows.append(row)

    def extend(
        self, rows: Iterable[Union[Row, Sequence[Scalar]]], validate: bool = True
    ) -> None:
        """Bulk-append rows; ``validate=False`` skips per-row type checks.

        Bulk loading synthetic workloads with millions of values is the hot
        path of the benchmark harness, hence the opt-out.
        """
        if validate:
            for row in rows:
                self.append(row)
        else:
            self._rows.extend(tuple(row) for row in rows)

    @classmethod
    def from_columns(
        cls, schema: TableSchema, columns: Mapping[str, Sequence[Scalar]]
    ) -> "Table":
        """Build a table from parallel column value sequences.

        Raises:
            StorageError: when a schema column is missing or lengths differ.
        """
        missing = [c for c in schema.column_names if c not in columns]
        if missing:
            raise StorageError(f"missing column data for {missing} in {schema.name!r}")
        lengths = {name: len(columns[name]) for name in schema.column_names}
        if len(set(lengths.values())) > 1:
            raise StorageError(f"column lengths differ in {schema.name!r}: {lengths}")
        table = cls(schema)
        ordered = [columns[name] for name in schema.column_names]
        count = lengths[schema.column_names[0]]
        table._rows = list(zip(*ordered)) if count else []
        return table

    def scan(self) -> Iterator[Row]:
        """Iterate over all rows in insertion order."""
        return iter(self._rows)

    def rows(self) -> List[Row]:
        """A copy of all rows (callers may mutate the list freely)."""
        return list(self._rows)

    def column_values(self, column: str) -> List[Scalar]:
        """All values of one column, in row order (duplicates preserved)."""
        index = self._schema.index_of(column)
        return [row[index] for row in self._rows]

    def distinct_count(self, column: str) -> int:
        """Exact number of distinct values in a column."""
        index = self._schema.index_of(column)
        return len({row[index] for row in self._rows})

    def _validate(self, row: Row) -> None:
        if len(row) != len(self._schema.columns):
            raise StorageError(
                f"row arity {len(row)} does not match table {self.name!r} "
                f"with {len(self._schema.columns)} columns"
            )
        for value, column in zip(row, self._schema.columns):
            if not column.type.validate(value):
                raise StorageError(
                    f"value {value!r} is not a valid {column.type.value} for "
                    f"column {self.name}.{column.name}"
                )

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self._rows)})"
