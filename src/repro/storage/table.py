"""In-memory row-store table.

Rows are plain tuples laid out in schema order.  The executor scans tables
through :meth:`Table.scan`; the statistics collector reads whole columns via
:meth:`Table.column_values`.  Data is append-only, which is all the paper's
workloads need — there is no update/delete path to complicate statistics.

Append-only storage buys two cheap invariants the execution layer leans on:
the row count alone identifies a table's content state, so both the
columnar transpose (:meth:`Table.columns`) and the content digest
(:meth:`Table.content_digest`) can be cached and invalidated by comparing
``row_count`` against the count they were computed at.
"""

from __future__ import annotations

import hashlib
from types import MappingProxyType
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..catalog.schema import ColumnType, TableSchema
from ..errors import StorageError

__all__ = ["Row", "Table"]

Scalar = Union[int, float, str]
Row = Tuple[Scalar, ...]


class Table:
    """An append-only, schema-validated in-memory table."""

    def __init__(self, schema: TableSchema) -> None:
        self._schema = schema
        self._rows: List[Row] = []
        # Caches invalidated by row-count comparison (append-only storage).
        self._columns_cache: Optional[Tuple[int, Tuple[Tuple[Scalar, ...], ...]]] = None
        self._digest_cache: Optional[Tuple[int, str]] = None
        self._value_index_cache: Dict[str, Tuple[int, Mapping[Scalar, Tuple[int, ...]]]] = {}

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def append(self, row: Union[Row, Sequence[Scalar], Mapping[str, Scalar]]) -> None:
        """Append one row, given as a tuple in schema order or as a mapping.

        Raises:
            StorageError: on arity or type mismatch with the schema.
        """
        if isinstance(row, Mapping):
            try:
                row = tuple(row[name] for name in self._schema.column_names)
            except KeyError as exc:
                raise StorageError(
                    f"row is missing column {exc.args[0]!r} for table {self.name!r}"
                ) from None
        else:
            row = tuple(row)
        self._validate(row)
        self._rows.append(row)

    def extend(
        self, rows: Iterable[Union[Row, Sequence[Scalar]]], validate: bool = True
    ) -> None:
        """Bulk-append rows; ``validate=False`` skips per-row type checks.

        Bulk loading synthetic workloads with millions of values is the hot
        path of the benchmark harness, hence the opt-out.
        """
        if validate:
            for row in rows:
                self.append(row)
        else:
            self._rows.extend(tuple(row) for row in rows)

    @classmethod
    def from_columns(
        cls, schema: TableSchema, columns: Mapping[str, Sequence[Scalar]]
    ) -> "Table":
        """Build a table from parallel column value sequences.

        Raises:
            StorageError: when a schema column is missing or lengths differ.
        """
        missing = [c for c in schema.column_names if c not in columns]
        if missing:
            raise StorageError(f"missing column data for {missing} in {schema.name!r}")
        lengths = {name: len(columns[name]) for name in schema.column_names}
        if len(set(lengths.values())) > 1:
            raise StorageError(f"column lengths differ in {schema.name!r}: {lengths}")
        table = cls(schema)
        ordered = [columns[name] for name in schema.column_names]
        count = lengths[schema.column_names[0]]
        table._rows = list(zip(*ordered)) if count else []
        return table

    def scan(self) -> Iterator[Row]:
        """Iterate over all rows in insertion order."""
        return iter(self._rows)

    def rows(self) -> List[Row]:
        """A copy of all rows (callers may mutate the list freely)."""
        return list(self._rows)

    def columns(self) -> Tuple[Tuple[Scalar, ...], ...]:
        """All columns as parallel value tuples, in schema order.

        The transpose is computed once and cached; because storage is
        append-only, the cache is valid exactly while ``row_count`` is
        unchanged.  The columns are frozen to tuples so the cached
        transpose cannot be corrupted through the returned reference.
        """
        cached = self._columns_cache
        if cached is not None and cached[0] == len(self._rows):
            return cached[1]
        if self._rows:
            transposed = tuple(tuple(col) for col in zip(*self._rows))
        else:
            transposed = tuple(() for _ in self._schema.column_names)
        self._columns_cache = (len(self._rows), transposed)
        return transposed

    def content_digest(self) -> str:
        """A stable hex digest of the table's schema and row contents.

        Used as the table's part of a :meth:`Database.fingerprint
        <repro.storage.database.Database.fingerprint>` for ground-truth
        caching.  Cached per row count (valid under append-only storage);
        equal digests imply equal name, column names/types, and row
        sequences.
        """
        cached = self._digest_cache
        if cached is not None and cached[0] == len(self._rows):
            return cached[1]
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(self.name.encode())
        for column in self._schema.columns:
            hasher.update(f"|{column.name}:{column.type.value}".encode())
        for row in self._rows:
            hasher.update(repr(row).encode())
        digest = hasher.hexdigest()
        self._digest_cache = (len(self._rows), digest)
        return digest

    def value_index(self, column: str) -> Mapping[Scalar, Tuple[int, ...]]:
        """A hash index over one column: value -> row indices, in row order.

        Built lazily on first use and cached per row count (valid under
        append-only storage), so repeated selective probes — the parallel
        engine's index-join path — cost one dict lookup per distinct build
        key instead of one per stored row.  The index is returned as a
        read-only mapping with tuple values, so callers cannot corrupt the
        cached copy shared by later calls.

        Raises:
            StorageError: if the column is not in the schema.
        """
        cached = self._value_index_cache.get(column)
        if cached is not None and cached[0] == len(self._rows):
            return cached[1]
        position = self._schema.index_of(column)
        buckets: Dict[Scalar, List[int]] = {}
        setdefault = buckets.setdefault
        for index, row in enumerate(self._rows):
            setdefault(row[position], []).append(index)
        frozen: Mapping[Scalar, Tuple[int, ...]] = MappingProxyType(
            {value: tuple(indices) for value, indices in buckets.items()}
        )
        self._value_index_cache[column] = (len(self._rows), frozen)
        return frozen

    def column_values(self, column: str) -> List[Scalar]:
        """All values of one column, in row order (duplicates preserved)."""
        index = self._schema.index_of(column)
        return [row[index] for row in self._rows]

    def distinct_count(self, column: str) -> int:
        """Exact number of distinct values in a column."""
        index = self._schema.index_of(column)
        return len({row[index] for row in self._rows})

    def _validate(self, row: Row) -> None:
        if len(row) != len(self._schema.columns):
            raise StorageError(
                f"row arity {len(row)} does not match table {self.name!r} "
                f"with {len(self._schema.columns)} columns"
            )
        for value, column in zip(row, self._schema.columns):
            if not column.type.validate(value):
                raise StorageError(
                    f"value {value!r} is not a valid {column.type.value} for "
                    f"column {self.name}.{column.name}"
                )

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self._rows)})"
