"""Bulk loading from CSV files and catalog statistics from JSON.

Two adoption paths a downstream user needs:

* :func:`load_csv` — bring real data into the storage engine (header row
  names the columns; value types are inferred per column as INT, FLOAT,
  or STR), then ``database.analyze()`` gives the optimizer statistics.
* :func:`load_stats_json` / :func:`dump_stats_json` — exchange *just the
  statistics* (the paper's examples are all stated this way: table
  cardinalities and column cardinalities, no data).  The JSON shape is
  ``{"R1": {"rows": 100, "columns": {"x": 10}}, ...}``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..catalog.schema import ColumnDef, ColumnType, TableSchema
from ..catalog.statistics import Catalog, TableStats
from ..errors import StorageError
from .database import Database
from .table import Table

__all__ = ["infer_column_type", "load_csv", "load_stats_json", "dump_stats_json"]

PathLike = Union[str, Path]


def infer_column_type(values: Sequence[str]) -> ColumnType:
    """Infer INT / FLOAT / STR from string cells (empty column -> STR)."""
    saw_float = False
    saw_any = False
    for cell in values:
        if cell == "":
            continue
        saw_any = True
        try:
            int(cell)
            continue
        except ValueError:
            pass
        try:
            float(cell)
            saw_float = True
        except ValueError:
            return ColumnType.STR
    if not saw_any:
        return ColumnType.STR
    return ColumnType.FLOAT if saw_float else ColumnType.INT


def _convert(cell: str, column_type: ColumnType):
    if column_type is ColumnType.INT:
        return int(cell)
    if column_type is ColumnType.FLOAT:
        return float(cell)
    return cell


def load_csv(
    database: Database,
    table_name: str,
    path: PathLike,
    delimiter: str = ",",
) -> Table:
    """Load a headered CSV file as a new table.

    Args:
        database: Target database (the table name must be free).
        table_name: Name for the new table.
        path: CSV file path; the first row is the header.
        delimiter: Field separator.

    Raises:
        StorageError: on a missing/empty file, ragged rows, or cells that
            do not match the inferred column type.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise StorageError(f"CSV file {file_path} does not exist")
    with open(file_path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"CSV file {file_path} is empty") from None
        raw_rows: List[List[str]] = []
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise StorageError(
                    f"{file_path}:{line_number}: expected {len(header)} fields, "
                    f"got {len(row)}"
                )
            raw_rows.append(row)

    column_types = [
        infer_column_type([row[i] for row in raw_rows]) for i in range(len(header))
    ]
    schema = TableSchema(
        table_name,
        tuple(ColumnDef(name, ctype) for name, ctype in zip(header, column_types)),
    )
    try:
        rows = [
            tuple(_convert(cell, ctype) for cell, ctype in zip(row, column_types))
            for row in raw_rows
        ]
    except ValueError as exc:
        raise StorageError(f"type conversion failed loading {file_path}: {exc}") from exc
    return database.load_rows(schema, rows, validate=False)


def load_stats_json(path: PathLike) -> Catalog:
    """Build a catalog from a statistics-only JSON file.

    Shape: ``{"R1": {"rows": 100, "columns": {"x": 10, "a": 100}}, ...}``
    — exactly the information the paper's examples state.

    Raises:
        StorageError: on a malformed document.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise StorageError(f"statistics file {file_path} does not exist")
    with open(file_path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise StorageError(f"invalid JSON in {file_path}: {exc}") from exc
    if not isinstance(document, dict):
        raise StorageError(f"{file_path}: top level must be an object")
    entries: Dict[str, tuple] = {}
    for table, spec in document.items():
        if not isinstance(spec, dict) or "rows" not in spec or "columns" not in spec:
            raise StorageError(
                f"{file_path}: table {table!r} needs 'rows' and 'columns'"
            )
        columns = spec["columns"]
        if not isinstance(columns, dict) or not columns:
            raise StorageError(f"{file_path}: table {table!r} has no columns")
        entries[table] = (int(spec["rows"]), {c: int(d) for c, d in columns.items()})
    return Catalog.from_stats(entries)


def dump_stats_json(catalog: Catalog, path: PathLike) -> None:
    """Write a catalog's cardinalities back out in the JSON stats shape.

    Histograms and MCVs are not serialized — the format deliberately
    carries only what the paper's estimation examples need.
    """
    document = {}
    for table in catalog.tables():
        stats = catalog.stats(table)
        document[table] = {
            "rows": stats.row_count,
            "columns": {name: cs.distinct for name, cs in sorted(stats.columns.items())},
        }
    with open(Path(path), "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
