"""In-memory storage engine: append-only row tables and the database handle."""

from .database import Database
from .loader import dump_stats_json, infer_column_type, load_csv, load_stats_json
from .table import Row, Table

__all__ = [
    "Database",
    "Row",
    "Table",
    "dump_stats_json",
    "infer_column_type",
    "load_csv",
    "load_stats_json",
]
