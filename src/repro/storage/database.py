"""A named collection of tables with an attached statistics catalog.

:class:`Database` is the top-level substrate object: workload generators
load tables into it, ``analyze`` populates the catalog, the optimizer reads
the catalog, and the executor reads the tables.  Keeping both sides behind
one handle makes the benchmark harnesses short without coupling estimation
to execution.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..catalog.collector import HistogramKind, collect_table_stats
from ..catalog.schema import TableSchema
from ..catalog.statistics import Catalog, TableStats
from ..errors import StorageError
from .table import Row, Table

__all__ = ["Database"]

Scalar = Union[int, float, str]


class Database:
    """In-memory database: named tables plus their statistics catalog."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._catalog = Catalog()

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def table_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def create_table(self, schema: TableSchema) -> Table:
        """Create an empty table.

        Raises:
            StorageError: if the name is already taken.
        """
        if schema.name in self._tables:
            raise StorageError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise StorageError(f"cannot drop unknown table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise StorageError(f"unknown table {name!r}")
        return self._tables[name]

    def load_columns(
        self, schema: TableSchema, columns: Mapping[str, Sequence[Scalar]]
    ) -> Table:
        """Create and bulk-load a table from parallel column sequences."""
        if schema.name in self._tables:
            raise StorageError(f"table {schema.name!r} already exists")
        table = Table.from_columns(schema, columns)
        self._tables[schema.name] = table
        return table

    def load_rows(
        self, schema: TableSchema, rows: Iterable[Row], validate: bool = True
    ) -> Table:
        """Create and bulk-load a table from row tuples."""
        table = self.create_table(schema)
        table.extend(rows, validate=validate)
        return table

    def analyze(
        self,
        name: Optional[str] = None,
        histogram: HistogramKind = HistogramKind.EQUI_DEPTH,
        buckets: int = 10,
        mcv_k: int = 0,
        sample_fraction: float = 1.0,
        seed: int = 0,
    ) -> None:
        """Collect statistics into the catalog (one table, or all of them).

        Mirrors an ANALYZE utility run: until this is called, the optimizer
        has no statistics and estimation will fail loudly rather than
        guess.  ``sample_fraction < 1`` collects from a uniform row sample
        with Haas-Stokes distinct estimation (the way production ANALYZE
        works); row counts remain exact.
        """
        names = [name] if name is not None else list(self._tables)
        for table_name in names:
            table = self.table(table_name)
            if sample_fraction >= 1.0:
                stats = collect_table_stats(table, histogram, buckets, mcv_k)
            else:
                from ..catalog.sampling import sample_table_stats

                stats = sample_table_stats(
                    table, sample_fraction, histogram, buckets, mcv_k, seed
                )
            self._catalog.register(table.schema, stats)

    def set_stats(self, name: str, stats: TableStats) -> None:
        """Install externally supplied statistics (e.g. the paper's numbers).

        Used by experiments that want the optimizer to see exactly the
        statistics printed in the paper, independent of the loaded data.
        """
        table = self.table(name)
        self._catalog.register(table.schema, stats)

    def true_count(self, name: str) -> int:
        """Ground-truth row count straight from storage (not the catalog)."""
        return self.table(name).row_count

    def fingerprint(self) -> str:
        """A stable hex digest of the database's full content.

        Combines every table's :meth:`~repro.storage.table.Table.content_digest`
        (which covers name, schema, and row data) in name order.  Two
        databases with the same fingerprint hold identical data, so the
        fingerprint is a sound cache key for executed ground truths
        (:mod:`repro.analysis.truthcache`).  Per-table digests are cached
        against the append-only row counts, so repeated calls are cheap.
        """
        hasher = hashlib.blake2b(digest_size=16)
        for name in self.table_names():
            hasher.update(self._tables[name].content_digest().encode())
        return hasher.hexdigest()
