"""Cooperative deadlines for bounded-latency ground-truth execution.

A :class:`Deadline` is a wall-clock budget that long-running loops check
*cooperatively*: the executors call :meth:`Deadline.tick` once per row (or
block) processed, and the tick only consults the clock every
``tick_interval`` rows, so the fast path costs one integer add and one
comparison.  When the budget is spent, :meth:`Deadline.check` raises a
structured :class:`~repro.errors.DeadlineExceededError` naming the budget,
the elapsed time, and the operator that noticed.

The clock is injectable (any ``() -> float`` callable) so tests drive
expiry deterministically with a fake clock instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import DeadlineExceededError

__all__ = ["DEFAULT_TICK_INTERVAL", "Deadline"]

#: Rows/blocks processed between clock reads on the tick fast path.
DEFAULT_TICK_INTERVAL = 4096


class Deadline:
    """A wall-clock budget with cheap cooperative cancellation checks.

    Args:
        seconds: The budget; must be positive and finite.
        clock: Monotonic time source (seconds); defaults to
            :func:`time.monotonic`.  Injectable for deterministic tests.
        tick_interval: How many :meth:`tick` units elapse between actual
            clock reads; lower values notice expiry sooner but cost more.
    """

    def __init__(
        self,
        seconds: float,
        clock: Optional[Callable[[], float]] = None,
        tick_interval: int = DEFAULT_TICK_INTERVAL,
    ) -> None:
        if not seconds > 0:
            raise ValueError(f"deadline seconds must be positive, got {seconds}")
        if seconds != seconds or seconds == float("inf"):
            raise ValueError(f"deadline seconds must be finite, got {seconds}")
        if tick_interval < 1:
            raise ValueError(
                f"tick_interval must be positive, got {tick_interval}"
            )
        self._budget_s = float(seconds)
        self._clock = clock if clock is not None else time.monotonic
        self._tick_interval = tick_interval
        self._started = self._clock()
        self._pending = 0

    @property
    def budget_s(self) -> float:
        """The total budget in seconds."""
        return self._budget_s

    def elapsed_s(self) -> float:
        """Seconds since the deadline was created."""
        return self._clock() - self._started

    def remaining_s(self) -> float:
        """Seconds of budget left (may be negative once expired)."""
        return self._budget_s - self.elapsed_s()

    def expired(self) -> bool:
        """Whether the budget is spent (reads the clock)."""
        return self.elapsed_s() > self._budget_s

    def check(self, label: str = "") -> None:
        """Read the clock and raise if the budget is spent.

        Raises:
            DeadlineExceededError: once ``elapsed > budget``, carrying the
                budget, the elapsed seconds, and ``label``.
        """
        elapsed = self.elapsed_s()
        if elapsed > self._budget_s:
            raise DeadlineExceededError(self._budget_s, elapsed, label)

    def tick(self, count: int = 1, label: str = "") -> None:
        """Account ``count`` units of work; check the clock periodically.

        The clock is only read once at least ``tick_interval`` units have
        accumulated since the last read, so per-row calls stay cheap.
        """
        self._pending += count
        if self._pending >= self._tick_interval:
            self._pending = 0
            self.check(label)
