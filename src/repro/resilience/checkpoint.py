"""Append-only JSONL checkpoints for long evaluation sweeps.

A sweep over hundreds of workloads can die hours in — from a fault the
retries could not absorb, a preempted machine, or a plain Ctrl-C.  The
checkpoint file makes the work durable: the harness appends one JSON
line per *completed* payload, keyed by a content fingerprint of the
payload (workload query, specs, seed, engine, algorithms), and on
restart any payload whose fingerprint is already present is skipped.

Format — one JSON object per line::

    {"fingerprint": "<hex>", "index": 3, "records": [...]}

The fingerprint keys the skip decision; ``index`` is informational.
Torn final lines (a crash mid-write) are ignored on load, so a restart
after a hard kill re-runs at most the one payload whose line tore.
Structurally invalid *complete* lines raise
:class:`~repro.errors.CheckpointError` — they mean the file is not a
checkpoint at all, and silently re-running everything (or worse,
trusting garbage) would hide it.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List

from ..errors import CheckpointError

__all__ = ["append_checkpoint", "fingerprint_of", "load_checkpoint"]


def fingerprint_of(parts: Iterable[str]) -> str:
    """A stable content digest over an ordered sequence of strings.

    Each part is length-prefixed before hashing so ``("ab", "c")`` and
    ``("a", "bc")`` cannot collide.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        encoded = part.encode("utf-8")
        digest.update(str(len(encoded)).encode("ascii"))
        digest.update(b":")
        digest.update(encoded)
    return digest.hexdigest()


def load_checkpoint(path: str) -> Dict[str, Dict[str, object]]:
    """Completed entries keyed by payload fingerprint.

    A missing file is an empty checkpoint (first run).  A final line that
    is not complete JSON is treated as torn and skipped; a line that *is*
    valid JSON but lacks the checkpoint structure raises.

    Raises:
        CheckpointError: on unreadable files or structurally invalid
            entries.
    """
    if not os.path.exists(path):
        return {}
    entries: Dict[str, Dict[str, object]] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            entry = json.loads(text)
        except ValueError:
            # A torn write from a crashed run; the payload simply re-runs.
            continue
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise CheckpointError(
                f"checkpoint {path!r} line {number} is not a checkpoint entry"
            )
        if "records" not in entry or not isinstance(entry["records"], list):
            raise CheckpointError(
                f"checkpoint {path!r} line {number} lacks a records list"
            )
        entries[str(entry["fingerprint"])] = entry
    return entries


def append_checkpoint(
    path: str,
    fingerprint: str,
    index: int,
    records: List[Dict[str, object]],
) -> None:
    """Append one completed payload's records as a single JSON line.

    The line is written and flushed in one call so concurrent readers see
    either the whole entry or a torn tail (which :func:`load_checkpoint`
    skips) — never a half-parsed success.

    Raises:
        CheckpointError: when the file cannot be written.
    """
    entry = {"fingerprint": fingerprint, "index": index, "records": records}
    line = json.dumps(entry, sort_keys=True)
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path!r}: {exc}") from exc
