"""Fault-tolerance primitives for the evaluation runtime.

The paper's accuracy tables come from long sweeps; this package gives the
harness the machinery to finish them despite slow joins, crashed workers,
and corrupted caches:

* :mod:`~repro.resilience.deadline` — cooperative wall-clock budgets the
  executors check per row/block, raising structured
  :class:`~repro.errors.DeadlineExceededError`;
* :mod:`~repro.resilience.retry` — bounded attempts with
  seeded-deterministic exponential backoff and the
  :class:`~repro.resilience.retry.FailureReport` degraded payloads carry;
* :mod:`~repro.resilience.chaos` — seeded, serializable fault plans
  (worker crashes, slow executions, cache corruption) for differential
  chaos testing;
* :mod:`~repro.resilience.checkpoint` — append-only JSONL checkpoints so
  interrupted sweeps resume instead of restarting.

Everything here is deterministic by construction: backoff jitter and
sampled fault schedules derive from explicit seeds, and fault firing is a
pure function of ``(payload index, attempt)`` — the differential test
suite relies on a faulted parallel run converging byte-identically to the
fault-free serial run.
"""

from .chaos import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    Fault,
    FaultPlan,
    InjectedWorkerCrash,
)
from .checkpoint import append_checkpoint, fingerprint_of, load_checkpoint
from .deadline import DEFAULT_TICK_INTERVAL, Deadline
from .retry import DEFAULT_RETRY_POLICY, FailureReport, RetryPolicy, retry_call

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_TICK_INTERVAL",
    "Deadline",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FailureReport",
    "Fault",
    "FaultPlan",
    "InjectedWorkerCrash",
    "RetryPolicy",
    "append_checkpoint",
    "fingerprint_of",
    "load_checkpoint",
    "retry_call",
]
