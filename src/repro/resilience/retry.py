"""Bounded retries with seeded-deterministic exponential backoff.

A :class:`RetryPolicy` is a frozen value object: attempts, base delay,
multiplier, cap, and jitter fraction.  The jitter is *derived*, never
ambient — :meth:`RetryPolicy.delay_s` seeds a private
:class:`random.Random` from ``(seed, attempt)`` arithmetic, so the same
policy, seed, and attempt always back off for exactly the same duration
(the ELS402 effect lint forbids ambient RNG on these paths, and the
harness's byte-identical determinism contract depends on it).

:class:`FailureReport` is the machine-readable record a degraded payload
carries: what kind of fault, how many attempts were burned, how long it
took.  :func:`retry_call` is the generic driver used by tests and simple
call sites; the evaluation harness drives its own retry rounds because
its attempts run on a process pool.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type

from ..errors import ReproError, RetryExhaustedError

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FailureReport",
    "RetryPolicy",
    "retry_call",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait between tries.

    Args:
        max_attempts: Total attempts including the first; at least 1.
        base_delay_s: Backoff before the second attempt.
        multiplier: Exponential growth factor per further attempt.
        max_delay_s: Cap applied before jitter.
        jitter: Symmetric jitter fraction in ``[0, 1]``: the delay is
            scaled by a seeded-deterministic factor in ``1 ± jitter``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0:
            raise ValueError(
                f"base_delay_s must be non-negative, got {self.base_delay_s}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be at least 1, got {self.multiplier}"
            )
        if self.max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be non-negative, got {self.max_delay_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(self, attempt: int, seed: int = 0) -> float:
        """Backoff before retry number ``attempt`` (0 = first retry).

        Deterministic: the jitter RNG is seeded from ``(seed, attempt)``
        arithmetic, so identical inputs always produce identical delays
        across processes and runs.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, got {attempt}")
        raw = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = random.Random(1000003 * seed + 8191 * attempt + 1)
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw * factor)


#: The harness default: three attempts, fast capped backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class FailureReport:
    """Machine-readable description of why a payload degraded.

    Attributes:
        kind: Failure class (``"deadline"``, ``"crash"``, ``"exception"``).
        attempts: How many attempts were made before giving up.
        elapsed_s: Wall-clock seconds burned across the attempts.
        message: Human-readable detail from the final error.
    """

    kind: str
    attempts: int
    elapsed_s: float
    message: str = ""

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly view (stored in checkpoints and bench reports)."""
        return {
            "kind": self.kind,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FailureReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            attempts=int(data["attempts"]),  # type: ignore[call-overload]
            elapsed_s=float(data["elapsed_s"]),  # type: ignore[arg-type]
            message=str(data.get("message", "")),
        )


def retry_call(
    action: Callable[[], object],
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    seed: int = 0,
    retryable: Tuple[Type[BaseException], ...] = (ReproError,),
    sleep: Callable[[float], None] = time.sleep,
    label: str = "",
) -> object:
    """Call ``action`` under the policy, backing off between failures.

    Args:
        action: Zero-argument callable to attempt.
        policy: Attempt/backoff schedule.
        seed: Jitter seed, so concurrent callers can decorrelate their
            backoff deterministically.
        retryable: Exception types that trigger a retry; anything else
            propagates immediately.
        sleep: Delay function; injectable so tests never actually sleep.
        label: Call-site name used in the exhaustion error.

    Raises:
        RetryExhaustedError: when every allowed attempt failed; carries
            ``attempts`` and ``last_error``.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        if attempt > 0:
            sleep(policy.delay_s(attempt - 1, seed=seed))
        try:
            return action()
        except retryable as exc:
            last_error = exc
    what = label or getattr(action, "__name__", "action")
    raise RetryExhaustedError(
        f"{what} failed: {last_error}",
        attempts=policy.max_attempts,
        last_error=last_error,
    )
