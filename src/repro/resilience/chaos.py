"""Deterministic fault injection for the evaluation harness.

Testing a fault-tolerant runtime needs *reproducible* faults.  A
:class:`FaultPlan` is a frozen, fully-serializable schedule: each
:class:`Fault` names a payload index, the attempt numbers it fires on,
and a kind — a simulated worker crash, a slow execution, or a corrupted
ground-truth cache entry.  Plans are stateless values (fork-safe: every
worker process sees the same schedule) and travel either as an explicit
``fault_plan=`` argument or through the ``REPRO_FAULT_PLAN`` environment
variable as JSON, which is how the CI chaos job injects faults under a
real multi-worker pool.

Determinism contract: a fault fires iff ``(payload index, attempt)``
matches the plan — no clocks, no ambient RNG.  :meth:`FaultPlan.sample`
*derives* a plan from a seed with a private seeded generator, so chaos
suites can sweep many schedules while each one stays reproducible.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ResilienceError

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "Fault",
    "FaultPlan",
    "InjectedWorkerCrash",
]

#: The supported fault kinds.
FAULT_KINDS = ("crash", "slow", "corrupt-cache")

#: Environment variable carrying a JSON fault plan into worker processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class InjectedWorkerCrash(ResilienceError):
    """The simulated worker-crash fault (never raised by real workloads).

    Raised inside ``_evaluate_one`` when a ``"crash"`` fault fires, and
    treated by the harness exactly like a worker that died: the payload
    is retried on a later attempt.
    """


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        index: The payload index the fault targets.
        attempts: Attempt numbers (0-based) on which the fault fires; the
            default fires only on the first attempt, so retries succeed.
        delay_s: For ``"slow"`` faults, how long the injected sleep runs.
    """

    kind: str
    index: int
    attempts: Tuple[int, ...] = (0,)
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.index < 0:
            raise ValueError(f"fault index must be non-negative, got {self.index}")
        if self.delay_s < 0:
            raise ValueError(
                f"fault delay_s must be non-negative, got {self.delay_s}"
            )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-friendly view."""
        return {
            "kind": self.kind,
            "index": self.index,
            "attempts": list(self.attempts),
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Fault":
        """Rebuild a fault from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            index=int(data["index"]),  # type: ignore[call-overload]
            attempts=tuple(int(a) for a in data.get("attempts", (0,))),  # type: ignore[union-attr]
            delay_s=float(data.get("delay_s", 0.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultPlan:
    """A frozen schedule of faults, keyed by (payload index, attempt).

    Attributes:
        faults: The scheduled faults.
        seed: The seed the plan was derived from (informational; kept so
            reports can name the schedule).
    """

    faults: Tuple[Fault, ...] = field(default=())
    seed: int = 0

    def faults_for(self, index: int, attempt: int) -> Tuple[Fault, ...]:
        """Every fault that fires for this payload index and attempt."""
        return tuple(
            f for f in self.faults if f.index == index and attempt in f.attempts
        )

    def to_json(self) -> str:
        """Serialize the plan (inverse of :meth:`from_json`)."""
        return json.dumps(
            {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan serialized by :meth:`to_json`.

        Raises:
            ResilienceError: on malformed JSON or structure.
        """
        try:
            data = json.loads(text)
            faults = tuple(Fault.from_dict(f) for f in data.get("faults", ()))
            seed = int(data.get("seed", 0))
        except (ValueError, TypeError, KeyError, AttributeError) as exc:
            raise ResilienceError(f"invalid fault plan JSON: {exc}") from exc
        return cls(faults=faults, seed=seed)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan carried by :data:`FAULT_PLAN_ENV`, or ``None``.

        Args:
            environ: Mapping to read; defaults to ``os.environ``.  The
                variable's value must be :meth:`to_json` output.
        """
        source = environ if environ is not None else os.environ
        text = source.get(FAULT_PLAN_ENV)
        if not text:
            return None
        return cls.from_json(text)

    @classmethod
    def sample(
        cls,
        payload_count: int,
        seed: int = 0,
        crashes: int = 1,
        slows: int = 1,
        corruptions: int = 1,
        slow_delay_s: float = 0.05,
    ) -> "FaultPlan":
        """Derive a schedule from a seed with a private seeded generator.

        Target indices are drawn without replacement per fault kind (kinds
        may overlap on an index), so the same ``(payload_count, seed)``
        always yields the same plan.
        """
        if payload_count < 1:
            raise ValueError(
                f"payload_count must be positive, got {payload_count}"
            )
        rng = random.Random(1000003 * seed + 12289)
        faults = []
        for kind, wanted in (
            ("crash", crashes),
            ("slow", slows),
            ("corrupt-cache", corruptions),
        ):
            chosen = rng.sample(range(payload_count), min(wanted, payload_count))
            for index in sorted(chosen):
                delay = slow_delay_s if kind == "slow" else 0.0
                faults.append(Fault(kind=kind, index=index, delay_s=delay))
        return cls(faults=tuple(faults), seed=seed)
