"""Synthetic table generation from declarative specs.

A :class:`TableSpec` says how many rows a table has and, per column, how
many distinct values and under which distribution.  :func:`build_database`
turns a list of specs into a loaded, ANALYZEd :class:`Database`, which is
everything a benchmark needs to measure estimated-versus-true join sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..catalog.collector import HistogramKind
from ..catalog.schema import TableSchema
from ..errors import WorkloadError
from ..storage.database import Database
from .distributions import uniform_column, zipf_column

__all__ = ["Distribution", "ColumnSpec", "TableSpec", "generate_columns", "build_database"]


class Distribution(enum.Enum):
    UNIFORM = "uniform"
    ZIPF = "zipf"


@dataclass(frozen=True)
class ColumnSpec:
    """How to generate one column.

    Attributes:
        distinct: Target column cardinality (exact for both distributions).
        distribution: Value frequency shape.
        skew: Zipf exponent (ignored for uniform columns).
        low: Smallest domain value; the domain is ``low .. low+distinct-1``.
            Overlapping domains across tables realize the containment
            assumption (the smaller domain is a subset of the larger).
    """

    distinct: int
    distribution: Distribution = Distribution.UNIFORM
    skew: float = 1.0
    low: int = 1


@dataclass(frozen=True)
class TableSpec:
    """A synthetic table: a name, a row count, and its column specs."""

    name: str
    rows: int
    columns: Mapping[str, ColumnSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rows < 0:
            raise WorkloadError(f"table {self.name!r} has negative rows")
        if not self.columns:
            raise WorkloadError(f"table {self.name!r} needs at least one column")
        object.__setattr__(self, "columns", dict(self.columns))

    @classmethod
    def uniform(cls, name: str, rows: int, distincts: Mapping[str, int]) -> "TableSpec":
        """All-uniform columns given their cardinalities (the paper's shape)."""
        return cls(
            name,
            rows,
            {column: ColumnSpec(distinct=d) for column, d in distincts.items()},
        )


def generate_columns(
    spec: TableSpec, rng: np.random.Generator
) -> Dict[str, List[int]]:
    """Generate all column value lists for one table spec."""
    columns: Dict[str, List[int]] = {}
    for name, column_spec in spec.columns.items():
        if column_spec.distribution is Distribution.UNIFORM:
            columns[name] = uniform_column(
                spec.rows, column_spec.distinct, rng, low=column_spec.low
            )
        else:
            columns[name] = zipf_column(
                spec.rows,
                column_spec.distinct,
                column_spec.skew,
                rng,
                low=column_spec.low,
            )
    return columns


def build_database(
    specs: Sequence[TableSpec],
    seed: int = 0,
    analyze: bool = True,
    histogram: HistogramKind = HistogramKind.EQUI_DEPTH,
    buckets: int = 10,
    mcv_k: int = 0,
) -> Database:
    """Generate, load, and (optionally) ANALYZE a database from specs.

    Args:
        specs: One spec per table.
        seed: Seed for the shared random generator; identical seeds produce
            identical databases.
        analyze: Collect catalog statistics after loading.
        histogram: Histogram kind for ANALYZE.
        buckets: Histogram bucket count.
        mcv_k: Most-common-values list size (0 disables).
    """
    rng = np.random.default_rng(seed)
    database = Database()
    for spec in specs:
        schema = TableSchema.of(spec.name, *spec.columns.keys())
        columns = generate_columns(spec, rng)
        database.load_columns(schema, columns)
    if analyze:
        database.analyze(histogram=histogram, buckets=buckets, mcv_k=mcv_k)
    return database
