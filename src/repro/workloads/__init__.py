"""Synthetic workloads: value distributions, table generation, and queries."""

from .distributions import key_column, uniform_column, zipf_column, zipf_weights
from .generator import (
    ColumnSpec,
    Distribution,
    TableSpec,
    build_database,
    generate_columns,
)
from .paper import (
    SMBG_DISTINCTS,
    SMBG_ROWS,
    example_1b_catalog,
    example_1b_query,
    load_smbg_database,
    section6_catalog,
    section6_query,
    smbg_catalog,
    smbg_query,
    smbg_specs,
)
from .tpch_lite import (
    TPCH_SCHEMAS,
    load_tpch_lite,
    q3_customer_orders,
    q5_regional,
    q9_parts_suppliers,
    q_full_join,
    tpch_lite_specs,
)
from .queries import (
    GeneratedWorkload,
    chain_workload,
    clique_workload,
    cycle_workload,
    snowflake_workload,
    star_workload,
)

__all__ = [
    "ColumnSpec",
    "Distribution",
    "GeneratedWorkload",
    "SMBG_DISTINCTS",
    "SMBG_ROWS",
    "TPCH_SCHEMAS",
    "TableSpec",
    "build_database",
    "chain_workload",
    "clique_workload",
    "cycle_workload",
    "example_1b_catalog",
    "example_1b_query",
    "generate_columns",
    "key_column",
    "load_smbg_database",
    "load_tpch_lite",
    "section6_catalog",
    "section6_query",
    "smbg_catalog",
    "smbg_query",
    "q3_customer_orders",
    "q5_regional",
    "q9_parts_suppliers",
    "q_full_join",
    "smbg_specs",
    "snowflake_workload",
    "star_workload",
    "tpch_lite_specs",
    "uniform_column",
    "zipf_column",
    "zipf_weights",
]
