"""TPC-H-lite: a realistic miniature warehouse schema and query set.

The paper's introduction motivates join-size estimation with "user
generated quer[ies] involv[ing] multiple joins"; the de-facto standard
embodiment is the TPC-H schema.  This module scales it down to the
library's in-memory engine:

======== ================================ ====================
table    columns                          rows (scale = 1.0)
======== ================================ ====================
region   r_id (key)                       5
nation   n_id (key), n_region (fk)        25
supplier s_id (key), s_nation (fk)        1 000
customer c_id (key), c_nation (fk)        15 000
part     p_id (key), p_size (1..50)       20 000
orders   o_id (key), o_customer (fk),     150 000
         o_date (1..2400)
lineitem l_order (fk), l_part (fk),       600 000
         l_supplier (fk), l_quantity
======== ================================ ====================

Foreign keys draw uniformly from the parent's key domain (containment by
construction), which means the paper's assumptions hold and ELS's
estimates can be validated against executed counts on a schema people
recognize.  The default ``scale=0.05`` keeps full query execution under a
second.

Four canonical query shapes are provided, from 3-way to 6-way joins.
"""

from __future__ import annotations

from typing import Dict, List

from ..sql.parser import parse_query
from ..sql.query import Query
from ..storage.database import Database
from .generator import ColumnSpec, TableSpec, build_database

__all__ = [
    "TPCH_SCHEMAS",
    "tpch_lite_specs",
    "load_tpch_lite",
    "q3_customer_orders",
    "q9_parts_suppliers",
    "q5_regional",
    "q_full_join",
]

#: Column names per table, for unqualified-name resolution in queries.
TPCH_SCHEMAS: Dict[str, List[str]] = {
    "region": ["r_id"],
    "nation": ["n_id", "n_region"],
    "supplier": ["s_id", "s_nation"],
    "customer": ["c_id", "c_nation"],
    "part": ["p_id", "p_size"],
    "orders": ["o_id", "o_customer", "o_date"],
    "lineitem": ["l_order", "l_part", "l_supplier", "l_quantity"],
}

_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 1000,
    "customer": 15000,
    "part": 20000,
    "orders": 150000,
    "lineitem": 600000,
}

#: Small dimension tables that do not shrink with the scale factor.
_UNSCALED = ("region", "nation")

DATE_DOMAIN = 2400  # "days" spanned by o_date
SIZE_DOMAIN = 50  # p_size and l_quantity domain


def _rows(table: str, scale: float) -> int:
    base = int(_BASE_ROWS[table])
    if table in _UNSCALED:
        return base
    return max(1, int(base * scale))


def tpch_lite_specs(scale: float = 0.05) -> List[TableSpec]:
    """Table specs for the miniature TPC-H schema at a scale factor."""
    region = _rows("region", scale)
    nation = _rows("nation", scale)
    supplier = _rows("supplier", scale)
    customer = _rows("customer", scale)
    part = _rows("part", scale)
    orders = _rows("orders", scale)
    lineitem = _rows("lineitem", scale)

    def key(n: int) -> ColumnSpec:
        return ColumnSpec(distinct=n)

    def fk(parent_rows: int, child_rows: int) -> ColumnSpec:
        return ColumnSpec(distinct=min(parent_rows, child_rows))

    return [
        TableSpec("region", region, {"r_id": key(region)}),
        TableSpec(
            "nation", nation, {"n_id": key(nation), "n_region": fk(region, nation)}
        ),
        TableSpec(
            "supplier",
            supplier,
            {"s_id": key(supplier), "s_nation": fk(nation, supplier)},
        ),
        TableSpec(
            "customer",
            customer,
            {"c_id": key(customer), "c_nation": fk(nation, customer)},
        ),
        TableSpec(
            "part",
            part,
            {"p_id": key(part), "p_size": ColumnSpec(distinct=min(SIZE_DOMAIN, part))},
        ),
        TableSpec(
            "orders",
            orders,
            {
                "o_id": key(orders),
                "o_customer": fk(customer, orders),
                "o_date": ColumnSpec(distinct=min(DATE_DOMAIN, orders)),
            },
        ),
        TableSpec(
            "lineitem",
            lineitem,
            {
                "l_order": fk(orders, lineitem),
                "l_part": fk(part, lineitem),
                "l_supplier": fk(supplier, lineitem),
                "l_quantity": ColumnSpec(distinct=min(SIZE_DOMAIN, lineitem)),
            },
        ),
    ]


def load_tpch_lite(scale: float = 0.05, seed: int = 0, mcv_k: int = 0) -> Database:
    """Generate and ANALYZE the TPC-H-lite database."""
    return build_database(tpch_lite_specs(scale), seed=seed, mcv_k=mcv_k)


def _q(text: str) -> Query:
    return parse_query(text, schemas=TPCH_SCHEMAS)


def q3_customer_orders(date_threshold: int = 300) -> Query:
    """Q3-shaped: customer >< orders >< lineitem with a date restriction."""
    return _q(
        "SELECT COUNT(*) FROM customer, orders, lineitem "
        f"WHERE c_id = o_customer AND o_id = l_order AND o_date < {date_threshold}"
    )


def q9_parts_suppliers(max_size: int = 10) -> Query:
    """Q9-shaped: lineitem >< part >< supplier with a part filter."""
    return _q(
        "SELECT COUNT(*) FROM lineitem, part, supplier "
        f"WHERE l_part = p_id AND l_supplier = s_id AND p_size < {max_size}"
    )


def q5_regional(region_id: int = 1) -> Query:
    """Q5-shaped: customer >< nation >< region >< orders for one region."""
    return _q(
        "SELECT COUNT(*) FROM customer, nation, region, orders "
        "WHERE c_nation = n_id AND n_region = r_id AND o_customer = c_id "
        f"AND r_id = {region_id}"
    )


def q_full_join(date_threshold: int = 120) -> Query:
    """A 6-way join across the whole schema with a tight date filter."""
    return _q(
        "SELECT COUNT(*) FROM customer, orders, lineitem, part, supplier, nation "
        "WHERE c_id = o_customer AND o_id = l_order AND l_part = p_id "
        "AND l_supplier = s_id AND s_nation = n_id "
        f"AND o_date < {date_threshold}"
    )
