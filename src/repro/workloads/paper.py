"""The paper's concrete setups: every worked example plus the Section 8 query.

Each helper returns the statistics catalog (and, where data is needed, the
table specs) exactly as printed in the paper, so tests and benchmarks can
assert the paper's numbers rather than re-deriving them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..catalog.statistics import Catalog
from ..sql.parser import parse_query
from ..sql.query import Query
from ..storage.database import Database
from .generator import TableSpec, build_database

__all__ = [
    "example_1b_catalog",
    "example_1b_query",
    "section6_catalog",
    "section6_query",
    "SMBG_ROWS",
    "SMBG_DISTINCTS",
    "smbg_catalog",
    "smbg_query",
    "smbg_specs",
    "load_smbg_database",
]


# ---------------------------------------------------------------------------
# Examples 1a/1b/2/3 (Sections 2, 3, 7): the three-table chain query.
# ---------------------------------------------------------------------------

def example_1b_catalog() -> Catalog:
    """Statistics of Example 1b.

    ``||R1||=100, ||R2||=1000, ||R3||=1000, d_x=10, d_y=100, d_z=1000``
    (column ``a`` is R1's projection column, modeled as a key-ish column).
    """
    return Catalog.from_stats(
        {
            "R1": (100, {"x": 10, "a": 100}),
            "R2": (1000, {"y": 100}),
            "R3": (1000, {"z": 1000}),
        }
    )


def example_1b_query() -> Query:
    """Example 1a's query: ``R1.x = R2.y AND R2.y = R3.z``."""
    return parse_query(
        "SELECT R1.a FROM R1, R2, R3 WHERE R1.x = R2.y AND R2.y = R3.z"
    )


# ---------------------------------------------------------------------------
# Section 6: single-table j-equivalent join columns.
# ---------------------------------------------------------------------------

def section6_catalog() -> Catalog:
    """Statistics of the Section 6 example.

    ``||R1||=100, ||R2||=1000, d_x=100, d_y=10, d_w=50``.
    """
    return Catalog.from_stats(
        {
            "R1": (100, {"x": 100}),
            "R2": (1000, {"y": 10, "w": 50}),
        }
    )


def section6_query() -> Query:
    """``(R1.x = R2.y) AND (R1.x = R2.w)`` — closure adds ``R2.y = R2.w``."""
    return parse_query("SELECT * FROM R1, R2 WHERE R1.x = R2.y AND R1.x = R2.w")


# ---------------------------------------------------------------------------
# Section 8: the S (small), M (medium), B (big), G (giant) experiment.
# ---------------------------------------------------------------------------

#: Table cardinalities of the experiment: ``||S||=1000, ||M||=10000,
#: ||B||=50000, ||G||=100000``.
SMBG_ROWS: Dict[str, int] = {"S": 1000, "M": 10000, "B": 50000, "G": 100000}

#: Column cardinalities: every join column is a key
#: (``d_s=1000, d_m=10000, d_b=50000, d_g=100000``).
SMBG_DISTINCTS: Dict[str, Tuple[str, int]] = {
    "S": ("s", 1000),
    "M": ("m", 10000),
    "B": ("b", 50000),
    "G": ("g", 100000),
}


def smbg_catalog(scale: float = 1.0) -> Catalog:
    """The experiment's statistics, optionally scaled down uniformly."""
    entries = {}
    for table, rows in SMBG_ROWS.items():
        column, distinct = SMBG_DISTINCTS[table]
        entries[table] = (
            max(1, int(rows * scale)),
            {column: max(1, int(distinct * scale))},
        )
    return Catalog.from_stats(entries)


def smbg_query(threshold: int = 100) -> Query:
    """The experiment query before PTC.

    ``SELECT COUNT(*) FROM S, M, B, G WHERE s = m AND m = b AND b = g AND
    s < threshold`` — the paper uses ``s < 100``.
    """
    schemas = {"S": ["s"], "M": ["m"], "B": ["b"], "G": ["g"]}
    return parse_query(
        "SELECT COUNT(*) FROM S, M, B, G "
        f"WHERE s = m AND m = b AND b = g AND s < {threshold}",
        schemas=schemas,
    )


def smbg_specs(scale: float = 1.0) -> List[TableSpec]:
    """Data generation specs matching the experiment's statistics.

    Every join column is a key over ``1..rows`` so, with containment by
    construction (smaller domains are prefixes of larger ones), the true
    size of every join subset after ``s < 100`` is exactly the number of
    selected S-rows — the paper: "The correct join result size after any
    subset of joins has been performed can be shown to be exactly 100."
    """
    specs = []
    for table, rows in SMBG_ROWS.items():
        column, distinct = SMBG_DISTINCTS[table]
        scaled_rows = max(1, int(rows * scale))
        scaled_distinct = max(1, int(distinct * scale))
        specs.append(TableSpec.uniform(table, scaled_rows, {column: scaled_distinct}))
    return specs


def load_smbg_database(scale: float = 1.0, seed: int = 0) -> Database:
    """Generate and ANALYZE the experiment database.

    The catalog is collected from the generated data, so the statistics
    the optimizer sees are exactly the paper's numbers (the generators hit
    the target cardinalities exactly).
    """
    return build_database(smbg_specs(scale), seed=seed)
