"""Column value generators: uniform, Zipf, and key distributions.

The paper's assumptions (Section 2) make uniform join columns the base
case: "The distinct values in a join column appear equifrequently in the
column."  :func:`uniform_column` generates exactly that — every one of the
``distinct`` values appears ``rows/distinct`` times (±1), shuffled.

Zipf columns implement the skewed distributions of the paper's future-work
discussion (and of [6, 17]): value ranks are weighted ``1/rank^skew``.
They deliberately *violate* the uniformity assumption so the sensitivity
benchmarks can measure how all the estimation rules degrade together.

All generators take an explicit :class:`numpy.random.Generator` so every
workload in the repository is reproducible from a seed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import WorkloadError

__all__ = ["uniform_column", "zipf_column", "key_column", "zipf_weights"]


def _validate(rows: int, distinct: int) -> None:
    if rows < 0:
        raise WorkloadError(f"row count must be >= 0, got {rows}")
    if distinct <= 0 and rows > 0:
        raise WorkloadError(f"need at least one distinct value for {rows} rows")
    if distinct > rows > 0:
        raise WorkloadError(
            f"cannot place {distinct} distinct values in {rows} rows"
        )


def uniform_column(
    rows: int, distinct: int, rng: np.random.Generator, low: int = 1
) -> List[int]:
    """Exactly ``distinct`` values, each appearing ``rows/distinct`` times (±1).

    Values are ``low .. low+distinct-1``, shuffled.  This realizes the
    uniformity assumption *exactly*, so estimates made under it can be
    validated against true executed counts without sampling noise.
    """
    _validate(rows, distinct)
    if rows == 0:
        return []
    repeats, remainder = divmod(rows, distinct)
    values = np.tile(np.arange(low, low + distinct, dtype=np.int64), repeats)
    if remainder:
        extra = rng.choice(
            np.arange(low, low + distinct, dtype=np.int64), remainder, replace=False
        )
        values = np.concatenate([values, extra])
    rng.shuffle(values)
    return values.tolist()


def zipf_weights(distinct: int, skew: float) -> np.ndarray:
    """Normalized Zipf probabilities over ranks ``1..distinct``.

    Raises:
        WorkloadError: on a non-positive ``distinct`` or negative ``skew``.
    """
    if distinct <= 0:
        raise WorkloadError("zipf_weights needs at least one value")
    if skew < 0:
        raise WorkloadError(f"zipf skew must be >= 0, got {skew}")
    ranks = np.arange(1, distinct + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def zipf_column(
    rows: int,
    distinct: int,
    skew: float,
    rng: np.random.Generator,
    low: int = 1,
) -> List[int]:
    """Zipf-distributed values over the domain ``low .. low+distinct-1``.

    ``skew = 0`` degenerates to independent uniform sampling (not exactly
    equifrequent); larger skew concentrates mass on low ranks.  Every
    domain value is guaranteed to appear at least once when ``rows >=
    distinct`` (the tail is seeded deterministically before sampling the
    rest), so the generated column cardinality matches ``distinct``.
    """
    _validate(rows, distinct)
    if rows == 0:
        return []
    domain = np.arange(low, low + distinct, dtype=np.int64)
    probabilities = zipf_weights(distinct, skew)
    seed_tail = domain.copy()  # one of each, to pin the distinct count
    sampled = rng.choice(domain, size=rows - len(seed_tail), p=probabilities)
    values = np.concatenate([seed_tail, sampled])
    rng.shuffle(values)
    return values.tolist()


def key_column(rows: int, rng: Optional[np.random.Generator] = None, low: int = 1) -> List[int]:
    """A key column: ``rows`` distinct values, optionally shuffled."""
    values = np.arange(low, low + rows, dtype=np.int64)
    if rng is not None:
        rng.shuffle(values)
    return values.tolist()
