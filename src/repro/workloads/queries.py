"""Random multi-join workload generators: chains, stars, cliques.

These produce matched ``(table specs, query)`` pairs for the accuracy and
error-propagation benchmarks: generate the data, ANALYZE it, estimate with
each algorithm, execute for ground truth, and compare.

* **Chain**: ``T1.c = T2.c AND T2.c = T3.c AND ...`` — after transitive
  closure all join columns fall into a *single equivalence class*, the
  setting of the paper's running example and of the error-propagation
  study [4] it cites.
* **Star**: a fact table joined to ``k`` dimension keys — ``k`` separate
  equivalence classes, exercising the independence-across-classes path.
* **Clique**: the chain query with all pairwise predicates written out
  explicitly (what closure would derive), for testing order invariance.

Domains are nested (every column's domain starts at 1), which realizes the
containment assumption exactly; cardinalities are drawn log-uniformly so
the ``max(d1, d2)`` asymmetries the rules disagree about actually occur.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..sql.predicates import ComparisonPredicate, Op, join_predicate, local_predicate
from ..sql.query import Projection, Query
from .generator import ColumnSpec, Distribution, TableSpec

__all__ = [
    "GeneratedWorkload",
    "chain_workload",
    "star_workload",
    "clique_workload",
    "cycle_workload",
    "snowflake_workload",
]


@dataclass(frozen=True)
class GeneratedWorkload:
    """A matched pair of table specs and the query over them."""

    specs: Tuple[TableSpec, ...]
    query: Query

    @property
    def tables(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.specs)


def _log_uniform(rng: random.Random, low: int, high: int) -> int:
    """An integer drawn log-uniformly from [low, high]."""
    import math

    if low <= 0 or high < low:
        raise WorkloadError(f"invalid log-uniform range [{low}, {high}]")
    return int(round(math.exp(rng.uniform(math.log(low), math.log(high)))))


def chain_workload(
    num_tables: int,
    rng: random.Random,
    min_rows: int = 100,
    max_rows: int = 5000,
    local_predicate_probability: float = 0.0,
    skew: Optional[float] = None,
) -> GeneratedWorkload:
    """A chain join over ``num_tables`` tables sharing one join attribute.

    Each table ``T<i>`` has a join column ``c`` with cardinality drawn
    log-uniformly in ``[min(rows, min_rows)/2, rows]``, and optionally a
    ``c < constant`` local predicate.  ``skew`` switches the join columns
    to Zipf with that exponent (violating uniformity on purpose).

    Raises:
        WorkloadError: when ``num_tables`` is less than 2.
    """
    if num_tables < 2:
        raise WorkloadError("a chain needs at least two tables")
    specs: List[TableSpec] = []
    predicates: List[ComparisonPredicate] = []
    for i in range(1, num_tables + 1):
        rows = _log_uniform(rng, min_rows, max_rows)
        distinct = _log_uniform(rng, max(1, rows // 20), rows)
        if skew is None:
            column = ColumnSpec(distinct=distinct)
        else:
            column = ColumnSpec(
                distinct=distinct, distribution=Distribution.ZIPF, skew=skew
            )
        specs.append(TableSpec(f"T{i}", rows, {"c": column}))
        if i > 1:
            predicates.append(join_predicate(f"T{i - 1}", "c", f"T{i}", "c"))
        if rng.random() < local_predicate_probability:
            threshold = rng.randint(1, max(1, distinct))
            predicates.append(local_predicate(f"T{i}", "c", Op.LT, threshold))
    query = Query.build(
        [spec.name for spec in specs], predicates, Projection(count_star=True)
    )
    return GeneratedWorkload(tuple(specs), query)


def star_workload(
    num_dimensions: int,
    rng: random.Random,
    fact_rows_range: Tuple[int, int] = (2000, 10000),
    dim_rows_range: Tuple[int, int] = (50, 1000),
) -> GeneratedWorkload:
    """A star join: fact table ``F`` with one foreign key per dimension.

    Each dimension ``D<i>`` has a key column ``k``; the fact's ``fk<i>``
    column draws from the dimension's key domain.  The ``num_dimensions``
    join predicates fall into separate equivalence classes, so all the
    combination rules coincide here — a useful control workload.

    Raises:
        WorkloadError: when ``num_dimensions`` is less than 1.
    """
    if num_dimensions < 1:
        raise WorkloadError("a star needs at least one dimension")
    fact_rows = rng.randint(*fact_rows_range)
    fact_columns: Dict[str, ColumnSpec] = {}
    specs: List[TableSpec] = []
    predicates: List[ComparisonPredicate] = []
    for i in range(1, num_dimensions + 1):
        dim_rows = rng.randint(*dim_rows_range)
        specs.append(
            TableSpec(f"D{i}", dim_rows, {"k": ColumnSpec(distinct=dim_rows)})
        )
        fk_distinct = min(fact_rows, rng.randint(max(1, dim_rows // 2), dim_rows))
        fact_columns[f"fk{i}"] = ColumnSpec(distinct=fk_distinct)
        predicates.append(join_predicate("F", f"fk{i}", f"D{i}", "k"))
    specs.insert(0, TableSpec("F", fact_rows, fact_columns))
    query = Query.build(
        [spec.name for spec in specs], predicates, Projection(count_star=True)
    )
    return GeneratedWorkload(tuple(specs), query)


def clique_workload(
    num_tables: int,
    rng: random.Random,
    min_rows: int = 100,
    max_rows: int = 2000,
) -> GeneratedWorkload:
    """A chain workload with every pairwise join predicate made explicit.

    Semantically identical to :func:`chain_workload` after transitive
    closure; used to check that closure makes chain and clique phrasings
    produce identical estimates ("ensures that the same QEP is generated
    for equivalent queries independently of how the queries are
    specified").
    """
    base = chain_workload(num_tables, rng, min_rows, max_rows)
    names = [spec.name for spec in base.specs]
    predicates: List[ComparisonPredicate] = []
    for i, left in enumerate(names):
        for right in names[i + 1 :]:
            predicates.append(join_predicate(left, "c", right, "c"))
    query = Query.build(names, predicates, Projection(count_star=True))
    return GeneratedWorkload(base.specs, query)


def cycle_workload(
    num_tables: int,
    rng: random.Random,
    min_rows: int = 100,
    max_rows: int = 2000,
) -> GeneratedWorkload:
    """A cycle join: the chain closed back on itself.

    ``T1.c = T2.c AND ... AND T(n-1).c = Tn.c AND Tn.c = T1.c`` — the last
    predicate is *redundant* given the others (transitive closure derives
    it), so every estimation rule that double-counts it (Rule M) goes wrong
    even before any implied predicates enter.  A compact regression shape
    for the dependent-predicates story.
    """
    base = chain_workload(num_tables, rng, min_rows, max_rows)
    names = [spec.name for spec in base.specs]
    predicates = list(base.query.predicates)
    predicates.append(join_predicate(names[-1], "c", names[0], "c"))
    query = Query.build(names, predicates, Projection(count_star=True))
    return GeneratedWorkload(base.specs, query)


def snowflake_workload(
    num_dimensions: int,
    num_subdimensions: int,
    rng: random.Random,
    fact_rows_range: Tuple[int, int] = (2000, 8000),
    dim_rows_range: Tuple[int, int] = (100, 800),
    subdim_rows_range: Tuple[int, int] = (20, 200),
) -> GeneratedWorkload:
    """A snowflake: star dimensions that each link onward to sub-dimensions.

    Fact ``F`` joins ``num_dimensions`` dimensions on their keys; each
    dimension additionally carries ``num_subdimensions`` foreign keys into
    its own sub-dimension tables.  Each fact-dimension-subdimension path is
    its own equivalence-class *pair*, exercising multi-class estimation at
    depth (chains of length 3 per branch) without collapsing into a single
    class the way plain chains do.

    Raises:
        WorkloadError: when ``num_dimensions`` or ``num_subdimensions``
            is less than 1.
    """
    if num_dimensions < 1:
        raise WorkloadError("a snowflake needs at least one dimension")
    if num_subdimensions < 0:
        raise WorkloadError("subdimension count must be >= 0")
    fact_rows = rng.randint(*fact_rows_range)
    fact_columns: Dict[str, ColumnSpec] = {}
    specs: List[TableSpec] = []
    predicates: List[ComparisonPredicate] = []
    for i in range(1, num_dimensions + 1):
        dim_rows = rng.randint(*dim_rows_range)
        dim_name = f"D{i}"
        dim_columns: Dict[str, ColumnSpec] = {"k": ColumnSpec(distinct=dim_rows)}
        fk_distinct = min(fact_rows, rng.randint(max(1, dim_rows // 2), dim_rows))
        fact_columns[f"fk{i}"] = ColumnSpec(distinct=fk_distinct)
        predicates.append(join_predicate("F", f"fk{i}", dim_name, "k"))
        for j in range(1, num_subdimensions + 1):
            sub_rows = rng.randint(*subdim_rows_range)
            sub_name = f"D{i}S{j}"
            specs.append(
                TableSpec(sub_name, sub_rows, {"k": ColumnSpec(distinct=sub_rows)})
            )
            sub_fk = min(dim_rows, rng.randint(max(1, sub_rows // 2), sub_rows))
            dim_columns[f"sk{j}"] = ColumnSpec(distinct=sub_fk)
            predicates.append(join_predicate(dim_name, f"sk{j}", sub_name, "k"))
        specs.append(TableSpec(dim_name, dim_rows, dim_columns))
    specs.insert(0, TableSpec("F", fact_rows, fact_columns))
    query = Query.build(
        [spec.name for spec in specs], predicates, Projection(count_star=True)
    )
    return GeneratedWorkload(tuple(specs), query)
