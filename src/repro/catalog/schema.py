"""Schema definitions: typed columns and table layouts.

The storage engine, the statistics collector, and the workload generators
all share these descriptions.  Schemas are immutable; a table's layout never
changes after creation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from ..errors import CatalogError

__all__ = ["ColumnType", "ColumnDef", "TableSchema"]

Scalar = Union[int, float, str]


class ColumnType(enum.Enum):
    """Value domain of a column."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    @property
    def python_type(self) -> type:
        return {"int": int, "float": float, "str": str}[self.value]

    def validate(self, value: Scalar) -> bool:
        """True when a Python value belongs to this column type.

        Ints are accepted where floats are expected (SQL-style numeric
        widening), but not the reverse.
        """
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, str)


@dataclass(frozen=True)
class ColumnDef:
    """A named, typed column.

    Attributes:
        name: Column name, unique within its table.
        type: Value domain.
        width_bytes: Logical storage width used by the page-based cost
            model.  Defaults approximate a 1990s row store: 4-byte numerics
            and 16-byte strings.
    """

    name: str
    type: ColumnType = ColumnType.INT
    width_bytes: int = 0

    def __post_init__(self) -> None:
        if self.width_bytes <= 0:
            default = 16 if self.type is ColumnType.STR else 4
            object.__setattr__(self, "width_bytes", default)


@dataclass(frozen=True)
class TableSchema:
    """An ordered, immutable collection of column definitions."""

    name: str
    columns: Tuple[ColumnDef, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {self.name!r}: {names}")
        if not self.columns:
            raise CatalogError(f"table {self.name!r} must have at least one column")
        object.__setattr__(
            self, "_index", {c.name: i for i, c in enumerate(self.columns)}
        )

    @classmethod
    def of(cls, name: str, *columns: Union[str, ColumnDef]) -> "TableSchema":
        """Build a schema from column names (default INT) or ColumnDefs."""
        defs = tuple(
            c if isinstance(c, ColumnDef) else ColumnDef(c) for c in columns
        )
        return cls(name, defs)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def row_width_bytes(self) -> int:
        """Total logical row width, used to compute tuples-per-page."""
        return sum(c.width_bytes for c in self.columns)

    def index_of(self, column: str) -> int:
        index: Dict[str, int] = getattr(self, "_index")
        if column not in index:
            raise CatalogError(f"table {self.name!r} has no column {column!r}")
        return index[column]

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        return name in getattr(self, "_index")

    def renamed(self, new_name: str) -> "TableSchema":
        """The same layout under a different relation name (alias scans)."""
        return TableSchema(new_name, self.columns)
