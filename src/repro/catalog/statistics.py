"""Table and column statistics, and the catalog that owns them.

The two statistics the paper singles out (Section 2) are the **table
cardinality** ``||R||`` and the **column cardinality** ``d_x`` (number of
distinct values).  :class:`ColumnStats` additionally carries min/max bounds,
an optional histogram, and an optional most-common-values list so that local
predicate selectivities can use real distribution information (Section 5:
"we can use data distribution information for local predicate
selectivities").

The :class:`Catalog` maps base-table names to schemas and statistics.  It is
the single source the estimators read; the execution engine never consults
it, which keeps ground-truth measurement independent of estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from ..errors import CatalogError
from .histogram import EquiDepthHistogram, EquiWidthHistogram, MostCommonValues
from .schema import TableSchema

__all__ = ["ColumnStats", "TableStats", "Catalog"]

Number = Union[int, float]
HistogramType = Union[EquiWidthHistogram, EquiDepthHistogram]


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for a single column.

    Attributes:
        distinct: Column cardinality ``d_x`` (number of distinct values).
        low: Minimum value, when known and ordered.
        high: Maximum value, when known and ordered.
        histogram: Optional distribution histogram for range selectivities.
        mcv: Optional most-common-values list for equality selectivities.
    """

    distinct: int
    low: Optional[Number] = None
    high: Optional[Number] = None
    histogram: Optional[HistogramType] = None
    mcv: Optional[MostCommonValues] = None

    def __post_init__(self) -> None:
        if self.distinct < 0:
            raise CatalogError(f"column cardinality must be >= 0, got {self.distinct}")
        if (
            self.low is not None
            and self.high is not None
            and self.high < self.low
        ):
            raise CatalogError(
                f"column high bound {self.high} below low bound {self.low}"
            )

    @property
    def has_range(self) -> bool:
        return self.low is not None and self.high is not None

    @property
    def span(self) -> Optional[float]:
        """Width of the value range, for uniformity-based interpolation."""
        if not self.has_range:
            return None
        return float(self.high) - float(self.low)  # type: ignore[arg-type]

    def scaled(self, distinct: int) -> "ColumnStats":
        """A copy with a replaced distinct count (effective statistics)."""
        return replace(self, distinct=distinct)


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table: row count plus per-column statistics."""

    row_count: int
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise CatalogError(f"table cardinality must be >= 0, got {self.row_count}")
        for name, stats in self.columns.items():
            if stats.distinct > self.row_count:
                raise CatalogError(
                    f"column {name!r} has {stats.distinct} distinct values but the "
                    f"table has only {self.row_count} rows"
                )
        object.__setattr__(self, "columns", dict(self.columns))

    def column(self, name: str) -> ColumnStats:
        if name not in self.columns:
            raise CatalogError(f"no statistics recorded for column {name!r}")
        return self.columns[name]

    def has_column(self, name: str) -> bool:
        return name in self.columns

    @classmethod
    def simple(cls, row_count: int, distincts: Mapping[str, int]) -> "TableStats":
        """Build stats from row count and per-column distinct counts only.

        This matches the information the paper's examples provide
        (``||R||`` and ``d_x``); min/max default to ``[1, distinct]`` which
        is how the paper's integer workloads are laid out.
        """
        columns = {
            name: ColumnStats(distinct=d, low=1, high=max(d, 1))
            for name, d in distincts.items()
        }
        return cls(row_count=row_count, columns=columns)


class Catalog:
    """Registry of base tables: schema + statistics.

    The catalog is keyed by *base* table name.  Query-level aliases are
    resolved to base names (via :meth:`repro.sql.query.Query.base_table`)
    before lookups.
    """

    def __init__(self) -> None:
        self._schemas: Dict[str, TableSchema] = {}
        self._stats: Dict[str, TableStats] = {}

    def register(self, schema: TableSchema, stats: TableStats) -> None:
        """Register (or replace) a table's schema and statistics.

        Raises:
            CatalogError: if statistics mention columns absent from the
                schema, so estimator inputs can never dangle.
        """
        for column in stats.columns:
            if not schema.has_column(column):
                raise CatalogError(
                    f"statistics reference column {column!r} missing from "
                    f"table {schema.name!r}"
                )
        self._schemas[schema.name] = schema
        self._stats[schema.name] = stats

    def register_simple(
        self, name: str, row_count: int, distincts: Mapping[str, int]
    ) -> None:
        """Shortcut: integer columns, stats from cardinalities only."""
        schema = TableSchema.of(name, *distincts.keys())
        self.register(schema, TableStats.simple(row_count, distincts))

    def tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._schemas))

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def schema(self, name: str) -> TableSchema:
        if name not in self._schemas:
            raise CatalogError(f"unknown table {name!r}")
        return self._schemas[name]

    def stats(self, name: str) -> TableStats:
        if name not in self._stats:
            raise CatalogError(f"no statistics for table {name!r}")
        return self._stats[name]

    def column_stats(self, table: str, column: str) -> ColumnStats:
        return self.stats(table).column(column)

    def update_stats(self, name: str, stats: TableStats) -> None:
        """Replace statistics for an already registered table."""
        if name not in self._schemas:
            raise CatalogError(f"cannot update stats for unknown table {name!r}")
        self.register(self._schemas[name], stats)

    def schemas_by_column(self) -> Dict[str, Tuple[str, ...]]:
        """Map table name -> column names, for unqualified-name resolution."""
        return {name: schema.column_names for name, schema in self._schemas.items()}

    @classmethod
    def from_stats(
        cls, entries: Mapping[str, Tuple[int, Mapping[str, int]]]
    ) -> "Catalog":
        """Build a catalog from ``{table: (row_count, {column: distinct})}``.

        This is the shape in which the paper states every example, e.g.
        ``{"R1": (100, {"x": 10})}``.
        """
        catalog = cls()
        for name, (row_count, distincts) in entries.items():
            catalog.register_simple(name, row_count, distincts)
        return catalog
