"""Distribution statistics: equi-width and equi-depth histograms, MCVs.

Section 5 of the paper notes that the uniformity assumption is only needed
for *join* columns — "we can use data distribution information for local
predicate selectivities".  These histogram classes provide that distribution
information: given a constant-local predicate ``col op c`` they estimate the
fraction of rows satisfying it, which the local-selectivity module prefers
over the plain uniformity estimate whenever a histogram is present.

Both histogram flavours answer the same queries:

* :meth:`fraction` — fraction of rows satisfying ``op value``;
* :meth:`fraction_between` — fraction in a closed/open interval, used when
  the tightest pair of range predicates is combined per [16].

Equi-width histograms split the value range into equal-width buckets (cheap
to build, weak on skew); equi-depth histograms (Piatetsky-Shapiro & Connell
[10]; Muralikrishna & DeWitt [8]) place an equal number of rows in each
bucket, which bounds the error under skew.  A most-common-values list gives
exact equality selectivities for heavy hitters, mirroring what modern
optimizers (and Starburst's statistics) keep.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CatalogError
from ..sql.predicates import Op

__all__ = [
    "Histogram",
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "MostCommonValues",
    "build_equi_width",
    "build_equi_depth",
    "build_mcv",
]

Number = Union[int, float]


class Histogram:
    """Interface shared by the histogram implementations."""

    total: int

    def fraction(self, op: Op, value: Number) -> float:
        """Estimated fraction of rows whose column satisfies ``op value``."""
        raise NotImplementedError

    def fraction_between(
        self,
        low: Optional[Number],
        high: Optional[Number],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Estimated fraction of rows with values inside an interval.

        ``None`` bounds are unbounded on that side.  The default
        implementation composes :meth:`_cumulative` calls; concrete classes
        only implement the cumulative distribution.
        """
        upper = 1.0 if high is None else self._cumulative(high, high_inclusive)
        lower = 0.0 if low is None else self._cumulative(low, not low_inclusive)
        return _clamp(upper - lower)

    def _cumulative(self, value: Number, inclusive: bool) -> float:
        """Fraction of rows with column value < (or <=) ``value``."""
        raise NotImplementedError


def _clamp(x: float) -> float:
    return min(1.0, max(0.0, x))


@dataclass(frozen=True)
class EquiWidthHistogram(Histogram):
    """Equal-width buckets over ``[low, high]`` with exact per-bucket counts.

    Attributes:
        low: Minimum observed value.
        high: Maximum observed value.
        counts: Rows per bucket, left to right.
        total: Total number of rows summarized.
        distinct_per_bucket: Distinct values per bucket (for equality
            estimates inside a bucket); optional.
    """

    low: Number
    high: Number
    counts: Tuple[int, ...]
    total: int
    distinct_per_bucket: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.total < 0 or any(c < 0 for c in self.counts):
            raise CatalogError("histogram counts must be non-negative")
        if self.counts and sum(self.counts) != self.total:
            raise CatalogError(
                f"bucket counts sum to {sum(self.counts)}, expected {self.total}"
            )
        if self.high < self.low:
            raise CatalogError("histogram high bound below low bound")

    @property
    def bucket_width(self) -> float:
        if not self.counts:
            return 0.0
        span = float(self.high) - float(self.low)
        return span / len(self.counts) if span > 0 else 0.0

    def _cumulative(self, value: Number, inclusive: bool) -> float:
        if self.total == 0 or not self.counts:
            return 0.0
        if value < self.low or (value == self.low and not inclusive):
            return 0.0
        if value > self.high or (value == self.high and inclusive):
            return 1.0
        width = self.bucket_width
        if width == 0.0:
            # Degenerate single-value domain.
            return 1.0 if (value > self.low or inclusive) else 0.0
        offset = (float(value) - float(self.low)) / width
        bucket = min(int(offset), len(self.counts) - 1)
        rows_before = sum(self.counts[:bucket])
        within = (offset - bucket) * self.counts[bucket]
        return _clamp((rows_before + within) / self.total)

    def fraction(self, op: Op, value: Number) -> float:
        return _fraction_from_cumulative(self, op, value)

    def equality_fraction(self, value: Number) -> float:
        """Equality estimate: bucket density divided by bucket distincts."""
        if self.total == 0 or not self.counts:
            return 0.0
        if value < self.low or value > self.high:
            return 0.0
        width = self.bucket_width
        if width == 0.0:
            return 1.0 if value == self.low else 0.0
        bucket = min(int((float(value) - float(self.low)) / width), len(self.counts) - 1)
        count = self.counts[bucket]
        if count == 0:
            return 0.0
        if self.distinct_per_bucket and self.distinct_per_bucket[bucket] > 0:
            return count / self.total / self.distinct_per_bucket[bucket]
        return count / self.total / max(1.0, width)


@dataclass(frozen=True)
class EquiDepthHistogram(Histogram):
    """Equal-depth (equal-height) buckets: boundaries chosen from quantiles.

    ``boundaries`` has ``len(counts) + 1`` entries; bucket *i* covers the
    half-open interval ``[boundaries[i], boundaries[i+1])`` except the last
    bucket, which is closed on the right.
    """

    boundaries: Tuple[Number, ...]
    counts: Tuple[int, ...]
    total: int

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.counts) + 1:
            raise CatalogError(
                "equi-depth histogram needs len(counts)+1 boundaries; got "
                f"{len(self.boundaries)} boundaries for {len(self.counts)} buckets"
            )
        if list(self.boundaries) != sorted(self.boundaries):
            raise CatalogError("equi-depth boundaries must be non-decreasing")
        if self.counts and sum(self.counts) != self.total:
            raise CatalogError(
                f"bucket counts sum to {sum(self.counts)}, expected {self.total}"
            )

    @property
    def low(self) -> Number:
        return self.boundaries[0]

    @property
    def high(self) -> Number:
        return self.boundaries[-1]

    def _cumulative(self, value: Number, inclusive: bool) -> float:
        if self.total == 0 or not self.counts:
            return 0.0
        if value < self.low or (value == self.low and not inclusive):
            return 0.0
        if value > self.high or (value == self.high and inclusive):
            return 1.0
        # Find the bucket containing `value`.
        index = bisect.bisect_right(self.boundaries, value) - 1
        index = min(max(index, 0), len(self.counts) - 1)
        rows_before = sum(self.counts[:index])
        left = float(self.boundaries[index])
        right = float(self.boundaries[index + 1])
        if right > left:
            within = (float(value) - left) / (right - left) * self.counts[index]
        else:
            # Zero-width bucket: all-or-nothing depending on inclusivity.
            within = self.counts[index] if inclusive else 0.0
        return _clamp((rows_before + within) / self.total)

    def fraction(self, op: Op, value: Number) -> float:
        return _fraction_from_cumulative(self, op, value)


@dataclass(frozen=True)
class MostCommonValues:
    """Exact frequencies for the heaviest values of a column.

    ``entries`` maps value -> row count; ``total`` is the table row count.
    Equality predicates on a listed value get an exact selectivity, which is
    where skewed (e.g. Zipf) columns benefit the most.
    """

    entries: Dict[Union[int, float, str], int] = field(default_factory=dict)
    total: int = 0

    def covers(self, value: Union[int, float, str]) -> bool:
        return value in self.entries

    def equality_fraction(self, value: Union[int, float, str]) -> Optional[float]:
        if self.total <= 0:
            return None
        count = self.entries.get(value)
        if count is None:
            return None
        return count / self.total

    @property
    def covered_fraction(self) -> float:
        """Fraction of all rows accounted for by the listed values."""
        if self.total <= 0:
            return 0.0
        return _clamp(sum(self.entries.values()) / self.total)


def _fraction_from_cumulative(hist: Histogram, op: Op, value: Number) -> float:
    if op is Op.EQ:
        if isinstance(hist, EquiWidthHistogram):
            return hist.equality_fraction(value)
        below_or_equal = hist._cumulative(value, inclusive=True)
        below = hist._cumulative(value, inclusive=False)
        return _clamp(below_or_equal - below)
    if op is Op.NE:
        return _clamp(1.0 - _fraction_from_cumulative(hist, Op.EQ, value))
    if op is Op.LT:
        return hist._cumulative(value, inclusive=False)
    if op is Op.LE:
        return hist._cumulative(value, inclusive=True)
    if op is Op.GT:
        return _clamp(1.0 - hist._cumulative(value, inclusive=True))
    return _clamp(1.0 - hist._cumulative(value, inclusive=False))


def build_equi_width(
    values: Sequence[Number], buckets: int = 10
) -> Optional[EquiWidthHistogram]:
    """Build an equi-width histogram from raw column values.

    Returns ``None`` for an empty column (no meaningful histogram exists).

    Raises:
        CatalogError: when ``buckets`` is not at least 1.
    """
    if buckets <= 0:
        raise CatalogError("histogram needs at least one bucket")
    if not values:
        return None
    low = min(values)
    high = max(values)
    total = len(values)
    if high == low:
        return EquiWidthHistogram(low, high, (total,), total, (1,))
    width = (float(high) - float(low)) / buckets
    counts = [0] * buckets
    distinct_sets: List[set] = [set() for _ in range(buckets)]
    for v in values:
        index = min(int((float(v) - float(low)) / width), buckets - 1)
        counts[index] += 1
        distinct_sets[index].add(v)
    return EquiWidthHistogram(
        low,
        high,
        tuple(counts),
        total,
        tuple(len(s) for s in distinct_sets),
    )


def build_equi_depth(
    values: Sequence[Number], buckets: int = 10
) -> Optional[EquiDepthHistogram]:
    """Build an equi-depth histogram by sorting and slicing into quantiles.

    Returns ``None`` for an empty column.

    Raises:
        CatalogError: when ``buckets`` is not at least 1.
    """
    if buckets <= 0:
        raise CatalogError("histogram needs at least one bucket")
    if not values:
        return None
    ordered = sorted(values)
    total = len(ordered)
    buckets = min(buckets, total)
    depth = total / buckets
    boundaries: List[Number] = [ordered[0]]
    counts: List[int] = []
    start = 0
    for i in range(1, buckets + 1):
        end = total if i == buckets else int(round(i * depth))
        end = max(end, start)  # guard against rounding collapse
        counts.append(end - start)
        boundary = ordered[min(end, total - 1)] if i < buckets else ordered[-1]
        boundaries.append(boundary)
        start = end
    return EquiDepthHistogram(tuple(boundaries), tuple(counts), total)


def build_mcv(values: Sequence[Union[int, float, str]], k: int = 10) -> MostCommonValues:
    """Collect the ``k`` most common values with exact counts.

    Raises:
        CatalogError: when ``k`` is not at least 1.
    """
    if k <= 0:
        raise CatalogError("MCV list needs k >= 1")
    counts: Dict[Union[int, float, str], int] = {}
    for v in values:
        counts[v] = counts.get(v, 0) + 1
    top = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))[:k]
    return MostCommonValues(dict(top), len(values))
