"""Statistics collection (ANALYZE) over stored tables.

Given a :class:`~repro.storage.table.Table`, the collector computes exact
table and column cardinalities, min/max bounds for ordered columns, and
optionally histograms and most-common-values lists.  This plays the role of
Starburst's statistics utility: estimators only ever see what the collector
wrote into the catalog, never the data itself.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

from .histogram import build_equi_depth, build_equi_width, build_mcv
from .statistics import ColumnStats, TableStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..storage.table import Table

__all__ = ["HistogramKind", "collect_column_stats", "collect_table_stats"]


class HistogramKind(enum.Enum):
    """Which distribution summary ANALYZE should build, if any."""

    NONE = "none"
    EQUI_WIDTH = "equi-width"
    EQUI_DEPTH = "equi-depth"


def collect_column_stats(
    table: "Table",
    column: str,
    histogram: HistogramKind = HistogramKind.EQUI_DEPTH,
    buckets: int = 10,
    mcv_k: int = 0,
) -> ColumnStats:
    """Compute statistics for one column of a stored table.

    Args:
        table: Source table.
        column: Column name.
        histogram: Distribution summary to build for numeric columns.
        buckets: Histogram bucket count.
        mcv_k: Most-common-values list size; 0 disables MCVs.
    """
    values = table.column_values(column)
    distinct = len(set(values))
    numeric = bool(values) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
    )
    low = min(values) if numeric else None
    high = max(values) if numeric else None
    hist = None
    if numeric and histogram is HistogramKind.EQUI_WIDTH:
        hist = build_equi_width(values, buckets)
    elif numeric and histogram is HistogramKind.EQUI_DEPTH:
        hist = build_equi_depth(values, buckets)
    mcv = build_mcv(values, mcv_k) if mcv_k > 0 and values else None
    return ColumnStats(distinct=distinct, low=low, high=high, histogram=hist, mcv=mcv)


def collect_table_stats(
    table: "Table",
    histogram: HistogramKind = HistogramKind.EQUI_DEPTH,
    buckets: int = 10,
    mcv_k: int = 0,
    columns: Optional[list] = None,
) -> TableStats:
    """Compute statistics for a table (all columns unless restricted).

    Args:
        table: Source table.
        histogram: Distribution summary for numeric columns.
        buckets: Histogram bucket count.
        mcv_k: MCV list size; 0 disables MCVs.
        columns: Restrict collection to these columns (default: all).
    """
    names = columns if columns is not None else list(table.schema.column_names)
    stats: Dict[str, ColumnStats] = {}
    for name in names:
        stats[name] = collect_column_stats(table, name, histogram, buckets, mcv_k)
    return TableStats(row_count=table.row_count, columns=stats)
