"""Statistics substrate: schemas, histograms, statistics, and ANALYZE."""

from .collector import HistogramKind, collect_column_stats, collect_table_stats
from .histogram import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    Histogram,
    MostCommonValues,
    build_equi_depth,
    build_equi_width,
    build_mcv,
)
from .sampling import haas_stokes_distinct, sample_column_stats, sample_table_stats
from .schema import ColumnDef, ColumnType, TableSchema
from .statistics import Catalog, ColumnStats, TableStats

__all__ = [
    "Catalog",
    "ColumnDef",
    "ColumnStats",
    "ColumnType",
    "EquiDepthHistogram",
    "EquiWidthHistogram",
    "Histogram",
    "HistogramKind",
    "MostCommonValues",
    "TableSchema",
    "TableStats",
    "build_equi_depth",
    "build_equi_width",
    "build_mcv",
    "collect_column_stats",
    "collect_table_stats",
    "haas_stokes_distinct",
    "sample_column_stats",
    "sample_table_stats",
]
