"""Sampled statistics collection with Haas–Stokes distinct estimation.

Real systems do not scan every row at ANALYZE time; they sample.  Row
counts scale trivially, but the **column cardinality** ``d_x`` — the
statistic every formula in the paper divides by — cannot be scaled
linearly: a 10% sample of a column with 10 rows per value still sees most
values, while a 10% sample of a key column sees only 10% of them.

The standard answer is the Haas–Stokes "Duj1" estimator.  With a uniform
sample of ``n`` of ``N`` rows containing ``d`` distinct values of which
``f1`` appear exactly once in the sample:

    D = n * d / (n - f1 + f1 * n / N)

For a key column ``d = f1 = n`` and the estimate collapses to exactly
``N``; for heavily duplicated columns ``f1 -> 0`` and the estimate stays
at ``d`` (the sample has already seen everything).  The staleness
benchmark's companion question — how much estimation quality costs when
ANALYZE samples — is answered by running the estimators on sampled
catalogs (see ``tests/test_catalog_sampling.py``).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..errors import CatalogError
from .collector import HistogramKind, collect_column_stats
from .histogram import build_equi_depth, build_equi_width, build_mcv
from .statistics import ColumnStats, TableStats

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.table import Table

__all__ = ["haas_stokes_distinct", "sample_column_stats", "sample_table_stats"]


def haas_stokes_distinct(
    sample_distinct: int, singletons: int, sample_size: int, total_rows: int
) -> int:
    """The Duj1 estimator of the column cardinality from a uniform sample.

    Args:
        sample_distinct: Distinct values observed in the sample (``d``).
        singletons: Values appearing exactly once in the sample (``f1``).
        sample_size: Rows sampled (``n``).
        total_rows: Rows in the table (``N``).

    Raises:
        CatalogError: on inconsistent inputs (f1 > d, n > N, ...).
    """
    if not 0 <= singletons <= sample_distinct <= sample_size:
        raise CatalogError(
            f"inconsistent sample: d={sample_distinct}, f1={singletons}, "
            f"n={sample_size}"
        )
    if sample_size > total_rows:
        raise CatalogError(
            f"sample of {sample_size} exceeds table of {total_rows} rows"
        )
    if sample_size == 0:
        return 0
    if sample_size == total_rows:
        return sample_distinct
    denominator = sample_size - singletons + singletons * sample_size / total_rows
    if denominator <= 0:
        return total_rows  # all singletons in a tiny sample: key-like
    estimate = sample_size * sample_distinct / denominator
    return max(sample_distinct, min(total_rows, round(estimate)))


def sample_column_stats(
    values: Sequence,
    total_rows: int,
    histogram: HistogramKind = HistogramKind.EQUI_DEPTH,
    buckets: int = 10,
    mcv_k: int = 0,
) -> ColumnStats:
    """Column statistics from an already drawn sample of values."""
    counts: Dict = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    sample_distinct = len(counts)
    singletons = sum(1 for c in counts.values() if c == 1)
    distinct = haas_stokes_distinct(
        sample_distinct, singletons, len(values), total_rows
    )
    numeric = bool(values) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
    )
    low = min(values) if numeric else None
    high = max(values) if numeric else None
    hist = None
    if numeric and histogram is HistogramKind.EQUI_WIDTH:
        hist = build_equi_width(list(values), buckets)
    elif numeric and histogram is HistogramKind.EQUI_DEPTH:
        hist = build_equi_depth(list(values), buckets)
    mcv = None
    if mcv_k > 0 and values:
        scale = total_rows / len(values)
        sampled_mcv = build_mcv(list(values), mcv_k)
        from .histogram import MostCommonValues

        mcv = MostCommonValues(
            {v: max(1, round(c * scale)) for v, c in sampled_mcv.entries.items()},
            total_rows,
        )
    return ColumnStats(distinct=distinct, low=low, high=high, histogram=hist, mcv=mcv)


def sample_table_stats(
    table: "Table",
    sample_fraction: float,
    histogram: HistogramKind = HistogramKind.EQUI_DEPTH,
    buckets: int = 10,
    mcv_k: int = 0,
    seed: int = 0,
    columns: Optional[List[str]] = None,
) -> TableStats:
    """ANALYZE on a uniform row sample.

    ``sample_fraction=1.0`` delegates to the exact collector.  The table's
    row count is taken exactly (the storage engine knows it); only
    column-level statistics come from the sample.

    Raises:
        CatalogError: for a fraction outside (0, 1].
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise CatalogError(f"sample fraction must be in (0, 1], got {sample_fraction}")
    names = columns if columns is not None else list(table.schema.column_names)
    if sample_fraction == 1.0:
        stats = {
            name: collect_column_stats(table, name, histogram, buckets, mcv_k)
            for name in names
        }
        return TableStats(row_count=table.row_count, columns=stats)

    rows = table.rows()
    sample_size = max(1, round(len(rows) * sample_fraction)) if rows else 0
    rng = random.Random(seed)
    sampled = rng.sample(rows, sample_size) if sample_size else []
    stats = {}
    for name in names:
        index = table.schema.index_of(name)
        values = [row[index] for row in sampled]
        stats[name] = sample_column_stats(
            values, table.row_count, histogram, buckets, mcv_k
        )
    return TableStats(row_count=table.row_count, columns=stats)
