"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors from catalog errors and so on.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ParseError",
    "ResolutionError",
    "CatalogError",
    "StorageError",
    "PlanError",
    "EstimationError",
    "OptimizationError",
    "ExecutionError",
    "InvalidEngineError",
    "WorkloadError",
    "BenchmarkError",
    "LintError",
    "DiagnosticError",
    "ResilienceError",
    "DeadlineExceededError",
    "RetryExhaustedError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Attributes:
        message: Human-readable description of the failure.
        position: Character offset into the source text, when known.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        self.message = message
        self.position = position
        if position >= 0:
            super().__init__(f"{message} (at offset {position})")
        else:
            super().__init__(message)


class ResolutionError(ReproError):
    """Raised when a column reference cannot be resolved against a schema."""


class CatalogError(ReproError):
    """Raised for unknown tables/columns or inconsistent statistics."""


class StorageError(ReproError):
    """Raised by the in-memory storage engine (schema mismatch, bad load)."""


class PlanError(ReproError):
    """Raised when a physical plan is malformed or cannot be constructed."""


class EstimationError(ReproError):
    """Raised when a cardinality estimate cannot be computed.

    Typical causes are referencing a table that is not part of the query or
    asking for an incremental step whose prerequisites were never joined.
    """


class OptimizationError(ReproError):
    """Raised when the join-order optimizer cannot produce a plan."""


class ExecutionError(ReproError):
    """Raised by the execution engine when an operator fails at run time."""


class InvalidEngineError(ExecutionError):
    """Raised when an unknown execution engine name is requested.

    Carried structurally so callers (CLI, benchmark harness, evaluation
    sweeps) can report the valid choices without string-parsing, and so
    the failure happens at configuration time rather than deep inside
    operator construction.

    Attributes:
        engine: The rejected engine name.
        valid_engines: The accepted engine names, in documentation order.
    """

    def __init__(self, engine: str, valid_engines: tuple) -> None:
        self.engine = engine
        self.valid_engines = tuple(valid_engines)
        choices = ", ".join(repr(name) for name in self.valid_engines)
        super().__init__(
            f"unknown execution engine {engine!r}; valid engines are: {choices}"
        )


class WorkloadError(ReproError):
    """Raised for invalid workload parameters or failed workload payloads.

    The generators raise it with a bare message for bad parameter choices.
    The parallel harness additionally attaches *which* payload failed, so a
    sweep that dies after hours names the workload instead of surfacing a
    raw remote traceback.

    Attributes:
        message: Human-readable description of the failure.
        index: Zero-based payload index in the sweep, when known.
        description: Short workload description (joined table names).
    """

    def __init__(
        self,
        message: str,
        index: Optional[int] = None,
        description: Optional[str] = None,
    ) -> None:
        self.message = message
        self.index = index
        self.description = description
        if index is not None:
            where = f"workload[{index}]"
            if description:
                where += f" ({description})"
            super().__init__(f"{where}: {message}")
        else:
            super().__init__(message)


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for invalid runs.

    Bad parameters (non-positive repeats) and, more importantly, engine
    disagreement: a benchmark that timed two engines computing *different*
    answers must fail loudly rather than report a meaningless speedup.
    """


class LintError(ReproError):
    """Raised by the static-analysis engine for unusable inputs.

    Bad lint paths, unreadable files, malformed ``--select`` lists and
    duplicate rule registrations — the *tooling* failures, as opposed to
    the findings themselves, which are reported as diagnostics.  CLI
    subcommands map this to exit code 2 (usage error).
    """


class DiagnosticError(ReproError):
    """Raised when invariant checking finds error-severity diagnostics.

    Carried by the :class:`~repro.core.estimator.JoinSizeEstimator` hook
    (``EstimatorConfig.check_invariants``) and
    :func:`repro.lint.semantic.check_estimator_input`.

    Attributes:
        diagnostics: Every finding of the failed check (warnings included),
            as :class:`repro.lint.diagnostics.Diagnostic` objects.
    """

    def __init__(self, diagnostics: tuple = ()) -> None:
        self.diagnostics = tuple(diagnostics)
        errors = [d for d in self.diagnostics if getattr(d, "severity", None) is not None
                  and d.severity.value == "error"]
        summary = "; ".join(f"{d.code}: {d.message}" for d in errors[:3])
        if len(errors) > 3:
            summary += f"; ... ({len(errors) - 3} more)"
        super().__init__(
            f"invariant check failed with {len(errors)} error(s): {summary}"
            if errors
            else "invariant check failed"
        )


class ResilienceError(ReproError):
    """Base class for fault-tolerance failures (:mod:`repro.resilience`).

    Groups deadline, retry, and checkpoint errors so callers can treat
    "the runtime degraded" separately from "the computation is wrong".
    """


class DeadlineExceededError(ResilienceError):
    """Raised by a cooperative cancellation check once a deadline expires.

    Attributes:
        budget_s: The deadline's total budget in seconds.
        elapsed_s: Seconds elapsed when the check fired.
        label: Where the check fired (operator label or call site), when known.
    """

    def __init__(self, budget_s: float, elapsed_s: float, label: str = "") -> None:
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s
        self.label = label
        where = f" in {label}" if label else ""
        super().__init__(
            f"deadline of {budget_s:.3f}s exceeded after {elapsed_s:.3f}s{where}"
        )


class RetryExhaustedError(ResilienceError):
    """Raised when every attempt allowed by a retry policy has failed.

    Attributes:
        attempts: How many attempts were made.
        last_error: The error of the final attempt, when available.
    """

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_error: Optional[BaseException] = None,
    ) -> None:
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"{message} (after {attempts} attempt(s))" if attempts else message
        )


class CheckpointError(ResilienceError):
    """Raised for unreadable or structurally invalid checkpoint files."""
