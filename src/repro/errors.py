"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors from catalog errors and so on.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "ResolutionError",
    "CatalogError",
    "StorageError",
    "PlanError",
    "EstimationError",
    "OptimizationError",
    "ExecutionError",
    "WorkloadError",
    "BenchmarkError",
    "LintError",
    "DiagnosticError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed.

    Attributes:
        message: Human-readable description of the failure.
        position: Character offset into the source text, when known.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        self.message = message
        self.position = position
        if position >= 0:
            super().__init__(f"{message} (at offset {position})")
        else:
            super().__init__(message)


class ResolutionError(ReproError):
    """Raised when a column reference cannot be resolved against a schema."""


class CatalogError(ReproError):
    """Raised for unknown tables/columns or inconsistent statistics."""


class StorageError(ReproError):
    """Raised by the in-memory storage engine (schema mismatch, bad load)."""


class PlanError(ReproError):
    """Raised when a physical plan is malformed or cannot be constructed."""


class EstimationError(ReproError):
    """Raised when a cardinality estimate cannot be computed.

    Typical causes are referencing a table that is not part of the query or
    asking for an incremental step whose prerequisites were never joined.
    """


class OptimizationError(ReproError):
    """Raised when the join-order optimizer cannot produce a plan."""


class ExecutionError(ReproError):
    """Raised by the execution engine when an operator fails at run time."""


class WorkloadError(ReproError):
    """Raised by workload/data generators for invalid parameter choices."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for invalid runs.

    Bad parameters (non-positive repeats) and, more importantly, engine
    disagreement: a benchmark that timed two engines computing *different*
    answers must fail loudly rather than report a meaningless speedup.
    """


class LintError(ReproError):
    """Raised by the static-analysis engine for unusable inputs.

    Bad lint paths, unreadable files, malformed ``--select`` lists and
    duplicate rule registrations — the *tooling* failures, as opposed to
    the findings themselves, which are reported as diagnostics.  CLI
    subcommands map this to exit code 2 (usage error).
    """


class DiagnosticError(ReproError):
    """Raised when invariant checking finds error-severity diagnostics.

    Carried by the :class:`~repro.core.estimator.JoinSizeEstimator` hook
    (``EstimatorConfig.check_invariants``) and
    :func:`repro.lint.semantic.check_estimator_input`.

    Attributes:
        diagnostics: Every finding of the failed check (warnings included),
            as :class:`repro.lint.diagnostics.Diagnostic` objects.
    """

    def __init__(self, diagnostics: tuple = ()) -> None:
        self.diagnostics = tuple(diagnostics)
        errors = [d for d in self.diagnostics if getattr(d, "severity", None) is not None
                  and d.severity.value == "error"]
        summary = "; ".join(f"{d.code}: {d.message}" for d in errors[:3])
        if len(errors) > 3:
            summary += f"; ... ({len(errors) - 3} more)"
        super().__init__(
            f"invariant check failed with {len(errors)} error(s): {summary}"
            if errors
            else "invariant check failed"
        )
